//! The forward-error-correction link layer in action: one contention
//! channel, one noisy system, every link code.
//!
//! The transceiver engine encodes each frame before symbol modulation and
//! decodes it before the accept path; retransmission fires only when the
//! decoder reports damage it cannot repair. This demo transmits the same
//! payload through every [`LinkCodeKind`] on the ring-contention channel
//! under the paper's quiet-system noise preset and prints the trade-off:
//! the codes spend wire bits (code rate < 1) to buy back goodput that the
//! uncoded channel loses to dirty frames.
//!
//! Run with: `cargo run --release --example coded_channel`

use leaky_buddies::prelude::*;

fn run_code(code: LinkCodeKind, payload: &[bool]) -> Result<(), ChannelError> {
    let config = ContentionChannelConfig {
        soc: SocConfig::kaby_lake_i7_7700k().with_noise(NoiseConfig::quiet_system()),
        ..ContentionChannelConfig::paper_default()
    }
    .with_seed(0xC0DE);
    let mut channel = ContentionChannel::new(config)?;
    let engine = Transceiver::new(TransceiverConfig::paper_default().with_code(code));
    let (report, stats) = engine.transmit_detailed(&mut channel, payload)?;
    println!(
        "{:<12} {:>7.2} {:>10.1} {:>10.1} {:>9.2}% {:>10} {:>9} {:>6}",
        code.label(),
        report.coding.map_or(1.0, |c| c.code_rate),
        report.bandwidth_kbps(),
        report.goodput_kbps(),
        report.residual_ber() * 100.0,
        stats.corrected_bits,
        stats.decode_failures,
        stats.retransmissions,
    );
    Ok(())
}

fn main() -> Result<(), ChannelError> {
    let payload = test_pattern(512, 0x5EED);
    println!("ring-contention channel, quiet system, 512-bit payload, 64-bit frames");
    println!(
        "{:<12} {:>7} {:>10} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "code", "rate", "kb/s", "goodput", "residual", "corrected", "decfail", "retx"
    );
    for code in LinkCodeKind::all() {
        run_code(code, &payload)?;
    }
    // A second Reed–Solomon geometry: more parity, deeper interleaving —
    // the heavy-noise configuration.
    run_code(
        LinkCodeKind::ReedSolomon {
            data_symbols: 8,
            parity_symbols: 8,
            interleave_depth: 8,
        },
        &payload,
    )?;
    println!(
        "\ngoodput counts only intact frames: the uncoded channel moves more raw bits,\n\
         the coded configurations deliver more of them usable."
    );
    Ok(())
}
