//! Reverse-engineering walk-through: everything the attacker must learn about
//! the asymmetric hierarchy before either covert channel can run.
//!
//! 1. Characterize the custom GPU timer (Figure 4).
//! 2. Recover the LLC slice hash from timing (Equations 1/2).
//! 3. Show the GPU L3 is not inclusive of the LLC and recover its placement
//!    bits (Section III-D).
//! 4. Build an LLC eviction set by pure timing (group-testing reduction) and
//!    validate it from the GPU side through shared virtual memory.
//!
//! Run with: `cargo run --release --example reverse_engineering`

use leaky_buddies::prelude::*;

fn main() {
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());

    println!("== 1. Custom timer characterization (Figure 4) ==");
    let characterization = characterize_default(&mut soc, 20);
    println!(
        "  L3 hit   : {:>7.1} ticks (sd {:>5.2})",
        characterization.l3.mean, characterization.l3.std_dev
    );
    println!(
        "  LLC hit  : {:>7.1} ticks (sd {:>5.2})",
        characterization.llc.mean, characterization.llc.std_dev
    );
    println!(
        "  memory   : {:>7.1} ticks (sd {:>5.2})",
        characterization.memory.mean, characterization.memory.std_dev
    );
    println!("  separable: {}", characterization.is_separable());

    println!("== 2. LLC slice-hash recovery (Equations 1/2) ==");
    let mut cpu = CpuThread::pinned(0);
    let recovery = recover_slice_hash(&mut cpu, &mut soc, PhysAddr::new(0x1_0000_0000), 96);
    println!("  timing-observed slices : {}", recovery.observed_slices());
    println!(
        "  hash input bits (17-29): {:?}",
        recovery.influencing_bits()
    );
    let truth = ground_truth_bits(&SliceHash::kaby_lake_i7_7700k(), 17, 30);
    println!("  ground truth           : {truth:?}");
    println!(
        "  match                  : {}",
        recovery.influencing_bits() == truth
    );

    println!("== 3. GPU L3: inclusiveness and placement geometry ==");
    let mut gpu = GpuKernel::launch_attack_kernel();
    let threshold = characterization.l3_llc_threshold();
    let inc = l3_inclusiveness_test(
        &mut soc,
        &mut gpu,
        &mut cpu,
        PhysAddr::new(0x7000_0000),
        threshold,
    );
    println!(
        "  after CPU clflush the GPU re-access took {} ticks -> L3 is {}",
        inc.final_access_ticks,
        if inc.l3_is_non_inclusive {
            "NOT inclusive of the LLC"
        } else {
            "inclusive"
        }
    );
    let bits = discover_l3_index_bits(
        &mut soc,
        &mut gpu,
        PhysAddr::new(0xB000_0000),
        &(6..20).collect::<Vec<_>>(),
        threshold,
    );
    println!("  L3 placement index bits: {bits:?} (expected 6..=15)");

    println!("== 4. LLC eviction set by timing (group-testing reduction) ==");
    let victim = PhysAddr::new(0x4400_0000);
    let target_set = soc.llc().set_of(victim);
    // Candidate pool: lines sharing the victim's page offset, as an attacker
    // with 4 KiB pages would gather them, plus decoys.
    let pool: Vec<PhysAddr> = (1..400u64)
        .map(|i| PhysAddr::new(victim.value() + i * 128 * 1024))
        .collect();
    let ways = soc.llc().config().ways;
    match find_minimal_eviction_set(
        &mut cpu,
        &mut soc,
        victim,
        &pool,
        ways,
        CPU_MISS_THRESHOLD_CYCLES,
    ) {
        Ok(set) => {
            let pure = set.iter().all(|a| soc.llc().set_of(*a) == target_set);
            println!(
                "  reduced {} candidates to {} addresses (all in the victim's set: {pure})",
                pool.len(),
                set.len()
            );
            let (cycles, evicted) = validate_set_from_gpu(
                &mut cpu,
                &mut gpu,
                &mut soc,
                victim,
                &set,
                CPU_MISS_THRESHOLD_CYCLES,
            );
            println!(
                "  GPU-side validation: victim re-access took {cycles} cycles, evicted = {evicted}"
            );
        }
        Err(e) => println!("  eviction-set construction failed: {e}"),
    }
}
