//! Quickstart: exfiltrate a short message from a GPU trojan to a CPU spy
//! over the shared LLC, using the paper's best configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use leaky_buddies::prelude::*;

fn main() -> Result<(), ChannelError> {
    // The paper's best LLC-channel configuration: GPU trojan -> CPU spy,
    // precise L3 eviction sets, 2 redundant LLC sets per protocol role.
    let config = LlcChannelConfig::paper_default();
    println!(
        "setting up the LLC Prime+Probe channel ({})...",
        config.direction.label()
    );
    let mut channel = LlcChannel::new(config)?;

    let timer = channel.timer_characterization();
    println!(
        "custom GPU timer: L3 ~{:.0} ticks, LLC ~{:.0} ticks, memory ~{:.0} ticks (separable: {})",
        timer.l3.mean,
        timer.llc.mean,
        timer.memory.mean,
        timer.is_separable()
    );

    let secret = b"LEAKY BUDDIES";
    let bits = bytes_to_bits(secret);
    println!(
        "transmitting {} bits ({} bytes) covertly...",
        bits.len(),
        secret.len()
    );
    let report = channel.transmit(&bits);

    let recovered = bits_to_bytes(&report.received);
    println!(
        "spy received      : {:?}",
        String::from_utf8_lossy(&recovered)
    );
    println!(
        "bandwidth         : {:.1} kb/s (paper: ~120 kb/s)",
        report.bandwidth_kbps()
    );
    println!(
        "bit error rate    : {:.2}% (paper: ~2%)",
        report.error_rate() * 100.0
    );
    println!("time per bit      : {}", report.time_per_bit());
    Ok(())
}
