//! Full-duplex covert "chat" on the TDD scheduler: the GPU trojan sends a
//! request to the CPU spy over the LLC channel while the reply streams back
//! on the reverse (CPU→GPU) channel — the two directions sharing the medium
//! as interleaved time-division slots instead of taking strict turns.
//!
//! The [`DuplexScheduler`] owns the slot clock: each slot carries one frame
//! of one direction through the shared transceiver engine (framing,
//! preamble sync, CRC-8 detection, bounded retransmission). Slot allocation
//! is *demand-weighted* — every slot goes to the direction with the larger
//! remaining backlog — which is what separates it from the old
//! turn-taking loop: with a short query one way and a long reply the other,
//! strict alternation keeps reserving (and burning) slots for the drained
//! direction, while the weighted scheduler hands them to the side that
//! still has data. The example runs both disciplines and prints the
//! aggregate two-way goodput of each.
//!
//! The second half shows *quality-aware* co-scheduling: each direction is
//! steered by its own [`BanditPolicy`], and
//! [`SlotAllocation::QualityWeighted`] grants slots by expected payoff —
//! the controller's goodput estimate × remaining demand — so when one
//! direction's link sits in a noise burst, its airtime flows to the healthy
//! peer instead of being burned on heavy rungs mid-storm.
//!
//! Run with: `cargo run --release --example bidirectional_chat`

use leaky_buddies::prelude::*;

fn channels() -> Result<(LlcChannel, LlcChannel), ChannelError> {
    let forward =
        LlcChannel::new(LlcChannelConfig::paper_default().with_direction(Direction::GpuToCpu))?;
    let reverse = LlcChannel::new(
        LlcChannelConfig::paper_default()
            .with_direction(Direction::CpuToGpu)
            .with_seed(11),
    )?;
    Ok((forward, reverse))
}

fn chat(allocation: SlotAllocation) -> Result<DuplexReport, ChannelError> {
    let (mut forward, mut reverse) = channels()?;
    let request = b"KEY?";
    let reply = b"0xDEADBEEF_0xCAFEF00D_0xFEEDFACE";
    let scheduler = DuplexScheduler::new(
        DuplexConfig {
            base: TransceiverConfig::paper_default().with_code(LinkCodeKind::Crc8),
            ..DuplexConfig::paper_default()
        }
        .with_allocation(allocation),
    );
    scheduler.run(
        &mut forward,
        &mut reverse,
        &bytes_to_bits(request),
        &bytes_to_bits(reply),
    )
}

fn describe(label: &str, report: &DuplexReport) {
    println!(
        "{label:<16} {:>6.1} kb/s aggregate  ({} slots, {} idle)",
        report.aggregate_goodput_kbps(),
        report.slots.len(),
        report.idle_slots(),
    );
    println!(
        "  [GPU -> CPU] spy decoded    {:?}  ({:.2}% residual, {} retransmissions)",
        String::from_utf8_lossy(&bits_to_bytes(&report.forward.received)),
        report.forward.residual_ber() * 100.0,
        report.forward_stats.retransmissions,
    );
    println!(
        "  [CPU -> GPU] trojan decoded {:?}  ({:.2}% residual, {} retransmissions)",
        String::from_utf8_lossy(&bits_to_bytes(&report.reverse.received)),
        report.reverse.residual_ber() * 100.0,
        report.reverse_stats.retransmissions,
    );
}

/// The quality-aware leg: the larger backlog rides the *stormy* link — a
/// calm/burst schedule on the forward direction — so demand weighting keeps
/// feeding slots into the weather, while quality weighting lends them to the
/// clean reverse link until the burst passes. The forward link fights a
/// calm/burst noise schedule while the reverse link stays quiet. Each
/// direction runs its own bandit controller; the allocation under test
/// decides who gets the airtime while the forward link is mid-storm.
fn adaptive_chat(allocation: SlotAllocation) -> Result<DuplexReport, ChannelError> {
    use soc_sim::prelude::{NoiseSchedule, Time};
    let mut forward = LlcChannel::new(LlcChannelConfig {
        soc: SocConfig::kaby_lake_i7_7700k()
            .with_noise_schedule(NoiseSchedule::calm_burst(Time::from_ms(12))),
        ..LlcChannelConfig::paper_default().with_direction(Direction::GpuToCpu)
    })?;
    let mut reverse = LlcChannel::new(
        LlcChannelConfig::paper_default()
            .with_direction(Direction::CpuToGpu)
            .with_seed(11),
    )?;
    let payload_fwd = test_pattern(1792, 21);
    let payload_rev = test_pattern(1024, 22);
    let mut ctrl_f = BanditPolicy::paper_default();
    let mut ctrl_r = BanditPolicy::paper_default();
    DuplexScheduler::new(DuplexConfig::paper_default().with_allocation(allocation)).run_adaptive(
        &mut forward,
        &mut reverse,
        &payload_fwd,
        &payload_rev,
        &mut ctrl_f,
        &mut ctrl_r,
    )
}

fn main() -> Result<(), ChannelError> {
    println!(
        "full-duplex chat: 4-byte query vs 32-byte reply, CRC-8 framed, one TDD slot per frame\n"
    );
    let strict = chat(SlotAllocation::StrictAlternate)?;
    describe("strict turns", &strict);
    println!();
    let weighted = chat(SlotAllocation::DemandWeighted)?;
    describe("demand-weighted", &weighted);

    println!(
        "\ndemand weighting beats strict turn-taking: {:.1} vs {:.1} kb/s ({:+.1}%)",
        weighted.aggregate_goodput_kbps(),
        strict.aggregate_goodput_kbps(),
        (weighted.aggregate_goodput_kbps() / strict.aggregate_goodput_kbps() - 1.0) * 100.0,
    );

    println!(
        "\nquality-aware co-scheduling: 1792 bits out on the stormy link, 1024 back, bandit-steered, forward link in \
         calm/burst weather\n"
    );
    let demand = adaptive_chat(SlotAllocation::DemandWeighted)?;
    let quality = adaptive_chat(SlotAllocation::QualityWeighted)?;
    for (label, report) in [("demand-weighted", &demand), ("quality-weighted", &quality)] {
        println!(
            "{label:<16} {:>6.1} kb/s aggregate  ({} slots, fwd residual {:.2}%, rev residual {:.2}%)",
            report.aggregate_goodput_kbps(),
            report.slots.len(),
            report.forward.residual_ber() * 100.0,
            report.reverse.residual_ber() * 100.0,
        );
    }
    println!(
        "\nquality weighting vs demand weighting on the stormy link: {:.1} vs {:.1} kb/s ({:+.1}%)",
        quality.aggregate_goodput_kbps(),
        demand.aggregate_goodput_kbps(),
        (quality.aggregate_goodput_kbps() / demand.aggregate_goodput_kbps() - 1.0) * 100.0,
    );
    Ok(())
}
