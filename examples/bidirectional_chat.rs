//! Bidirectional covert "chat": the GPU trojan sends a request to the CPU
//! spy over the LLC channel, and the reply travels back on the reverse
//! (CPU→GPU) channel — demonstrating that the channel works in both
//! directions, as Section III-E of the paper describes.
//!
//! Run with: `cargo run --release --example bidirectional_chat`

use leaky_buddies::prelude::*;

fn send(
    direction: Direction,
    message: &[u8],
) -> Result<(Vec<u8>, TransmissionReport), ChannelError> {
    let mut channel = LlcChannel::new(LlcChannelConfig::paper_default().with_direction(direction))?;
    let report = channel.transmit(&bytes_to_bits(message));
    let decoded = bits_to_bytes(&report.received);
    Ok((decoded, report))
}

fn main() -> Result<(), ChannelError> {
    let request = b"KEY?";
    println!(
        "[GPU -> CPU] trojan sends {:?}",
        String::from_utf8_lossy(request)
    );
    let (received_request, report) = send(Direction::GpuToCpu, request)?;
    println!(
        "[GPU -> CPU] spy decoded  {:?}  ({:.1} kb/s, {:.2}% errors)",
        String::from_utf8_lossy(&received_request),
        report.bandwidth_kbps(),
        report.error_rate() * 100.0
    );

    let reply = b"0xDEADBEEF";
    println!(
        "[CPU -> GPU] spy replies  {:?}",
        String::from_utf8_lossy(reply)
    );
    let (received_reply, report) = send(Direction::CpuToGpu, reply)?;
    println!(
        "[CPU -> GPU] trojan decoded {:?}  ({:.1} kb/s, {:.2}% errors)",
        String::from_utf8_lossy(&received_reply),
        report.bandwidth_kbps(),
        report.error_rate() * 100.0
    );

    println!(
        "round trip complete: two unprivileged processes exchanged data without any shared memory."
    );
    Ok(())
}
