//! Bidirectional covert "chat" on the unified channel API: the GPU trojan
//! sends a request to the CPU spy over the LLC channel, and the reply
//! travels back on the reverse (CPU→GPU) channel — demonstrating that the
//! channel works in both directions, as Section III-E of the paper
//! describes.
//!
//! Unlike the original hand-rolled loop, both legs are driven by the shared
//! [`Transceiver`] engine: framing, preamble sync, CRC-8 error detection and
//! bounded retransmission all come from the engine, so the chat survives a
//! noisy system instead of silently delivering corrupted bytes.
//!
//! Run with: `cargo run --release --example bidirectional_chat`

use leaky_buddies::prelude::*;

fn send(
    engine: &Transceiver,
    direction: Direction,
    message: &[u8],
) -> Result<(Vec<u8>, TransmissionReport, LinkStats), ChannelError> {
    let mut channel = LlcChannel::new(LlcChannelConfig::paper_default().with_direction(direction))?;
    let (report, stats) = engine.transmit_detailed(&mut channel, &bytes_to_bits(message))?;
    let decoded = bits_to_bytes(&report.received);
    Ok((decoded, report, stats))
}

fn describe(leg: &str, decoded: &[u8], report: &TransmissionReport, stats: &LinkStats) {
    println!(
        "{leg} decoded {:?}  ({:.1} kb/s raw, {:.1} kb/s goodput, {:.2}% residual errors, {} retransmission(s))",
        String::from_utf8_lossy(decoded),
        report.bandwidth_kbps(),
        report.goodput_kbps(),
        report.residual_ber() * 100.0,
        stats.retransmissions,
    );
}

fn main() -> Result<(), ChannelError> {
    // One engine drives both directions: framed, CRC-8 protected, with the
    // default retry budget.
    let engine = Transceiver::new(TransceiverConfig::paper_default().with_code(LinkCodeKind::Crc8));

    let request = b"KEY?";
    println!(
        "[GPU -> CPU] trojan sends {:?}",
        String::from_utf8_lossy(request)
    );
    let (received_request, report, stats) = send(&engine, Direction::GpuToCpu, request)?;
    describe("[GPU -> CPU] spy", &received_request, &report, &stats);

    let reply = b"0xDEADBEEF";
    println!(
        "[CPU -> GPU] spy replies  {:?}",
        String::from_utf8_lossy(reply)
    );
    let (received_reply, report, stats) = send(&engine, Direction::CpuToGpu, reply)?;
    describe("[CPU -> GPU] trojan", &received_reply, &report, &stats);

    println!(
        "round trip complete: two unprivileged processes exchanged data without any shared memory."
    );
    Ok(())
}
