//! Contention channel walk-through: calibrate the iteration factor
//! (Figure 9), then transmit a payload and report bandwidth and error rate
//! for a few points of the Figure 10 parameter space.
//!
//! Run with: `cargo run --release --example contention_channel`

use leaky_buddies::prelude::*;

fn main() -> Result<(), ChannelError> {
    println!("== Iteration factor calibration (Figure 9) ==");
    for kb in [512u64, 1024, 2048, 4096] {
        let mut channel = ContentionChannel::new(
            ContentionChannelConfig::paper_default()
                .with_gpu_buffer(kb * 1024)
                .with_workgroups(1),
        )?;
        let cal = channel.calibrate();
        println!(
            "  GPU buffer {:>5} KB: IF = {:>2}  (CPU window {:>7.0} ns, GPU pass {:>7.0} ns)",
            kb,
            cal.iteration_factor,
            cal.cpu_window_time.as_ns_f64(),
            cal.gpu_pass_time.as_ns_f64()
        );
    }

    println!("== Transmission (Figure 10 points) ==");
    let bits = test_pattern(400, 3);
    for (buffer_mb, workgroups) in [(1u64, 1usize), (2, 2), (2, 8)] {
        let mut channel = ContentionChannel::new(
            ContentionChannelConfig::paper_default()
                .with_gpu_buffer(buffer_mb * 1024 * 1024)
                .with_workgroups(workgroups),
        )?;
        let cal = channel.calibrate();
        let report = channel.transmit(&bits);
        println!(
            "  {} MB, {} work-group(s), IF {:>2}: {:>7.1} kb/s, error {:>5.2}% (threshold {} cycles)",
            buffer_mb,
            workgroups,
            cal.iteration_factor,
            report.bandwidth_kbps(),
            report.error_rate() * 100.0,
            cal.threshold_cycles
        );
    }
    println!("(paper: 390-402 kb/s, best error 0.82% at 2 MB / 2 work-groups)");
    Ok(())
}
