//! Multi-axis scenario sweep: every registered SoC backend x both covert
//! channels x ambient noise levels, executed in parallel by the
//! `SweepRunner` and printed as rows complete (streaming).
//!
//! Run with `cargo run --release --example scenario_sweep`.
//!
//! The sweep demonstrates the seams this reproduction is built around:
//!
//! * channels implement the `CovertChannel` trait, so one loop drives both
//!   physical mechanisms;
//! * channels are generic over the `MemorySystem` backend, and backends are
//!   *registry keys* — the mitigation study (partitioned LLC), the scale-up
//!   studies (Gen11-class, Ice Lake-class 8-slice) and the DDR5 variant are
//!   just grid axes selected by name;
//! * infeasible scenarios (a timer drowned in noise, buffers overflowing the
//!   LLC, an unknown backend name) surface as recorded errors, not aborted
//!   sweeps;
//! * `run_streaming` hands each row to a callback the moment it finishes,
//!   so long grids are observable while they run;
//! * every point runs with a private telemetry registry
//!   (`soc_sim::telemetry`), so each row carries a `MetricsSnapshot` of
//!   what the memory system and link layer actually did — merged at the
//!   end into one fleet-wide view.

use bench::{default_grid, ChannelKind, NoiseLevel, SweepPoint, SweepRunner};
use covert::prelude::TransceiverConfig;
use soc_sim::prelude::{BackendRegistry, MetricsSnapshot};

fn main() {
    let runner = SweepRunner::with_default_threads();
    println!(
        "scenario sweep on {} worker threads (backends: {})",
        runner.threads(),
        BackendRegistry::standard().names().join(", ")
    );
    println!(
        "{:<58} {:>10} {:>9} {:>12}",
        "scenario", "kb/s", "error", "symbol (ns)"
    );
    let mut grid = default_grid(160);
    // One deliberately infeasible point: an 8 MB trojan buffer cannot share
    // the 8 MB Kaby Lake LLC with the spy. The sweep records the rejection.
    grid.push(SweepPoint {
        gpu_buffer_bytes: 8 * 1024 * 1024,
        bits: 64,
        ..SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        )
    });
    // And one with a key the registry does not know: recorded, not fatal.
    grid.push(SweepPoint {
        bits: 64,
        ..SweepPoint::paper_default(
            "raptorlake-hypothetical",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        )
    });
    let mut telemetry = MetricsSnapshot::from_entries(std::iter::empty());
    runner.run_streaming(&grid, |_, result| match &result.outcome {
        Ok(outcome) => {
            if let Some(metrics) = &outcome.metrics {
                telemetry.merge(metrics);
            }
            println!(
                "{:<58} {:>10.1} {:>8.2}% {:>12.0}",
                result.point.label(),
                outcome.bandwidth_kbps,
                outcome.error_rate * 100.0,
                outcome.symbol_time_ns,
            );
        }
        Err(err) => println!("{:<58} unusable: {err}", result.point.label()),
    });
    // The merged per-point registries: what the whole grid did to the
    // memory system, and where the wall-clock went.
    let llc_total = |suffix: &str| {
        telemetry
            .iter()
            .filter(|(name, _)| name.starts_with("llc.slice") && name.ends_with(suffix))
            .filter_map(|(name, _)| telemetry.counter(name))
            .sum::<u64>()
    };
    println!(
        "\nfleet telemetry: {} LLC hits / {} misses, {} ring crossings, {} DRAM row hits / {} misses",
        llc_total(".hits"),
        llc_total(".misses"),
        telemetry.counter("ring.crossings").unwrap_or(0),
        telemetry.counter("dram.row_hits").unwrap_or(0),
        telemetry.counter("dram.row_misses").unwrap_or(0),
    );
    if let Some(simulate) = telemetry.histogram("phase.simulate_ns") {
        println!(
            "simulate phase: {} windows, mean {:.1} ms, p99 {:.1} ms",
            simulate.count(),
            simulate.mean() / 1e6,
            simulate.percentile(99.0) / 1e6,
        );
    }

    // The same grid cell driven through the framed engine: preamble-guarded
    // frames with bounded retransmission, the mode a real exfiltration tool
    // would run in.
    println!("\nframed transmission (64-bit frames, preamble sync, retries):");
    let framed = SweepRunner::new(2).with_engine(TransceiverConfig::paper_default());
    let point = SweepPoint {
        bits: 256,
        ..SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        )
    };
    for result in framed.run(std::slice::from_ref(&point)) {
        let outcome = result
            .outcome
            .expect("paper-default contention channel works");
        println!(
            "{:<58} {:>10.1} {:>8.2}%  ({} frames, {} retransmissions)",
            result.point.label(),
            outcome.bandwidth_kbps,
            outcome.error_rate * 100.0,
            outcome.frames_sent,
            outcome.retransmissions,
        );
    }
}
