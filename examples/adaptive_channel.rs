//! Closed-loop link adaptation under time-varying interference.
//!
//! A contention channel runs under a phased noise program — calm stretches
//! alternating with severe interference bursts — and three link-control
//! strategies move the same payload across it:
//!
//! * the static uncoded baseline (fast, but bursts destroy its frames),
//! * the static Reed–Solomon baseline (burst-proof, but its overhead is
//!   pure waste in the calm stretches),
//! * the [`ThresholdPolicy`] adaptation loop, which watches per-window
//!   residual-error feedback and moves the operating point (link code ×
//!   symbol-repeat factor) between windows.
//!
//! The adaptive run's per-window trace shows the loop chasing the weather:
//! light settings through the calm phases, Reed–Solomon through the bursts.
//!
//! Run with: `cargo run --release --example adaptive_channel`

use leaky_buddies::prelude::*;

/// The phased noise program: the shared calm/burst schedule the
/// `repro --sweep` adaptive section runs under, at the same phase length.
fn phased_schedule() -> NoiseSchedule {
    NoiseSchedule::calm_burst(Time::from_us(12_000))
}

fn build_channel() -> Result<ContentionChannel, ChannelError> {
    let soc = SocConfig::kaby_lake_i7_7700k()
        .with_seed(269)
        .with_noise_schedule(phased_schedule());
    ContentionChannel::new(ContentionChannelConfig {
        seed: 269,
        soc,
        ..ContentionChannelConfig::paper_default()
    })
}

fn run(
    label: &str,
    controller: &mut dyn LinkController,
    payload: &[bool],
) -> Result<f64, ChannelError> {
    let mut channel = build_channel()?;
    let adaptive = AdaptiveTransceiver::new(AdaptiveConfig::paper_default());
    let (report, stats) = adaptive.transmit(&mut channel, controller, payload)?;
    let summary = report.adaptation.as_ref().expect("adaptive report");
    println!(
        "{label:<22} {:>7.1} kb/s goodput  {:>5.2}% residual  {:>2} setting switches  {:>3} retransmissions",
        report.goodput_kbps(),
        report.residual_ber() * 100.0,
        summary.switches,
        stats.retransmissions,
    );
    Ok(report.goodput_kbps())
}

fn main() -> Result<(), ChannelError> {
    let payload = test_pattern(5376, 269 ^ 0x5EED);
    println!(
        "contention channel, phased calm/burst noise, {} payload bits\n",
        payload.len()
    );

    let mut fixed_none = FixedPolicy::new(LinkSetting::lightest());
    let none = run("fixed uncoded", &mut fixed_none, &payload)?;
    let mut fixed_rs = FixedPolicy::new(LinkSetting::new(LinkCodeKind::rs_default(), 1));
    let rs = run("fixed Reed-Solomon", &mut fixed_rs, &payload)?;
    let mut threshold = ThresholdPolicy::paper_default();
    let threshold_goodput = run("threshold adaptation", &mut threshold, &payload)?;
    let mut aimd = AimdPolicy::paper_default();
    let aimd_goodput = run("AIMD adaptation", &mut aimd, &payload)?;
    let adaptive = threshold_goodput.max(aimd_goodput);

    // Re-run the adaptive policy to show the per-window trajectory.
    let mut channel = build_channel()?;
    let mut threshold = ThresholdPolicy::paper_default();
    let (report, _) = AdaptiveTransceiver::new(AdaptiveConfig::paper_default()).transmit(
        &mut channel,
        &mut threshold,
        &payload[..1024],
    )?;
    println!("\nfirst windows of the adaptive run (setting chasing the noise phases):");
    for window in report
        .adaptation
        .as_ref()
        .expect("adaptive report")
        .trace
        .windows
        .iter()
        .take(16)
    {
        println!(
            "  window {:>2}  {:<14} {:>7.1} kb/s  residual {:>5.2}%",
            window.index,
            LinkSetting::new(window.code, window.symbol_repeat).label(),
            window.goodput_kbps,
            window.residual_ber * 100.0,
        );
    }

    println!(
        "\nadaptive vs best fixed: {:.1} vs {:.1} kb/s ({:+.1}%)",
        adaptive,
        none.max(rs),
        (adaptive / none.max(rs) - 1.0) * 100.0
    );
    Ok(())
}
