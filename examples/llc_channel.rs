//! LLC channel deep dive: compare the three L3-eviction strategies and the
//! two transmission directions, and show the effect of redundant LLC sets —
//! i.e. a miniature version of Figures 7 and 8.
//!
//! Run with: `cargo run --release --example llc_channel`

use leaky_buddies::prelude::*;

fn run(config: LlcChannelConfig, bits: &[bool]) -> Result<TransmissionReport, ChannelError> {
    let mut channel = LlcChannel::new(config)?;
    Ok(channel.transmit(bits))
}

fn main() -> Result<(), ChannelError> {
    let bits = test_pattern(200, 1);
    let short = test_pattern(24, 2);

    println!("== Eviction strategies (Figure 7) ==");
    for strategy in L3EvictionStrategy::ALL {
        // The whole-L3 clear is orders of magnitude slower; use fewer bits.
        let payload = if strategy == L3EvictionStrategy::FullL3Clear {
            &short
        } else {
            &bits
        };
        let report = run(
            LlcChannelConfig::paper_default().with_strategy(strategy),
            payload,
        )?;
        println!(
            "  {:<22} {:>8.1} kb/s   error {:>5.2}%",
            strategy.label(),
            report.bandwidth_kbps(),
            report.error_rate() * 100.0
        );
    }

    println!("== Directions ==");
    for direction in [Direction::GpuToCpu, Direction::CpuToGpu] {
        let report = run(
            LlcChannelConfig::paper_default().with_direction(direction),
            &bits,
        )?;
        println!(
            "  {:<12} {:>8.1} kb/s   error {:>5.2}%",
            direction.label(),
            report.bandwidth_kbps(),
            report.error_rate() * 100.0
        );
    }

    println!("== Redundant LLC sets (Figure 8) ==");
    for sets in [1usize, 2, 4] {
        let report = run(
            LlcChannelConfig::paper_default().with_sets_per_role(sets),
            &bits,
        )?;
        println!(
            "  {} set(s): {:>8.1} kb/s   error {:>5.2}%",
            sets,
            report.bandwidth_kbps(),
            report.error_rate() * 100.0
        );
    }
    Ok(())
}
