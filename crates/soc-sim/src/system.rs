//! The assembled SoC: CPU caches + GPU L3 + shared LLC + ring + DRAM.
//!
//! [`Soc`] is the façade every higher layer (the CPU and GPU execution models
//! and the covert channels) talks to. It owns every structure of the memory
//! hierarchy and routes accesses along the two asymmetric paths of Figure 1 of
//! the paper:
//!
//! * CPU core → L1 → L2 → ring → LLC slice → DRAM (LLC inclusive of L1/L2);
//! * GPU → L3 → ring → LLC slice → DRAM (LLC *not* inclusive of the L3).
//!
//! Every access is stamped with the requester's current simulated time so the
//! shared resources (ring, LLC ports, DRAM channel) produce realistic queuing
//! delays when the two components overlap — the effect exploited by the
//! contention covert channel.

use crate::address::{PhysAddr, CACHE_LINE_SIZE};
use crate::backend::BatchRequest;
use crate::clock::{SocClocks, Time};
use crate::contention::RingBus;
use crate::dram::{Dram, DramTimingKind};
use crate::events::{EventLayer, EventSink};
use crate::gpu_l3::{GpuL3, GpuL3Config};
use crate::llc::{Llc, LlcConfig, LlcSetId};
use crate::noise::{NoiseConfig, NoiseModel, NoiseSchedule};
use crate::page_table::{AddressSpace, MapError, MappedBuffer, PageKind, PhysFrameAllocator};
use crate::replacement::ReplacementPolicy;
use crate::set_assoc::{CacheGeometry, Indexing, SetAssocCache};
use crate::slm::Slm;
use crate::stats::{ContentionSnapshot, SocStats};
use crate::telemetry::{Counter, Histogram, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Telemetry handles of the SoC hot paths, created once per
/// [`Soc::attach_telemetry`] call so the per-access cost is a handful of
/// relaxed atomic bumps (and exactly one `Option` check when detached).
#[derive(Debug, Clone)]
struct SocInstruments {
    /// Per-slice LLC lookup hits (`llc.slice{i}.hits`).
    llc_hits: Vec<Counter>,
    /// Per-slice LLC lookup misses (`llc.slice{i}.misses`).
    llc_misses: Vec<Counter>,
    /// Per-slice LLC fill evictions (`llc.slice{i}.evictions`).
    llc_evictions: Vec<Counter>,
    /// Lines resident in the target set at fill time (`llc.set_pressure`) —
    /// a full set means every further fill is a conflict eviction.
    set_pressure: Histogram,
    /// Requests that crossed the ring to an LLC slice (`ring.crossings`).
    ring_crossings: Counter,
    /// Picoseconds spent queued on the ring (`ring.stall_ps`).
    ring_stall_ps: Counter,
    /// Picoseconds spent queued on LLC slice ports (`llc.port_stall_ps`).
    port_stall_ps: Counter,
    /// DRAM accesses that stayed in the open row (`dram.row_hits`).
    dram_row_hits: Counter,
    /// DRAM accesses that switched rows (`dram.row_misses`).
    dram_row_misses: Counter,
    /// Accumulated DRAM channel occupancy in picoseconds (`dram.busy_ps`) —
    /// generation-specific: DDR5's halved per-line service time shows up
    /// directly here.
    dram_busy_ps: Counter,
}

/// DRAM row-buffer size assumed by the observational row hit/miss tracker
/// (8 KiB — a typical x8 device row). Telemetry-only; the timing model is
/// row-agnostic and unaffected.
const DRAM_ROW_BYTES: u64 = 8 * 1024;

/// Who issued a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requester {
    /// A CPU core (by index).
    CpuCore(usize),
    /// The integrated GPU.
    Gpu,
}

/// The level of the hierarchy that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// CPU L1 data cache.
    CpuL1,
    /// CPU L2 cache.
    CpuL2,
    /// GPU L3 cache.
    GpuL3,
    /// Shared last-level cache.
    Llc,
    /// System memory.
    Dram,
}

impl HitLevel {
    /// Returns `true` when the access had to leave the requesting component
    /// (i.e. it was served by the LLC or DRAM).
    pub fn is_shared_level(self) -> bool {
        matches!(self, HitLevel::Llc | HitLevel::Dram)
    }
}

/// Outcome of a single memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// End-to-end latency of the access.
    pub latency: Time,
    /// Level that served the access.
    pub level: HitLevel,
    /// Portion of the latency caused by queuing on shared resources
    /// (ring, LLC port, DRAM channel) — the contention signal.
    pub contention_delay: Time,
}

/// Outcome of a GPU access performed by several threads in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelOutcome {
    /// Wall-clock latency of the whole parallel group sequence.
    pub total_latency: Time,
    /// Per-address outcomes, in input order.
    pub outcomes: Vec<AccessOutcome>,
}

impl ParallelOutcome {
    /// Number of accesses that were served by the given level.
    pub fn count_at_level(&self, level: HitLevel) -> usize {
        self.outcomes.iter().filter(|o| o.level == level).count()
    }

    /// Number of accesses served by the LLC or DRAM (i.e. that missed inside
    /// the GPU).
    pub fn shared_level_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.level.is_shared_level())
            .count()
    }
}

/// Fixed-latency parameters of the access paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// CPU L1 hit latency.
    pub cpu_l1_hit: Time,
    /// CPU L2 hit latency.
    pub cpu_l2_hit: Time,
    /// LLC array access latency (added on top of ring/port time).
    pub llc_array: Time,
    /// GPU L3 hit latency (includes the GPU's load/sampler pipeline overhead).
    pub gpu_l3_hit: Time,
    /// GPU L3 lookup cost paid before forwarding a miss to the ring.
    pub gpu_l3_lookup: Time,
    /// Extra GPU-side overhead for requests that reach the LLC or DRAM
    /// (command streamer / thread dispatch path).
    pub gpu_uncore_extra: Time,
    /// Latency of a `clflush` instruction.
    pub clflush: Time,
    /// Issue overhead per additional access in a parallel GPU group.
    pub gpu_issue_overhead: Time,
}

impl LatencyConfig {
    /// Latencies calibrated for the modelled Kaby Lake + Gen9 part. The CPU
    /// side follows commonly published figures (L1 ~1 ns, L2 ~3 ns, LLC
    /// ~10 ns, DRAM ~70 ns); the GPU side is slower and compressed, which is
    /// why the paper needs the custom timer to tell the levels apart
    /// (L3 ~90 ns, LLC ~200 ns, DRAM ~270 ns).
    pub fn kaby_lake() -> Self {
        LatencyConfig {
            cpu_l1_hit: Time::from_ps(950),
            cpu_l2_hit: Time::from_ps(2_900),
            llc_array: Time::from_ns(7),
            gpu_l3_hit: Time::from_ns(90),
            gpu_l3_lookup: Time::from_ns(30),
            gpu_uncore_extra: Time::from_ns(160),
            clflush: Time::from_ns(5),
            gpu_issue_overhead: Time::from_ns(2),
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::kaby_lake()
    }
}

/// Geometry of one CPU core's private caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCacheConfig {
    /// L1D sets (64 on the modelled part).
    pub l1_sets: usize,
    /// L1D ways (8).
    pub l1_ways: usize,
    /// L2 sets (1024).
    pub l2_sets: usize,
    /// L2 ways (4).
    pub l2_ways: usize,
}

impl CpuCacheConfig {
    /// Kaby Lake: 32 KB 8-way L1D, 256 KB 4-way L2.
    pub fn kaby_lake() -> Self {
        CpuCacheConfig {
            l1_sets: 64,
            l1_ways: 8,
            l2_sets: 1024,
            l2_ways: 4,
        }
    }
}

impl Default for CpuCacheConfig {
    fn default() -> Self {
        Self::kaby_lake()
    }
}

/// Way-partitioning of the LLC between the CPU cores and the GPU — the
/// static-partitioning mitigation the paper discusses in Section VI. CPU
/// allocations are confined to ways `[0, cpu_ways)` of every set and GPU
/// allocations to the remaining ways, so neither component can evict the
/// other's lines (lookups are unaffected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcPartition {
    /// Number of ways reserved for the CPU cores (the GPU gets the rest).
    pub cpu_ways: usize,
}

impl LlcPartition {
    /// An even split of a 16-way LLC.
    pub fn even_split() -> Self {
        LlcPartition { cpu_ways: 8 }
    }
}

/// Full SoC configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Clock domains.
    pub clocks: SocClocks,
    /// Number of CPU cores (4 on the i7-7700k).
    pub cpu_cores: usize,
    /// Per-core cache geometry.
    pub cpu_caches: CpuCacheConfig,
    /// LLC configuration.
    pub llc: LlcConfig,
    /// GPU L3 configuration.
    pub gpu_l3: GpuL3Config,
    /// Fixed latencies.
    pub latencies: LatencyConfig,
    /// Noise model configuration (the static ambient level; the phase-0
    /// fallback when a [`NoiseSchedule`] is attached).
    pub noise: NoiseConfig,
    /// Optional time-varying noise program. When present, every timed access
    /// selects its phase's configuration by simulated timestamp, overriding
    /// the static `noise` level.
    pub noise_schedule: Option<NoiseSchedule>,
    /// Optional LLC way-partitioning between CPU and GPU (Section VI
    /// mitigation); `None` models the unmodified, vulnerable hardware.
    pub llc_partition: Option<LlcPartition>,
    /// DRAM generation (timing parameters of the memory controller model).
    pub dram: DramTimingKind,
    /// Physical memory size in bytes.
    pub phys_mem_bytes: u64,
    /// RNG seed (controls frame allocation, replacement tie-breaks and noise).
    pub seed: u64,
}

impl SocConfig {
    /// The paper's experimental platform: i7-7700k (4 cores, 8 MB LLC) with
    /// Gen9 HD Graphics, quiet system. Assembled from
    /// [`crate::topology::TopologySpec::kaby_lake_gen9`].
    pub fn kaby_lake_i7_7700k() -> Self {
        crate::topology::TopologySpec::kaby_lake_gen9().build_config()
    }

    /// A "Gen11-class" scale-up of the platform: the same slice hash and
    /// clock domains, but twice the LLC sets (16 MB total) and a doubled
    /// GPU L3. Assembled from
    /// [`crate::topology::TopologySpec::gen11_class`].
    pub fn gen11_class() -> Self {
        crate::topology::TopologySpec::gen11_class().build_config()
    }

    /// The same platform with the noise model disabled (for deterministic
    /// unit tests).
    pub fn kaby_lake_noiseless() -> Self {
        crate::topology::TopologySpec::kaby_lake_gen9()
            .with_noise(NoiseConfig::none())
            .build_config()
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the noise configuration (builder style).
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches a time-varying noise program (builder style). The schedule
    /// overrides the static noise level for every timed access.
    pub fn with_noise_schedule(mut self, schedule: NoiseSchedule) -> Self {
        self.noise_schedule = Some(schedule);
        self
    }

    /// Enables LLC way-partitioning between the CPU and the GPU (builder
    /// style) — the Section VI mitigation.
    pub fn with_llc_partition(mut self, partition: LlcPartition) -> Self {
        self.llc_partition = Some(partition);
        self
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::kaby_lake_i7_7700k()
    }
}

#[derive(Debug, Clone)]
struct CpuPrivateCaches {
    l1: SetAssocCache,
    l2: SetAssocCache,
}

impl CpuPrivateCaches {
    fn new(cfg: &CpuCacheConfig) -> Self {
        CpuPrivateCaches {
            l1: SetAssocCache::new(CacheGeometry {
                sets: cfg.l1_sets,
                ways: cfg.l1_ways,
                policy: ReplacementPolicy::Lru,
                indexing: Indexing::LowOrder,
            }),
            l2: SetAssocCache::new(CacheGeometry {
                sets: cfg.l2_sets,
                ways: cfg.l2_ways,
                policy: ReplacementPolicy::Lru,
                indexing: Indexing::LowOrder,
            }),
        }
    }
}

/// The simulated system-on-chip.
#[derive(Debug, Clone)]
pub struct Soc {
    config: SocConfig,
    cpu_caches: Vec<CpuPrivateCaches>,
    gpu_l3: GpuL3,
    slm: Slm,
    llc: Llc,
    ring: RingBus,
    dram: Dram,
    noise: NoiseModel,
    /// Index of the active [`NoiseSchedule`] phase the `noise` model was
    /// built from (0 when no schedule is attached).
    noise_phase: usize,
    /// Absolute `[start, end)` window of simulated time over which
    /// `noise_phase` holds — the discrete-event fast path of `tune_noise`:
    /// accesses stamped inside the window skip the schedule walk entirely,
    /// and the state is re-derived only at the next phase boundary (or on a
    /// backward time jump). Initially empty so the first access tunes.
    noise_window: (Time, Time),
    /// Two-flit ring serialization time, precomputed from the ring clock at
    /// construction (previously re-derived from the f64 clock rate on every
    /// shared-level access).
    ring_serialization: Time,
    frames: PhysFrameAllocator,
    rng: SmallRng,
    stats: SocStats,
    next_pid: u32,
    /// Telemetry handles, present only after [`Soc::attach_telemetry`].
    instruments: Option<SocInstruments>,
    /// Timeline sink, present only after [`Soc::attach_events`].
    events: Option<EventSink>,
    /// Open-row tracker of the observational DRAM row hit/miss telemetry.
    dram_open_row: Option<u64>,
}

impl Soc {
    /// Builds an SoC from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero CPU cores.
    pub fn new(config: SocConfig) -> Self {
        assert!(config.cpu_cores > 0, "SoC needs at least one CPU core");
        let ring_cycle = Time::from_ps(config.clocks.ring.picos_per_cycle().round() as u64);
        let cpu_caches = (0..config.cpu_cores)
            .map(|_| CpuPrivateCaches::new(&config.cpu_caches))
            .collect();
        Soc {
            cpu_caches,
            gpu_l3: GpuL3::new(config.gpu_l3),
            slm: Slm::gen9(),
            llc: Llc::new(config.llc.clone()),
            ring: RingBus::new(32, ring_cycle, Time::from_ns(2)),
            dram: Dram::from_timing(&config.dram),
            noise: NoiseModel::new(match &config.noise_schedule {
                Some(schedule) => schedule.config_at(Time::ZERO).clone(),
                None => config.noise.clone(),
            }),
            noise_phase: 0,
            noise_window: (Time::ZERO, Time::ZERO),
            ring_serialization: Time::from_ps(
                2 * config.clocks.ring.picos_per_cycle().round() as u64,
            ),
            frames: PhysFrameAllocator::new(config.phys_mem_bytes, config.seed ^ 0x9E37_79B9),
            rng: SmallRng::seed_from_u64(config.seed),
            stats: SocStats::default(),
            next_pid: 1,
            instruments: None,
            events: None,
            dram_open_row: None,
            config,
        }
    }

    /// Attaches this SoC's instruments to `registry`: per-slice LLC
    /// hit/miss/eviction counters and set-conflict pressure (`llc.*`),
    /// ring-crossing and stall counters (`ring.*`), and the observational
    /// DRAM row hit/miss and channel-occupancy counters (`dram.*`).
    ///
    /// Attaching is purely observational — no simulated latency, RNG draw
    /// or replacement decision changes. Attaching again replaces the
    /// previous registry's handles.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        let slices = self.config.llc.slices();
        self.instruments = Some(SocInstruments {
            llc_hits: (0..slices)
                .map(|i| registry.counter(&format!("llc.slice{i}.hits")))
                .collect(),
            llc_misses: (0..slices)
                .map(|i| registry.counter(&format!("llc.slice{i}.misses")))
                .collect(),
            llc_evictions: (0..slices)
                .map(|i| registry.counter(&format!("llc.slice{i}.evictions")))
                .collect(),
            set_pressure: registry.histogram("llc.set_pressure"),
            ring_crossings: registry.counter("ring.crossings"),
            ring_stall_ps: registry.counter("ring.stall_ps"),
            port_stall_ps: registry.counter("llc.port_stall_ps"),
            dram_row_hits: registry.counter("dram.row_hits"),
            dram_row_misses: registry.counter("dram.row_misses"),
            dram_busy_ps: registry.counter("dram.busy_ps"),
        });
    }

    /// Attaches this SoC to a timeline sink (see [`crate::events`]): a
    /// `sim`-track description of the topology (and the LLC way partition,
    /// when one is configured) is recorded immediately, and every
    /// [`NoiseSchedule`] phase transition is recorded on the `noise` track
    /// as it happens.
    ///
    /// Like [`Soc::attach_telemetry`], attaching is purely observational —
    /// no simulated latency, RNG draw or replacement decision changes.
    /// Attaching again replaces the previous sink.
    pub fn attach_events(&mut self, sink: &EventSink) {
        self.events = Some(sink.clone());
        sink.instant(
            EventLayer::Sim,
            "topology",
            Time::ZERO,
            vec![
                ("cpu_cores", self.config.cpu_cores.into()),
                ("llc_slices", self.config.llc.slices().into()),
                ("llc_ways", self.config.llc.ways.into()),
                (
                    "dram",
                    crate::dram::DramTiming::label(&self.config.dram).into(),
                ),
            ],
        );
        if let Some(partition) = self.config.llc_partition {
            sink.instant(
                EventLayer::Sim,
                "llc_partition",
                Time::ZERO,
                vec![
                    ("cpu_ways", partition.cpu_ways.into()),
                    (
                        "gpu_ways",
                        (self.config.llc.ways - partition.cpu_ways).into(),
                    ),
                ],
            );
        }
    }

    /// Notes one LLC lookup (after the shared-level access path decided
    /// hit vs miss) on the already-resolved serving slice.
    fn note_llc_lookup(&mut self, slice: usize, hit: bool) {
        if let Some(instruments) = &self.instruments {
            if hit {
                instruments.llc_hits[slice].incr();
            } else {
                instruments.llc_misses[slice].incr();
            }
        }
    }

    /// Notes one ring crossing and its queuing delays.
    fn note_ring_crossing(&mut self, ring_queue: Time, port_queue: Time) {
        if let Some(instruments) = &self.instruments {
            instruments.ring_crossings.incr();
            instruments.ring_stall_ps.add(ring_queue.as_ps());
            instruments.port_stall_ps.add(port_queue.as_ps());
        }
    }

    /// Notes one DRAM access: open-row hit/miss (observational 8 KiB row
    /// granularity) and the generation-specific channel occupancy it adds.
    fn note_dram_access(&mut self, paddr: PhysAddr) {
        if self.instruments.is_none() {
            return;
        }
        let row = paddr.value() / DRAM_ROW_BYTES;
        let instruments = self.instruments.as_ref().expect("checked above");
        if self.dram_open_row == Some(row) {
            instruments.dram_row_hits.incr();
        } else {
            instruments.dram_row_misses.incr();
        }
        self.dram_open_row = Some(row);
        use crate::dram::DramTiming;
        instruments
            .dram_busy_ps
            .add(self.config.dram.channel_service().as_ps());
    }

    /// Convenience constructor for the paper's platform.
    pub fn kaby_lake() -> Self {
        Soc::new(SocConfig::kaby_lake_i7_7700k())
    }

    /// Returns the configuration.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Creates a new process address space.
    pub fn create_process(&mut self) -> AddressSpace {
        let pid = self.next_pid;
        self.next_pid += 1;
        AddressSpace::new(pid)
    }

    /// Allocates and maps a buffer in `space`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the frame allocator.
    pub fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError> {
        space.alloc(len, kind, &mut self.frames)
    }

    /// Shared LLC (read-only view).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// GPU L3 (read-only view).
    pub fn gpu_l3(&self) -> &GpuL3 {
        &self.gpu_l3
    }

    /// Shared local memory of the subslice running the attacker work-group.
    pub fn slm(&self) -> &Slm {
        &self.slm
    }

    /// Mutable SLM access (used by the GPU execution model's atomics).
    pub fn slm_mut(&mut self) -> &mut Slm {
        &mut self.slm
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SocStats {
        self.stats
    }

    /// Samples a multiplicative noise factor for the GPU custom timer's
    /// increment rate (centred on 1.0; see [`crate::noise::NoiseModel`]).
    pub fn timer_noise_factor(&mut self) -> f64 {
        self.noise.timer_rate_factor(&mut self.rng)
    }

    /// Snapshot of contention counters on the shared resources.
    pub fn contention_snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            ring_transactions: self.ring.resource().transactions(),
            ring_contended: self.ring.resource().contended_transactions(),
            ring_queue_delay: self.ring.resource().total_queue_delay(),
            dram_transactions: self.dram.channel().transactions(),
            dram_queue_delay: self.dram.channel().total_queue_delay(),
        }
    }

    /// Clears all statistics counters (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = SocStats::default();
        self.llc.reset_stats();
        self.gpu_l3.reset_stats();
        self.ring.reset_stats();
        self.dram.reset_stats();
    }

    /// Re-tunes the noise model to the schedule phase active at `now`.
    ///
    /// Event-driven: the active phase's absolute `[start, end)` window is
    /// cached, so an access stamped inside it costs two compares. The
    /// schedule is only walked again when `now` crosses the next phase
    /// boundary — or jumps backwards, which re-tunes just the same.
    fn tune_noise(&mut self, now: Time) {
        if let Some(schedule) = &self.config.noise_schedule {
            if now >= self.noise_window.0 && now < self.noise_window.1 {
                return;
            }
            let (phase, start, end) = schedule.phase_window_at(now);
            self.noise_window = (start, end);
            if phase != self.noise_phase {
                let from = self.noise_phase;
                self.noise_phase = phase;
                self.noise = NoiseModel::new(schedule.phases()[phase].config.clone());
                if let Some(events) = &self.events {
                    events.instant(
                        EventLayer::Noise,
                        "phase_transition",
                        now,
                        vec![("from", from.into()), ("to", phase.into())],
                    );
                }
            }
        }
    }

    fn maybe_inject_noise_eviction(&mut self, sid: LlcSetId) {
        if self.noise.spurious_eviction(&mut self.rng)
            && self.llc.evict_random_at(sid, &mut self.rng).is_some()
        {
            self.stats.spurious_evictions += 1;
        }
    }

    /// The way range the given requester class is allowed to allocate into,
    /// or `None` when the LLC is unpartitioned.
    fn partition_ways(&self, from_gpu: bool) -> Option<(usize, usize)> {
        self.config.llc_partition.map(|p| {
            let total = self.config.llc.ways;
            if from_gpu {
                (p.cpu_ways, total)
            } else {
                (0, p.cpu_ways)
            }
        })
    }

    /// Fills a line into the LLC, performing inclusive back-invalidation of
    /// the CPU private caches for any victim (but never touching the GPU L3 —
    /// the LLC is not inclusive of it). `from_gpu` selects the allocation
    /// partition when way-partitioning is enabled.
    fn llc_fill_with_back_invalidation(&mut self, sid: LlcSetId, paddr: PhysAddr, from_gpu: bool) {
        if let Some(instruments) = &self.instruments {
            // Set-conflict pressure: lines already resident in the target
            // set at fill time. A reading at the associativity limit means
            // this fill must evict — sustained full-set readings are the
            // signature of the covert channels' eviction-set traffic.
            instruments
                .set_pressure
                .record(self.llc.set_occupancy(sid) as u64);
        }
        let outcome = match self.partition_ways(from_gpu) {
            Some((lo, hi)) => {
                self.llc
                    .fill_within_in_slice(sid.slice, paddr, &mut self.rng, lo, hi)
            }
            None => self.llc.fill_in_slice(sid.slice, paddr, &mut self.rng),
        };
        if let Some(victim) = outcome.evicted() {
            if let Some(instruments) = &self.instruments {
                // The victim came out of the set being filled, so it shares
                // the fill's slice.
                instruments.llc_evictions[sid.slice].incr();
            }
            for core in &mut self.cpu_caches {
                if core.l1.invalidate(victim) {
                    self.stats.back_invalidations += 1;
                }
                if core.l2.invalidate(victim) {
                    self.stats.back_invalidations += 1;
                }
            }
        }
    }

    /// Performs a CPU load of the line containing `paddr` from core `core`,
    /// arriving at the core's local time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn cpu_access(&mut self, core: usize, paddr: PhysAddr, now: Time) -> AccessOutcome {
        assert!(core < self.cpu_caches.len(), "core index out of range");
        self.tune_noise(now);
        let lat = self.config.latencies;
        let jitter = self.noise.latency_jitter(&mut self.rng);

        if self.cpu_caches[core].l1.access(paddr) {
            self.stats.cpu_l1_hits += 1;
            return AccessOutcome {
                latency: lat.cpu_l1_hit + jitter,
                level: HitLevel::CpuL1,
                contention_delay: Time::ZERO,
            };
        }
        if self.cpu_caches[core].l2.access(paddr) {
            self.stats.cpu_l2_hits += 1;
            // Fill into L1 on the way back.
            let _ = self.cpu_caches[core].l1.fill(paddr, &mut self.rng);
            return AccessOutcome {
                latency: lat.cpu_l2_hit + jitter,
                level: HitLevel::CpuL2,
                contention_delay: Time::ZERO,
            };
        }

        // Miss in the private caches: go over the ring to the LLC slice.
        // The serving set is resolved once and reused by the port, lookup,
        // fill and telemetry steps below.
        let sid = self.llc.set_of(paddr);
        let ring_latency = self.ring.transfer(now, CACHE_LINE_SIZE);
        let ring_queue = ring_latency.saturating_sub(Time::from_ns(2)); // informational only
        let port_queue = self.llc.acquire_port_on(sid.slice, now + ring_latency);
        self.note_ring_crossing(ring_queue, port_queue);
        self.maybe_inject_noise_eviction(sid);

        let base = lat.cpu_l2_hit + ring_latency + port_queue + lat.llc_array;
        let contention = port_queue + ring_queue.saturating_sub(self.ring_serialization);

        if self.llc.access_in_slice(sid.slice, paddr) {
            self.stats.cpu_llc_hits += 1;
            self.note_llc_lookup(sid.slice, true);
            let _ = self.cpu_caches[core].l2.fill(paddr, &mut self.rng);
            let _ = self.cpu_caches[core].l1.fill(paddr, &mut self.rng);
            return AccessOutcome {
                latency: base + jitter,
                level: HitLevel::Llc,
                contention_delay: contention,
            };
        }
        self.note_llc_lookup(sid.slice, false);

        // LLC miss: fetch from DRAM, fill LLC (inclusive) and the private caches.
        let dram_latency = self.dram.access(now + base);
        self.stats.cpu_dram_accesses += 1;
        self.note_dram_access(paddr);
        self.llc_fill_with_back_invalidation(sid, paddr, false);
        let _ = self.cpu_caches[core].l2.fill(paddr, &mut self.rng);
        let _ = self.cpu_caches[core].l1.fill(paddr, &mut self.rng);
        let dram_queue = dram_latency.saturating_sub(self.dram.base_latency());
        AccessOutcome {
            latency: base + dram_latency + jitter,
            level: HitLevel::Dram,
            contention_delay: contention + dram_queue,
        }
    }

    /// Performs a GPU load of the line containing `paddr`, arriving at the
    /// GPU's local time `now`.
    pub fn gpu_access(&mut self, paddr: PhysAddr, now: Time) -> AccessOutcome {
        self.tune_noise(now);
        let lat = self.config.latencies;
        let jitter = self.noise.latency_jitter(&mut self.rng);

        if self.gpu_l3.access(paddr) {
            self.stats.gpu_l3_hits += 1;
            return AccessOutcome {
                latency: lat.gpu_l3_hit + jitter,
                level: HitLevel::GpuL3,
                contention_delay: Time::ZERO,
            };
        }

        // L3 miss: the request crosses the ring to the LLC.
        let sid = self.llc.set_of(paddr);
        let ring_latency = self.ring.transfer(now + lat.gpu_l3_lookup, CACHE_LINE_SIZE);
        let ring_queue = ring_latency.saturating_sub(Time::from_ns(2));
        let port_queue = self
            .llc
            .acquire_port_on(sid.slice, now + lat.gpu_l3_lookup + ring_latency);
        self.note_ring_crossing(ring_queue, port_queue);
        self.maybe_inject_noise_eviction(sid);

        let base =
            lat.gpu_l3_lookup + ring_latency + port_queue + lat.llc_array + lat.gpu_uncore_extra;
        let contention = port_queue + ring_queue.saturating_sub(self.ring_serialization);

        if self.llc.access_in_slice(sid.slice, paddr) {
            self.stats.gpu_llc_hits += 1;
            self.note_llc_lookup(sid.slice, true);
            let _ = self.gpu_l3.fill(paddr, &mut self.rng);
            return AccessOutcome {
                latency: base + jitter,
                level: HitLevel::Llc,
                contention_delay: contention,
            };
        }
        self.note_llc_lookup(sid.slice, false);

        let dram_latency = self.dram.access(now + base);
        self.stats.gpu_dram_accesses += 1;
        self.note_dram_access(paddr);
        // Fill LLC (back-invalidating CPU caches if a victim falls out), then the L3.
        self.llc_fill_with_back_invalidation(sid, paddr, true);
        let _ = self.gpu_l3.fill(paddr, &mut self.rng);
        let dram_queue = dram_latency.saturating_sub(self.dram.base_latency());
        AccessOutcome {
            latency: base + dram_latency + jitter,
            level: HitLevel::Dram,
            contention_delay: contention + dram_queue,
        }
    }

    /// Performs a batch of GPU loads issued by `parallelism` threads at a
    /// time (the paper probes all 16 ways of an LLC set with 16 threads).
    ///
    /// Within one group the accesses overlap: the group costs the maximum of
    /// its members' latencies plus a small per-access issue overhead. Groups
    /// execute back-to-back.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn gpu_access_parallel(
        &mut self,
        addrs: &[PhysAddr],
        parallelism: usize,
        now: Time,
    ) -> ParallelOutcome {
        assert!(parallelism > 0, "parallelism must be at least 1");
        let mut outcomes = Vec::with_capacity(addrs.len());
        let mut elapsed = Time::ZERO;
        for group in addrs.chunks(parallelism) {
            let mut group_max = Time::ZERO;
            for &addr in group {
                let outcome = self.gpu_access(addr, now + elapsed);
                group_max = group_max.max(outcome.latency);
                outcomes.push(outcome);
            }
            let issue = Time::from_ps(
                self.config.latencies.gpu_issue_overhead.as_ps() * (group.len() as u64 - 1),
            );
            elapsed += group_max + issue;
        }
        ParallelOutcome {
            total_latency: elapsed,
            outcomes,
        }
    }

    /// Executes a chained batch of timed requests in one call — the batched
    /// fast path behind [`crate::MemorySystem::access_batch`].
    ///
    /// Requests execute back-to-back at a running local time that starts at
    /// `start` and advances by each load's latency (and each flush's
    /// instruction latency), exactly as an execution-model loop issuing
    /// them one at a time would. One [`AccessOutcome`] per *load* is
    /// appended to `outcomes` (flushes only advance time); the return value
    /// is the running time after the last request.
    ///
    /// Bit-identical to the per-access path by construction: the same
    /// access routines run in the same order with the same RNG draws — the
    /// batch only amortizes dispatch, bounds checks and outcome-buffer
    /// growth across the burst.
    pub fn simulate_burst(
        &mut self,
        requests: &[BatchRequest],
        start: Time,
        outcomes: &mut Vec<AccessOutcome>,
    ) -> Time {
        outcomes.reserve(requests.len());
        let mut now = start;
        for &request in requests {
            match request {
                BatchRequest::CpuLoad { core, paddr } => {
                    let outcome = self.cpu_access(core, paddr, now);
                    now += outcome.latency;
                    outcomes.push(outcome);
                }
                BatchRequest::GpuLoad { paddr } => {
                    let outcome = self.gpu_access(paddr, now);
                    now += outcome.latency;
                    outcomes.push(outcome);
                }
                BatchRequest::Flush { paddr } => {
                    now += self.clflush(paddr, now);
                }
            }
        }
        now
    }

    /// Executes `clflush` on the line containing `paddr` from a CPU core:
    /// the line is removed from every CPU private cache and from the LLC, but
    /// — because the LLC is not inclusive of the GPU L3 — it stays resident in
    /// the GPU L3 if it was there. Returns the instruction latency.
    pub fn clflush(&mut self, paddr: PhysAddr, _now: Time) -> Time {
        for core in &mut self.cpu_caches {
            core.l1.invalidate(paddr);
            core.l2.invalidate(paddr);
        }
        self.llc.invalidate(paddr);
        self.stats.clflushes += 1;
        self.config.latencies.clflush
    }

    /// Returns `true` when the line is resident in any CPU private cache of
    /// any core (diagnostic helper for tests).
    pub fn in_cpu_private_caches(&self, paddr: PhysAddr) -> bool {
        self.cpu_caches
            .iter()
            .any(|c| c.l1.contains(paddr) || c.l2.contains(paddr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> Soc {
        Soc::new(SocConfig::kaby_lake_noiseless())
    }

    #[test]
    fn cold_cpu_access_goes_to_dram_then_hits_l1() {
        let mut soc = soc();
        let a = PhysAddr::new(0x40_0000);
        let first = soc.cpu_access(0, a, Time::ZERO);
        assert_eq!(first.level, HitLevel::Dram);
        assert!(first.latency > Time::from_ns(60));
        let second = soc.cpu_access(0, a, first.latency);
        assert_eq!(second.level, HitLevel::CpuL1);
        assert!(second.latency < Time::from_ns(2));
        let stats = soc.stats();
        assert_eq!(stats.cpu_dram_accesses, 1);
        assert_eq!(stats.cpu_l1_hits, 1);
    }

    #[test]
    fn latency_ordering_l1_l2_llc_dram() {
        let mut soc = soc();
        let a = PhysAddr::new(0x123_4000);
        let dram = soc.cpu_access(0, a, Time::ZERO);
        // Evict from L1 by filling conflicting lines (L1 has 64 sets -> stride 64*64 bytes).
        // Simpler: clflush then re-access so it comes from DRAM again, then
        // access once more for the L1 hit; compare against an LLC hit produced
        // from another core.
        let llc_hit = soc.cpu_access(1, a, Time::from_us(1));
        assert_eq!(llc_hit.level, HitLevel::Llc);
        let l1_hit = soc.cpu_access(1, a, Time::from_us(2));
        assert_eq!(l1_hit.level, HitLevel::CpuL1);
        assert!(l1_hit.latency < llc_hit.latency);
        assert!(llc_hit.latency < dram.latency);
    }

    #[test]
    fn gpu_access_levels_are_distinguishable() {
        let mut soc = soc();
        let a = PhysAddr::new(0x80_0000);
        let dram = soc.gpu_access(a, Time::ZERO);
        assert_eq!(dram.level, HitLevel::Dram);
        let l3 = soc.gpu_access(a, Time::from_us(1));
        assert_eq!(l3.level, HitLevel::GpuL3);
        // Invalidate only the L3 copy to force an LLC hit.
        assert!(soc.gpu_l3.contains(a));
        soc.gpu_l3.invalidate(a);
        let llc = soc.gpu_access(a, Time::from_us(2));
        assert_eq!(llc.level, HitLevel::Llc);
        assert!(
            l3.latency < llc.latency,
            "L3 {} vs LLC {}",
            l3.latency,
            llc.latency
        );
        assert!(
            llc.latency < dram.latency,
            "LLC {} vs DRAM {}",
            llc.latency,
            dram.latency
        );
    }

    #[test]
    fn llc_is_not_inclusive_of_gpu_l3() {
        // The paper's inclusiveness experiment (Section III-D): GPU caches a
        // line, CPU accesses and clflushes it; the line must survive in the
        // GPU L3 and the next GPU access must be an L3 hit.
        let mut soc = soc();
        let a = PhysAddr::new(0x99_0000);
        soc.gpu_access(a, Time::ZERO);
        soc.cpu_access(0, a, Time::from_us(1));
        soc.clflush(a, Time::from_us(2));
        assert!(!soc.llc().contains(a), "clflush removes the LLC copy");
        assert!(!soc.in_cpu_private_caches(a), "clflush removes CPU copies");
        let after = soc.gpu_access(a, Time::from_us(3));
        assert_eq!(
            after.level,
            HitLevel::GpuL3,
            "GPU L3 copy must survive clflush"
        );
    }

    #[test]
    fn llc_is_inclusive_of_cpu_caches() {
        let mut soc = soc();
        let llc_cfg = soc.config().llc.clone();
        let ways = llc_cfg.ways;
        // Bring a target line into core 0's caches and the LLC.
        let target = PhysAddr::new(0);
        soc.cpu_access(0, target, Time::ZERO);
        assert!(soc.in_cpu_private_caches(target));
        let set = soc.llc().set_of(target);
        // Evict it from the LLC by filling the same LLC set with `ways`
        // further lines from the GPU side (which never touches core 0's L1/L2
        // sets enough to evict the target there by itself).
        let conflicts = soc
            .llc()
            .enumerate_set_addresses(set, PhysAddr::new(1 << 21), ways + 2);
        let mut t = Time::from_us(1);
        for &c in &conflicts {
            soc.gpu_access(c, t);
            t += Time::from_us(1);
        }
        assert!(!soc.llc().contains(target), "target evicted from LLC");
        assert!(
            !soc.in_cpu_private_caches(target),
            "inclusive LLC must back-invalidate the CPU copies"
        );
        assert!(soc.stats().back_invalidations > 0);
    }

    #[test]
    fn concurrent_cpu_gpu_traffic_shows_contention() {
        let mut soc = soc();
        // Warm two disjoint buffers into the LLC.
        let cpu_lines: Vec<PhysAddr> = (0..512u64)
            .map(|i| PhysAddr::new(0x100_0000 + i * 64))
            .collect();
        let gpu_lines: Vec<PhysAddr> = (0..512u64)
            .map(|i| PhysAddr::new(0x200_0000 + i * 64))
            .collect();
        let mut t = Time::ZERO;
        for &a in &cpu_lines {
            t += soc.cpu_access(0, a, t).latency;
        }
        for &a in &gpu_lines {
            t += soc.gpu_access(a, t).latency;
        }
        soc.reset_stats();

        // Solo phase: CPU streams its buffer alone (forcing LLC hits by
        // evicting from the private caches first via clflush of... instead we
        // use fresh lines far apart so they miss L1/L2 but hit LLC).
        let mut solo_total = Time::ZERO;
        let mut now = t;
        for &a in &cpu_lines {
            // Evict from private caches so the request reaches the LLC.
            for core in 0..1 {
                let _ = core;
            }
            soc.clflush(a, now);
            soc.cpu_access(0, a, now); // re-warm LLC from DRAM
            let out = soc.cpu_access(1, a, now);
            solo_total += out.latency;
            now += Time::from_ns(100);
        }

        // Contended phase: GPU hammers the ring at the same instants.
        let mut contended_total = Time::ZERO;
        for (i, &a) in cpu_lines.iter().enumerate() {
            let ga = gpu_lines[i % gpu_lines.len()];
            soc.gpu_l3.invalidate(ga); // force the GPU to cross the ring
            soc.gpu_access(ga, now);
            let out = soc.cpu_access(2, a, now);
            contended_total += out.latency;
            now += Time::from_ns(100);
        }
        assert!(
            contended_total > solo_total,
            "contended {contended_total:?} must exceed solo {solo_total:?}"
        );
        assert!(soc.contention_snapshot().ring_contention_ratio() > 0.0);
    }

    #[test]
    fn gpu_parallel_access_is_faster_than_serial() {
        let mut soc = soc();
        let addrs: Vec<PhysAddr> = (0..16u64)
            .map(|i| PhysAddr::new(0x300_0000 + i * 64))
            .collect();
        // Warm so that both runs see the same hit levels (GPU L3 hits).
        for &a in &addrs {
            soc.gpu_access(a, Time::ZERO);
        }
        let serial = soc.gpu_access_parallel(&addrs, 1, Time::from_us(10));
        let parallel = soc.gpu_access_parallel(&addrs, 16, Time::from_us(20));
        assert_eq!(serial.outcomes.len(), 16);
        assert_eq!(parallel.count_at_level(HitLevel::GpuL3), 16);
        assert!(parallel.total_latency < serial.total_latency);
        assert_eq!(parallel.shared_level_count(), 0);
    }

    #[test]
    fn alloc_and_translate_through_soc() {
        let mut soc = soc();
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, 4096, PageKind::Small).unwrap();
        let pa = space.translate(buf.base).unwrap();
        let out = soc.cpu_access(0, pa, Time::ZERO);
        assert_eq!(out.level, HitLevel::Dram);
        let pid2 = soc.create_process().pid();
        assert!(pid2 > space.pid());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut soc = soc();
        soc.cpu_access(0, PhysAddr::new(0x1000), Time::ZERO);
        soc.reset_stats();
        assert_eq!(soc.stats().total_accesses(), 0);
        assert_eq!(soc.contention_snapshot().ring_transactions, 0);
    }

    #[test]
    #[should_panic(expected = "core index out of range")]
    fn out_of_range_core_panics() {
        let mut soc = soc();
        soc.cpu_access(99, PhysAddr::new(0), Time::ZERO);
    }

    #[test]
    fn partitioned_llc_confines_each_component_to_its_ways() {
        let config =
            SocConfig::kaby_lake_noiseless().with_llc_partition(LlcPartition::even_split());
        let mut soc = Soc::new(config);
        let cpu_line = PhysAddr::new(0);
        soc.cpu_access(0, cpu_line, Time::ZERO);
        let set = soc.llc().set_of(cpu_line);
        // The GPU floods the same LLC set with three times its associativity.
        let conflicts = soc
            .llc()
            .enumerate_set_addresses(set, PhysAddr::new(1 << 24), 48);
        let mut t = Time::from_us(1);
        for &c in &conflicts {
            soc.gpu_access(c, t);
            t += Time::from_us(1);
        }
        assert!(
            soc.llc().contains(cpu_line),
            "GPU fills must stay out of the CPU's LLC partition"
        );
        // Without the partition the same traffic evicts the line.
        let mut open = Soc::new(SocConfig::kaby_lake_noiseless());
        open.cpu_access(0, cpu_line, Time::ZERO);
        let mut t = Time::from_us(1);
        for &c in &conflicts {
            open.gpu_access(c, t);
            t += Time::from_us(1);
        }
        assert!(!open.llc().contains(cpu_line));
    }

    #[test]
    fn even_split_reserves_half_the_ways() {
        assert_eq!(LlcPartition::even_split().cpu_ways, 8);
        let cfg = SocConfig::kaby_lake_i7_7700k().with_llc_partition(LlcPartition { cpu_ways: 4 });
        assert_eq!(cfg.llc_partition, Some(LlcPartition { cpu_ways: 4 }));
    }

    #[test]
    fn telemetry_counts_llc_ring_and_dram_activity() {
        use crate::telemetry::Registry;
        let registry = Registry::new();
        let mut soc = soc();
        soc.attach_telemetry(&registry);
        let a = PhysAddr::new(0x40_0000);
        soc.cpu_access(0, a, Time::ZERO); // miss -> DRAM
        soc.cpu_access(1, a, Time::from_us(1)); // other core: LLC hit
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("llc.slice"), 2); // one miss + one hit
        let slice = soc.llc().set_of(a).slice;
        assert_eq!(snap.counter(&format!("llc.slice{slice}.hits")), Some(1));
        assert_eq!(snap.counter(&format!("llc.slice{slice}.misses")), Some(1));
        assert_eq!(snap.counter("ring.crossings"), Some(2));
        assert_eq!(
            snap.counter("dram.row_hits").unwrap() + snap.counter("dram.row_misses").unwrap(),
            1
        );
        assert!(snap.counter("dram.busy_ps").unwrap() > 0);
        assert_eq!(snap.histogram("llc.set_pressure").unwrap().count(), 1);
    }

    #[test]
    fn telemetry_counts_evictions_and_row_locality() {
        use crate::telemetry::Registry;
        let registry = Registry::new();
        let mut soc = soc();
        soc.attach_telemetry(&registry);
        let ways = soc.config().llc.ways;
        let set = soc.llc().set_of(PhysAddr::new(0));
        let conflicts = soc
            .llc()
            .enumerate_set_addresses(set, PhysAddr::new(0), ways + 4);
        let mut t = Time::ZERO;
        for &c in &conflicts {
            soc.cpu_access(0, c, t);
            t += Time::from_us(1);
        }
        let snap = registry.snapshot();
        assert!(snap.counter_total("llc.slice") >= (ways + 4) as u64);
        assert_eq!(
            snap.counter(&format!("llc.slice{}.evictions", set.slice)),
            Some(4)
        );
        // Sequential lines within one 8 KiB row produce row hits.
        let mut rowy = soc;
        let base = 0x200_0000u64;
        for i in 0..8u64 {
            rowy.cpu_access(0, PhysAddr::new(base + i * 64), t);
            t += Time::from_us(1);
        }
        assert!(registry.snapshot().counter("dram.row_hits").unwrap() > 0);
    }

    #[test]
    fn telemetry_attachment_never_changes_timing() {
        use crate::telemetry::Registry;
        let mut plain = soc();
        let mut instrumented = soc();
        instrumented.attach_telemetry(&Registry::new());
        let mut disabled = soc();
        disabled.attach_telemetry(&Registry::disabled());
        for i in 0..256u64 {
            let a = PhysAddr::new((i % 48) * 64 * 131);
            let now = Time::from_us(i);
            let expect = if i % 3 == 0 {
                plain.gpu_access(a, now)
            } else {
                plain.cpu_access((i % 4) as usize, a, now)
            };
            let got = if i % 3 == 0 {
                instrumented.gpu_access(a, now)
            } else {
                instrumented.cpu_access((i % 4) as usize, a, now)
            };
            let got_disabled = if i % 3 == 0 {
                disabled.gpu_access(a, now)
            } else {
                disabled.cpu_access((i % 4) as usize, a, now)
            };
            assert_eq!(expect, got, "attached telemetry must be observational");
            assert_eq!(expect, got_disabled, "disabled telemetry must be too");
        }
    }

    #[test]
    fn noise_schedule_switches_regimes_by_access_timestamp() {
        use crate::noise::{NoisePhase, NoiseSchedule};
        // Phase 0 (first 100 us): perfectly silent. Phase 1 (next 100 us):
        // massive latency jitter. Non-cyclic, so the burst phase would hold
        // after the program ends.
        let schedule = NoiseSchedule::new(
            vec![
                NoisePhase {
                    duration: Time::from_us(100),
                    config: NoiseConfig::none(),
                },
                NoisePhase {
                    duration: Time::from_us(100),
                    config: NoiseConfig {
                        latency_jitter_ps: 1_000_000.0,
                        ..NoiseConfig::none()
                    },
                },
            ],
            false,
        );
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless().with_noise_schedule(schedule));
        let line = PhysAddr::new(0x100_0000);
        let l1_hit = soc.config().latencies.cpu_l1_hit;
        soc.cpu_access(0, line, Time::ZERO); // cold fill
                                             // L1 hits stamped inside the quiet phase are exactly the base latency.
        for i in 1..16u64 {
            let out = soc.cpu_access(0, line, Time::from_us(i));
            assert_eq!(out.latency, l1_hit, "quiet phase must be jitter-free");
        }
        // The same hits stamped inside the burst phase pick up the jitter.
        let burst_max = (0..16u64)
            .map(|i| soc.cpu_access(0, line, Time::from_us(150 + i)).latency)
            .max()
            .unwrap();
        assert!(
            burst_max > l1_hit + Time::from_ns(100),
            "burst phase must inject jitter, max {burst_max:?}"
        );
        // Jumping back to a quiet timestamp re-tunes back to silence.
        let out = soc.cpu_access(0, line, Time::from_us(5));
        assert_eq!(out.latency, l1_hit);
    }
}
