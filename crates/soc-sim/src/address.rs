//! Physical and virtual address newtypes and cache-line arithmetic.
//!
//! The LLC of the simulated SoC is physically indexed, while attacker code
//! works with virtual addresses, so both address kinds get their own newtype
//! to keep the covert-channel code honest about which one it is handling
//! ([`PhysAddr`] vs [`VirtAddr`]).

use std::fmt;

/// Size of a cache line in bytes, identical on every level of the hierarchy
/// (CPU L1/L2, LLC, GPU L3).
pub const CACHE_LINE_SIZE: u64 = 64;

/// Number of low address bits that select the byte within a cache line.
pub const CACHE_LINE_BITS: u32 = 6;

/// Size of a small (4 KiB) page.
pub const SMALL_PAGE_SIZE: u64 = 4 * 1024;

/// Size of a huge (1 GiB) page, as used by the slice-hash reverse engineering
/// in the paper (Section III-C).
pub const HUGE_PAGE_SIZE: u64 = 1024 * 1024 * 1024;

/// A physical address in the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual address inside one process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

macro_rules! addr_common {
    ($ty:ident) => {
        impl $ty {
            /// Creates an address from a raw integer value.
            pub const fn new(value: u64) -> Self {
                Self(value)
            }

            /// Returns the raw integer value of the address.
            pub const fn value(self) -> u64 {
                self.0
            }

            /// Returns the address of the first byte of the containing cache
            /// line.
            pub const fn line_base(self) -> Self {
                Self(self.0 & !(CACHE_LINE_SIZE - 1))
            }

            /// Returns the byte offset within the containing cache line.
            pub const fn line_offset(self) -> u64 {
                self.0 & (CACHE_LINE_SIZE - 1)
            }

            /// Returns the cache-line number (address divided by the line
            /// size).
            pub const fn line_number(self) -> u64 {
                self.0 >> CACHE_LINE_BITS
            }

            /// Returns the address advanced by `bytes`.
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Extracts the given bit (0 = least significant) as 0 or 1.
            pub const fn bit(self, index: u32) -> u64 {
                (self.0 >> index) & 1
            }

            /// Extracts the inclusive-exclusive bit range `[lo, hi)`.
            pub const fn bits(self, lo: u32, hi: u32) -> u64 {
                debug_assert!(lo < hi && hi <= 64);
                let width = hi - lo;
                if width == 64 {
                    self.0 >> lo
                } else {
                    (self.0 >> lo) & ((1u64 << width) - 1)
                }
            }

            /// Returns `true` when the address is aligned to `align` bytes
            /// (`align` must be a power of two).
            pub const fn is_aligned(self, align: u64) -> bool {
                debug_assert!(align.is_power_of_two());
                self.0 & (align - 1) == 0
            }

            /// Rounds the address down to a multiple of `align` bytes
            /// (`align` must be a power of two).
            pub const fn align_down(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self(self.0 & !(align - 1))
            }

            /// Rounds the address up to a multiple of `align` bytes
            /// (`align` must be a power of two).
            pub const fn align_up(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self((self.0 + align - 1) & !(align - 1))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($ty), self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $ty {
            fn from(value: u64) -> Self {
                Self(value)
            }
        }

        impl From<$ty> for u64 {
            fn from(value: $ty) -> u64 {
                value.0
            }
        }
    };
}

addr_common!(PhysAddr);
addr_common!(VirtAddr);

impl VirtAddr {
    /// Returns the 4 KiB virtual page number.
    pub const fn small_page_number(self) -> u64 {
        self.0 / SMALL_PAGE_SIZE
    }

    /// Returns the offset within the 4 KiB page.
    pub const fn small_page_offset(self) -> u64 {
        self.0 % SMALL_PAGE_SIZE
    }
}

impl PhysAddr {
    /// Returns the 4 KiB physical frame number.
    pub const fn frame_number(self) -> u64 {
        self.0 / SMALL_PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_low_bits() {
        let a = PhysAddr::new(0x1234_5678);
        assert_eq!(a.line_base().value(), 0x1234_5640);
        assert_eq!(a.line_offset(), 0x38);
    }

    #[test]
    fn line_number_is_shifted_address() {
        let a = PhysAddr::new(0x40);
        assert_eq!(a.line_number(), 1);
        assert_eq!(PhysAddr::new(0x7f).line_number(), 1);
        assert_eq!(PhysAddr::new(0x80).line_number(), 2);
    }

    #[test]
    fn bit_and_bits_extraction() {
        let a = PhysAddr::new(0b1011_0100);
        assert_eq!(a.bit(2), 1);
        assert_eq!(a.bit(3), 0);
        assert_eq!(a.bits(2, 6), 0b1101);
        assert_eq!(a.bits(0, 64), 0b1011_0100);
    }

    #[test]
    fn alignment_helpers() {
        let a = VirtAddr::new(0x1001);
        assert!(!a.is_aligned(0x1000));
        assert_eq!(a.align_down(0x1000).value(), 0x1000);
        assert_eq!(a.align_up(0x1000).value(), 0x2000);
        assert!(VirtAddr::new(0x2000).is_aligned(0x1000));
        assert_eq!(VirtAddr::new(0x2000).align_up(0x1000).value(), 0x2000);
    }

    #[test]
    fn page_numbers() {
        let v = VirtAddr::new(3 * SMALL_PAGE_SIZE + 17);
        assert_eq!(v.small_page_number(), 3);
        assert_eq!(v.small_page_offset(), 17);
        assert_eq!(PhysAddr::new(5 * SMALL_PAGE_SIZE).frame_number(), 5);
    }

    #[test]
    fn conversions_roundtrip() {
        let raw = 0xdead_beef_u64;
        let p: PhysAddr = raw.into();
        let back: u64 = p.into();
        assert_eq!(back, raw);
        assert_eq!(format!("{:x}", p), "deadbeef");
    }

    #[test]
    fn display_is_never_empty() {
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
        assert!(!format!("{}", VirtAddr::new(0)).is_empty());
    }
}
