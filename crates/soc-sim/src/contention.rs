//! Occupancy-based contention model for time-multiplexed shared resources.
//!
//! The second covert channel of the paper does not rely on shared *state* at
//! all: it only needs a bandwidth-limited structure (the ring interconnect and
//! the LLC ports) whose use by one component measurably slows down the other
//! (Section IV). [`ContentionResource`] captures exactly that: a resource with
//! a per-transaction service time that can serve one transaction at a time, so
//! overlapping requests queue and observe extra latency.

use crate::clock::Time;

/// A single-server shared resource with deterministic service time.
#[derive(Debug, Clone)]
pub struct ContentionResource {
    name: String,
    busy_until: Time,
    transactions: u64,
    contended_transactions: u64,
    total_queue_delay: Time,
    total_busy: Time,
}

impl ContentionResource {
    /// Creates an idle resource with the given diagnostic name.
    pub fn new(name: &str) -> Self {
        ContentionResource {
            name: name.to_string(),
            busy_until: Time::ZERO,
            transactions: 0,
            contended_transactions: 0,
            total_queue_delay: Time::ZERO,
            total_busy: Time::ZERO,
        }
    }

    /// Resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a transaction arriving at `now` that occupies the resource for
    /// `service`. Returns the queuing delay experienced (zero when the
    /// resource was idle), i.e. the extra latency caused purely by contention.
    pub fn acquire(&mut self, now: Time, service: Time) -> Time {
        let start = self.busy_until.max(now);
        let queue_delay = start - now;
        self.busy_until = start + service;
        self.transactions += 1;
        if queue_delay > Time::ZERO {
            self.contended_transactions += 1;
        }
        self.total_queue_delay += queue_delay;
        self.total_busy += service;
        queue_delay
    }

    /// Instant at which the resource becomes idle again.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Total number of transactions served.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Number of transactions that experienced a non-zero queuing delay.
    pub fn contended_transactions(&self) -> u64 {
        self.contended_transactions
    }

    /// Sum of all queuing delays.
    pub fn total_queue_delay(&self) -> Time {
        self.total_queue_delay
    }

    /// Average queuing delay per transaction, in picoseconds.
    pub fn mean_queue_delay_ps(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.total_queue_delay.as_ps() as f64 / self.transactions as f64
        }
    }

    /// Fraction of transactions that queued behind another requester.
    pub fn contention_ratio(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.contended_transactions as f64 / self.transactions as f64
        }
    }

    /// Clears statistics (the busy horizon is preserved).
    pub fn reset_stats(&mut self) {
        self.transactions = 0;
        self.contended_transactions = 0;
        self.total_queue_delay = Time::ZERO;
        self.total_busy = Time::ZERO;
    }
}

/// The bidirectional ring interconnect connecting the CPU cores, the GPU and
/// the LLC slices.
///
/// Transfers are modelled as: a fixed hop latency plus occupancy of the shared
/// ring for `ceil(bytes / width)` ring cycles. When the CPU and the GPU stream
/// requests concurrently their transactions interleave on the ring and each
/// side observes queuing delay — the physical effect behind the contention
/// covert channel.
#[derive(Debug, Clone)]
pub struct RingBus {
    resource: ContentionResource,
    /// Ring data width in bytes per ring cycle (32 B on the modelled SoC).
    width_bytes: u64,
    /// Duration of one ring cycle.
    cycle: Time,
    /// Fixed hop/arbitration latency added to every transfer.
    hop_latency: Time,
}

impl RingBus {
    /// Creates a ring bus.
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` is zero.
    pub fn new(width_bytes: u64, cycle: Time, hop_latency: Time) -> Self {
        assert!(width_bytes > 0, "ring width must be non-zero");
        RingBus {
            resource: ContentionResource::new("ring"),
            width_bytes,
            cycle,
            hop_latency,
        }
    }

    /// Ring configuration of the modelled Kaby Lake SoC: 32 B wide,
    /// one ring cycle per 32 B flit at 4.2 GHz (238 ps), ~2 ns hop latency.
    pub fn kaby_lake() -> Self {
        RingBus::new(32, Time::from_ps(238), Time::from_ps(2_000))
    }

    /// Transfers `bytes` over the ring starting at `now`; returns the total
    /// latency contribution of the ring (hop + queuing + serialization).
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        let flits = bytes.div_ceil(self.width_bytes).max(1);
        let service = Time::from_ps(flits * self.cycle.as_ps());
        let queue_delay = self.resource.acquire(now, service);
        self.hop_latency + queue_delay + service
    }

    /// Access to the underlying contention statistics.
    pub fn resource(&self) -> &ContentionResource {
        &self.resource
    }

    /// Clears contention statistics.
    pub fn reset_stats(&mut self) {
        self.resource.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_has_no_queue_delay() {
        let mut r = ContentionResource::new("port");
        let d = r.acquire(Time::from_ns(10), Time::from_ns(2));
        assert_eq!(d, Time::ZERO);
        assert_eq!(r.busy_until(), Time::from_ns(12));
        assert_eq!(r.transactions(), 1);
        assert_eq!(r.contended_transactions(), 0);
    }

    #[test]
    fn overlapping_requests_queue() {
        let mut r = ContentionResource::new("port");
        r.acquire(Time::from_ns(10), Time::from_ns(5));
        // Second request arrives while the first is still being served.
        let d = r.acquire(Time::from_ns(12), Time::from_ns(5));
        assert_eq!(d, Time::from_ns(3));
        assert_eq!(r.busy_until(), Time::from_ns(20));
        assert_eq!(r.contended_transactions(), 1);
        assert!(r.contention_ratio() > 0.49);
        assert!(r.mean_queue_delay_ps() > 0.0);
    }

    #[test]
    fn requests_after_idle_gap_do_not_queue() {
        let mut r = ContentionResource::new("port");
        r.acquire(Time::from_ns(0), Time::from_ns(1));
        let d = r.acquire(Time::from_ns(100), Time::from_ns(1));
        assert_eq!(d, Time::ZERO);
    }

    #[test]
    fn reset_stats_preserves_busy_horizon() {
        let mut r = ContentionResource::new("port");
        r.acquire(Time::from_ns(0), Time::from_ns(50));
        r.reset_stats();
        assert_eq!(r.transactions(), 0);
        assert_eq!(r.total_queue_delay(), Time::ZERO);
        assert_eq!(r.busy_until(), Time::from_ns(50));
    }

    #[test]
    fn ring_transfer_latency_scales_with_size() {
        let mut ring = RingBus::new(32, Time::from_ps(250), Time::from_ps(1_000));
        let small = ring.transfer(Time::ZERO, 32);
        let large = ring.transfer(Time::from_us(1), 128);
        assert_eq!(small, Time::from_ps(1_250));
        // 4 flits of 250 ps + 1 ns hop.
        assert_eq!(large, Time::from_ps(2_000));
    }

    #[test]
    fn ring_contention_adds_latency_for_second_requester() {
        let mut ring = RingBus::kaby_lake();
        // Uncontended baseline.
        let solo = ring.transfer(Time::from_us(100), 64);
        // Now two back-to-back transfers at the same instant: the second queues.
        let t = Time::from_us(200);
        let first = ring.transfer(t, 64);
        let second = ring.transfer(t, 64);
        assert_eq!(first, solo);
        assert!(second > first, "contended transfer must be slower");
        assert!(ring.resource().contended_transactions() >= 1);
        ring.reset_stats();
        assert_eq!(ring.resource().transactions(), 0);
    }

    #[test]
    fn zero_byte_transfer_still_occupies_one_flit() {
        let mut ring = RingBus::new(32, Time::from_ps(250), Time::ZERO);
        assert_eq!(ring.transfer(Time::ZERO, 0), Time::from_ps(250));
    }
}
