//! Workspace-wide telemetry: named counters, gauges, log-scale histograms
//! and scoped timing spans behind an atomically toggleable registry.
//!
//! Every hot layer of the stack (LLC slices, ring, DRAM in this crate; the
//! transceiver engine and the adaptation policies in `covert`; the sweep
//! phases in `bench`) registers its instruments against a [`Registry`] and
//! bumps them through cheap cloneable handles. The registry is shared via
//! `Arc`, so a handle outlives the call that created it and a snapshot can
//! be taken from another thread.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Every handle holds the registry's
//!    shared `AtomicBool`; a disabled recording is one relaxed load and a
//!    branch. [`Span`]s created from a disabled registry do not even read
//!    the clock.
//! 2. **Purely observational.** Nothing in this module feeds back into the
//!    simulation: attaching, enabling or disabling telemetry never changes
//!    a simulated latency, an RNG draw or a replacement decision — which is
//!    what lets the CI baseline gate hold with telemetry in any state.
//! 3. **Mergeable output.** [`MetricsSnapshot`] values aggregate across
//!    per-sweep-point registries into one document (counters add,
//!    histograms merge bucket-wise), so a parallel sweep can keep one
//!    registry per point — no cross-thread contention on the hot counters —
//!    and still report fleet-wide totals.
//!
//! The per-point-registry discipline of (3) is also what keeps (1) honest
//! under load: instruments are *single-writer*. One thread bumps a given
//! registry's counters and histograms through plain relaxed load + store
//! pairs (no read-modify-write, no locked bus cycles); other threads only
//! read snapshots. Concurrent writers to the same instrument would lose
//! updates — merge snapshots instead.
//!
//! Metric names are dot-separated, `group.instrument` (for example
//! `llc.slice0.hits`, `ring.stall_ps`, `phase.simulate_ns`); the leading
//! segment is the *group* used by coarse reporting such as
//! `repro --list-backends`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of buckets of a log-scale [`Histogram`]: bucket 0 holds exact
/// zeros, bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, up to bucket 64
/// for the top of the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Adds `n` to an atomic cell with a relaxed load + store pair rather than a
/// `fetch_add`. Instruments are single-writer (one simulation thread bumps a
/// given registry's cells; other threads only read snapshots), so the
/// read-modify-write atomicity of `fetch_add` — a locked bus cycle per bump
/// on the per-access hot path — buys nothing here.
#[inline]
fn bump(cell: &AtomicU64, n: u64) {
    let v = cell.load(Ordering::Relaxed);
    cell.store(v.wrapping_add(n), Ordering::Relaxed);
}

/// Inclusive value range covered by a bucket index.
fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    bits: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        // Single-writer bumps (see the module docs): plain load + store pairs
        // instead of atomic read-modify-writes, which would cost a locked bus
        // cycle each on the per-access hot path.
        bump(&self.buckets[bucket_of(value)], 1);
        bump(&self.count, 1);
        bump(&self.sum, value);
        let min = self.min.load(Ordering::Relaxed);
        if value < min {
            self.min.store(value, Ordering::Relaxed);
        }
        let max = self.max.load(Ordering::Relaxed);
        if value > max {
            self.max.store(value, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A monotonically increasing `u64` instrument.
///
/// Cloning is cheap (two `Arc`s); all clones observe the same value and the
/// same enable flag.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds `n` to the counter (no-op while the registry is disabled).
    ///
    /// Counters are single-writer: the thread running the simulation bumps
    /// them, other threads only observe via [`Registry::snapshot`]. Two
    /// threads adding to the same counter concurrently may lose updates —
    /// the workspace keeps one registry per sweep point precisely so the hot
    /// path never needs an atomic read-modify-write.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            bump(&self.cell.value, n);
        }
    }

    /// Adds one to the counter (no-op while the registry is disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` instrument.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Sets the gauge (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.bits.load(Ordering::Relaxed))
    }
}

/// A log-scale (power-of-two bucketed) `u64` distribution.
///
/// Two decades of dynamic range cost nothing extra: bucket index is a
/// `leading_zeros`, so recording is O(1) with no allocation — suitable for
/// per-access paths.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one sample (no-op while the registry is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.record(value);
        }
    }

    /// Snapshot of the distribution recorded so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }

    /// Starts a [`Span`] that records its elapsed nanoseconds into this
    /// histogram when dropped. While the registry is disabled the returned
    /// span is inert and the clock is never read.
    pub fn span(&self) -> Span {
        if !self.enabled.load(Ordering::Relaxed) {
            return Span::noop();
        }
        Span {
            hist: Some(self.clone()),
            start: Some(Instant::now()),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty distribution (the identity of [`HistogramSnapshot::merge`]).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Reassembles a snapshot from serialized parts (the constructor a disk
    /// reader uses). `buckets` shorter than [`HISTOGRAM_BUCKETS`] is padded
    /// with zeros; longer is truncated.
    pub fn from_parts(buckets: Vec<u64>, sum: u64, min: u64, max: u64) -> Self {
        let mut buckets = buckets;
        buckets.resize(HISTOGRAM_BUCKETS, 0);
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket sample counts (length [`HISTOGRAM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `p`-th percentile (`p` in `[0, 100]`) from the bucket
    /// boundaries: the answer is the midpoint of the bucket holding the
    /// requested rank, clamped to the exact observed `[min, max]` range.
    /// Exact when a bucket holds one distinct value; otherwise within a
    /// factor-of-two band, which is what a log-scale profile promises.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let (lo, hi) = bucket_range(index);
                let mid = (lo as f64 + hi as f64) / 2.0;
                return mid.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Folds `other` into `self` bucket-wise: counts and sums add, the
    /// min/max range widens. Merging distributions recorded by independent
    /// registries (one sweep point each) yields exactly the distribution a
    /// single shared histogram would have recorded.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.count += other.count;
    }
}

/// A scoped RAII timer: measures wall-clock nanoseconds from construction
/// to drop and records them into a [`Histogram`].
///
/// Created via [`Registry::span`]; when the registry is disabled at
/// creation time the span is inert and never reads the clock.
#[derive(Debug)]
pub struct Span {
    hist: Option<Histogram>,
    start: Option<Instant>,
}

impl Span {
    /// A span that records nothing (for callers without a registry).
    pub fn noop() -> Self {
        Span {
            hist: None,
            start: None,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(hist), Some(start)) = (&self.hist, self.start) {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            hist.record(nanos);
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct RegistryInner {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A shared, toggleable home for named instruments.
///
/// Cloning shares the underlying store (`Arc`); [`Registry::default`] is an
/// enabled registry. Handle creation takes a lock; recording through a
/// handle is lock-free, so instrument once at attach time and bump handles
/// on the hot path.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an enabled registry.
    pub fn new() -> Self {
        Registry::with_enabled(true)
    }

    /// Creates a disabled registry (instruments register but record
    /// nothing until [`Registry::set_enabled`] flips it on).
    pub fn disabled() -> Self {
        Registry::with_enabled(false)
    }

    /// Creates a registry with the given initial enable state.
    pub fn with_enabled(enabled: bool) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: Arc::new(AtomicBool::new(enabled)),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Atomically enables or disables recording for every handle of this
    /// registry, including handles created earlier.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry lock only means another thread panicked while
        // *registering*; the map itself is still sound to read.
        match self.inner.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.lock();
        let metric = metrics.entry(name.to_string()).or_insert_with(make);
        metric.clone()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument
    /// kind — the two call sites disagree and their data would be garbage.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Arc::new(CounterCell::default()))) {
            Metric::Counter(cell) => Counter {
                enabled: Arc::clone(&self.inner.enabled),
                cell,
            },
            other => panic!(
                "telemetry metric '{name}' is a {}, not a counter",
                other.kind()
            ),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Arc::new(GaugeCell::default()))) {
            Metric::Gauge(cell) => Gauge {
                enabled: Arc::clone(&self.inner.enabled),
                cell,
            },
            other => panic!(
                "telemetry metric '{name}' is a {}, not a gauge",
                other.kind()
            ),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Arc::new(HistogramCell::new()))) {
            Metric::Histogram(cell) => Histogram {
                enabled: Arc::clone(&self.inner.enabled),
                cell,
            },
            other => panic!(
                "telemetry metric '{name}' is a {}, not a histogram",
                other.kind()
            ),
        }
    }

    /// Starts a timing span feeding the histogram named `name` (by
    /// convention a `…_ns` name). Inert — the clock is never read — when
    /// the registry is disabled at call time.
    pub fn span(&self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span::noop();
        }
        Span {
            hist: Some(self.histogram(name)),
            start: Some(Instant::now()),
        }
    }

    /// An immutable copy of every registered instrument's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.lock();
        MetricsSnapshot {
            metrics: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.value.load(Ordering::Relaxed)),
                        Metric::Gauge(g) => {
                            MetricValue::Gauge(f64::from_bits(g.bits.load(Ordering::Relaxed)))
                        }
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One captured metric value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's full distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a [`Registry`]'s contents: the unit that travels
/// with a sweep row and aggregates into the `--metrics-out` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from deserialized `(name, value)` pairs.
    pub fn from_entries(entries: impl IntoIterator<Item = (String, MetricValue)>) -> Self {
        MetricsSnapshot {
            metrics: entries.into_iter().collect(),
        }
    }

    /// Number of captured metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The captured value of any kind under `name`, if one exists.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// The captured value of a counter, if one of that name exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The captured value of a gauge, if one of that name exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The captured distribution of a histogram, if one of that name exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The distinct metric groups present (the leading dot-separated name
    /// segment: `llc.slice0.hits` belongs to group `llc`), in name order.
    pub fn groups(&self) -> Vec<String> {
        let mut groups: Vec<String> = Vec::new();
        for name in self.metrics.keys() {
            let group = name.split('.').next().unwrap_or(name).to_string();
            if groups.last() != Some(&group) {
                groups.push(group);
            }
        }
        groups
    }

    /// Sum of every counter whose name starts with `prefix` (for group
    /// totals such as "all `llc.` activity").
    pub fn counter_total(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, value)| match value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges keep the *other* (later) value. A name only one
    /// side knows is copied over; a name whose kinds disagree keeps the
    /// other side's value (last writer wins, mirroring the gauge rule).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, theirs) in &other.metrics {
            match (self.metrics.get_mut(name), theirs) {
                (Some(MetricValue::Counter(mine)), MetricValue::Counter(v)) => {
                    *mine = mine.saturating_add(*v);
                }
                (Some(MetricValue::Histogram(mine)), MetricValue::Histogram(h)) => {
                    mine.merge(h);
                }
                (slot, _) => {
                    let value = theirs.clone();
                    match slot {
                        Some(existing) => *existing = value,
                        None => {
                            self.metrics.insert(name.clone(), value);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_only_while_enabled() {
        let registry = Registry::new();
        let c = registry.counter("llc.hits");
        c.incr();
        c.add(4);
        registry.set_enabled(false);
        c.add(100);
        registry.set_enabled(true);
        c.incr();
        assert_eq!(c.get(), 6);
        assert_eq!(registry.snapshot().counter("llc.hits"), Some(6));
    }

    #[test]
    fn handles_share_state_across_clones_and_lookups() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        let c = a.clone();
        a.incr();
        b.incr();
        c.incr();
        assert_eq!(registry.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn disabled_registry_records_nothing_and_spans_are_inert() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let h = registry.histogram("lat");
        h.record(5);
        {
            let _span = registry.span("phase.x_ns");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("lat").unwrap().count(), 0);
        // The span histogram was never even registered.
        assert!(snap.histogram("phase.x_ns").is_none());
    }

    #[test]
    fn gauge_keeps_the_last_value() {
        let registry = Registry::new();
        let g = registry.gauge("occupancy");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        assert_eq!(registry.snapshot().gauge("occupancy"), Some(0.75));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_conflicts_panic() {
        let registry = Registry::new();
        let _ = registry.histogram("dual");
        let _ = registry.counter("dual");
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let registry = Registry::new();
        let h = registry.histogram("v");
        for v in [0u64, 1, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1012);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 1000);
        assert!((s.mean() - 202.4).abs() < 1e-9);
        // Bucket 0 holds the zero, bucket 1 holds the 1.
        assert_eq!(s.buckets()[0], 1);
        assert_eq!(s.buckets()[1], 1);
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let registry = Registry::new();
        let h = registry.histogram("v");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.percentile(50.0);
        let p90 = s.percentile(90.0);
        let p100 = s.percentile(100.0);
        assert!(p50 <= p90 && p90 <= p100);
        assert!(p100 <= s.max() as f64);
        assert!(s.percentile(0.0) >= s.min() as f64);
        assert_eq!(HistogramSnapshot::empty().percentile(50.0), 0.0);
    }

    #[test]
    fn span_records_elapsed_nanoseconds() {
        let registry = Registry::new();
        {
            let _span = registry.span("phase.work_ns");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = registry.snapshot();
        let hist = s.histogram("phase.work_ns").unwrap();
        assert_eq!(hist.count(), 1);
        assert!(
            hist.sum() >= 1_000_000,
            "slept ~2ms, recorded {}",
            hist.sum()
        );
    }

    #[test]
    fn merged_histograms_equal_a_shared_one() {
        let shared = Registry::new();
        let a = Registry::new();
        let b = Registry::new();
        let hs = shared.histogram("v");
        let ha = a.histogram("v");
        let hb = b.histogram("v");
        for v in [1u64, 2, 70, 9000] {
            hs.record(v);
            ha.record(v);
        }
        for v in [0u64, 512, 512] {
            hs.record(v);
            hb.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, shared.snapshot());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_copies_new_names() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("n").add(2);
        b.counter("n").add(5);
        b.counter("only_b").add(1);
        b.gauge("g").set(3.0);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("n"), Some(7));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.gauge("g"), Some(3.0));
    }

    #[test]
    fn groups_and_counter_totals() {
        let registry = Registry::new();
        registry.counter("llc.slice0.hits").add(3);
        registry.counter("llc.slice1.hits").add(4);
        registry.counter("ring.crossings").add(9);
        let snap = registry.snapshot();
        assert_eq!(snap.groups(), vec!["llc".to_string(), "ring".to_string()]);
        assert_eq!(snap.counter_total("llc."), 7);
        assert_eq!(snap.counter_total("ring."), 9);
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
    }

    #[test]
    fn from_parts_recomputes_count_and_pads() {
        let mut buckets = vec![0u64; 3];
        buckets[1] = 2; // two samples of value 1
        let s = HistogramSnapshot::from_parts(buckets, 2, 1, 1);
        assert_eq!(s.count(), 2);
        assert_eq!(s.buckets().len(), HISTOGRAM_BUCKETS);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1);
    }
}
