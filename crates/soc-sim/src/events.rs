//! Cross-layer event timeline: *what happened when*, not just *how much*.
//!
//! [`crate::telemetry`] answers aggregate questions (counters, histograms,
//! phase spans); this module records the causal sequence those aggregates
//! flatten away — a noise phase flips, the decoder starts failing, the
//! adaptation policy probes down a rung, the duplex scheduler reallocates a
//! slot. Every layer of the workspace pushes typed, sim-clock-stamped
//! [`Event`]s into a shared [`EventSink`], and `bench` exports the collected
//! [`EventLog`] as Chrome-trace JSON (one track per [`EventLayer`], loadable
//! in `ui.perfetto.dev`).
//!
//! The sink follows the same near-zero-cost-when-off discipline as
//! [`telemetry::Registry`](crate::telemetry::Registry):
//!
//! * layers hold an `Option<EventSink>`, so a detached layer pays exactly
//!   one `Option` check per would-be event;
//! * an attached-but-disabled sink drops events after a single relaxed
//!   atomic load;
//! * recording is **purely observational** — no simulated latency, RNG draw
//!   or replacement decision ever depends on whether a sink is attached.
//!   The CI perf gate holds the sweep to bit-identity with the timeline
//!   off, which is the default.
//!
//! Storage is a bounded ring: the sink keeps the most recent
//! [`EventSink::capacity`] events and counts what it had to drop, so a
//! pathological point cannot grow memory without bound and the export can
//! say honestly that its view is truncated.

use crate::clock::Time;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Events a sink retains by default (per sink — the sweep creates one sink
/// per point). 64 Ki events comfortably covers a quick-sweep point
/// (hundreds of frames, tens of windows) while bounding a runaway layer.
pub const DEFAULT_EVENT_CAPACITY: usize = 64 * 1024;

/// The workspace layer an event originated from. One Chrome-trace track
/// (thread) is rendered per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventLayer {
    /// Memory-hierarchy simulator: topology and LLC partition description.
    Sim,
    /// Noise model: schedule phase transitions.
    Noise,
    /// Link engine ([`Transceiver`]): frames, sync failures,
    /// retransmissions, decode outcomes.
    ///
    /// [`Transceiver`]: ../../covert/channel/struct.Transceiver.html
    Link,
    /// Adaptation loop: per-window observations, rung switches, probe
    /// trials, regime flips.
    Adapt,
    /// Duplex scheduler: slot grants and starvation probes.
    Duplex,
    /// Sweep harness: whole-point spans.
    Sweep,
}

impl EventLayer {
    /// Every layer, in track order.
    pub const ALL: [EventLayer; 6] = [
        EventLayer::Sim,
        EventLayer::Noise,
        EventLayer::Link,
        EventLayer::Adapt,
        EventLayer::Duplex,
        EventLayer::Sweep,
    ];

    /// The track (thread) name the exporter renders for this layer.
    pub fn track_name(self) -> &'static str {
        match self {
            EventLayer::Sim => "sim",
            EventLayer::Noise => "noise",
            EventLayer::Link => "link",
            EventLayer::Adapt => "adapt",
            EventLayer::Duplex => "duplex",
            EventLayer::Sweep => "sweep",
        }
    }

    /// Stable 1-based track id (Chrome-trace `tid`).
    pub fn track_id(self) -> u64 {
        match self {
            EventLayer::Sim => 1,
            EventLayer::Noise => 2,
            EventLayer::Link => 3,
            EventLayer::Adapt => 4,
            EventLayer::Duplex => 5,
            EventLayer::Sweep => 6,
        }
    }
}

/// A typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, indices, picosecond durations).
    U64(u64),
    /// A floating-point reading (rates, estimates).
    F64(f64),
    /// A short label (code names, directions, verdicts).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(value: u64) -> Self {
        FieldValue::U64(value)
    }
}

impl From<usize> for FieldValue {
    fn from(value: usize) -> Self {
        FieldValue::U64(value as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(value: f64) -> Self {
        FieldValue::F64(value)
    }
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> Self {
        FieldValue::Str(value.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> Self {
        FieldValue::Str(value)
    }
}

/// One recorded timeline event.
///
/// `duration: None` renders as an instant (`ph:"i"`); `Some(d)` renders as a
/// complete duration event (`ph:"X"`) starting at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Originating layer (selects the track).
    pub layer: EventLayer,
    /// Event name (static so hot paths never allocate for it).
    pub name: &'static str,
    /// Simulated start time.
    pub at: Time,
    /// Simulated extent, for duration events.
    pub duration: Option<Time>,
    /// Typed arguments, rendered into the Chrome-trace `args` object.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A point-in-time copy of a sink's contents (see [`EventSink::snapshot`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    /// Retained events, in recording order.
    pub events: Vec<Event>,
    /// Events the ring had to discard (oldest first) to stay within
    /// capacity. Zero in any healthy run.
    pub dropped: u64,
}

impl EventLog {
    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events recorded on the given layer, in order.
    pub fn layer(&self, layer: EventLayer) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.layer == layer)
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct SinkInner {
    ring: Mutex<Ring>,
    enabled: AtomicBool,
}

/// A shared, gated, ring-buffered collector of timeline [`Event`]s.
///
/// Cloning is cheap and every clone records into the same ring, so a sink
/// can fan out across the simulator, the link engine, the adaptation
/// policies and the duplex scheduler of one sweep point. See the module
/// docs for the cost discipline.
#[derive(Debug, Clone)]
pub struct EventSink {
    inner: Arc<SinkInner>,
}

impl EventSink {
    /// An enabled sink with [`DEFAULT_EVENT_CAPACITY`].
    pub fn new() -> Self {
        EventSink::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled sink retaining at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventSink {
            inner: Arc::new(SinkInner {
                ring: Mutex::new(Ring {
                    events: VecDeque::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                }),
                enabled: AtomicBool::new(true),
            }),
        }
    }

    /// A sink whose gate starts closed: every record call returns after one
    /// relaxed atomic load.
    pub fn disabled() -> Self {
        let sink = EventSink::new();
        sink.set_enabled(false);
        sink
    }

    /// Opens or closes the recording gate (visible to every clone).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the gate is open.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.inner
            .ring
            .lock()
            .expect("event ring poisoned")
            .capacity
    }

    /// Records an instant event.
    pub fn instant(
        &self,
        layer: EventLayer,
        name: &'static str,
        at: Time,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        self.record(Event {
            layer,
            name,
            at,
            duration: None,
            fields,
        });
    }

    /// Records a duration event covering `[start, start + duration)`.
    pub fn span(
        &self,
        layer: EventLayer,
        name: &'static str,
        start: Time,
        duration: Time,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        self.record(Event {
            layer,
            name,
            at: start,
            duration: Some(duration),
            fields,
        });
    }

    /// Records a fully built event (dropped after one relaxed load when the
    /// gate is closed; evicts the oldest event when the ring is full).
    pub fn record(&self, event: Event) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.inner.ring.lock().expect("event ring poisoned");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .ring
            .lock()
            .expect("event ring poisoned")
            .events
            .len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.ring.lock().expect("event ring poisoned").dropped
    }

    /// Copies the current contents out as an [`EventLog`].
    pub fn snapshot(&self) -> EventLog {
        let ring = self.inner.ring.lock().expect("event ring poisoned");
        EventLog {
            events: ring.events.iter().cloned().collect(),
            dropped: ring.dropped,
        }
    }

    /// Empties the ring and resets the dropped counter (the gate state is
    /// untouched).
    pub fn clear(&self) {
        let mut ring = self.inner.ring.lock().expect("event ring poisoned");
        ring.events.clear();
        ring.dropped = 0;
    }
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_event(sink: &EventSink, n: u64) {
        sink.instant(
            EventLayer::Link,
            "tick",
            Time::from_ns(n),
            vec![("n", n.into())],
        );
    }

    #[test]
    fn records_instants_and_spans_in_order() {
        let sink = EventSink::new();
        sink.instant(
            EventLayer::Noise,
            "phase_transition",
            Time::from_us(3),
            vec![],
        );
        sink.span(
            EventLayer::Link,
            "frame",
            Time::from_us(1),
            Time::from_us(2),
            vec![("index", 0u64.into()), ("outcome", "delivered".into())],
        );
        let log = sink.snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log.events[0].name, "phase_transition");
        assert_eq!(log.events[0].duration, None);
        assert_eq!(log.events[1].duration, Some(Time::from_us(2)));
        assert_eq!(
            log.events[1].fields[1].1,
            FieldValue::Str("delivered".into())
        );
        assert_eq!(log.layer(EventLayer::Link).count(), 1);
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn disabled_gate_drops_everything_and_reopens() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        count_event(&sink, 1);
        assert!(sink.is_empty());
        sink.set_enabled(true);
        count_event(&sink, 2);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clones_share_one_ring() {
        let sink = EventSink::new();
        let clone = sink.clone();
        count_event(&clone, 1);
        clone.set_enabled(false);
        assert!(!sink.is_enabled(), "gate is shared");
        sink.set_enabled(true);
        count_event(&sink, 2);
        assert_eq!(sink.snapshot().len(), 2);
    }

    #[test]
    fn ring_keeps_the_most_recent_events_and_counts_drops() {
        let sink = EventSink::with_capacity(3);
        for n in 0..5 {
            count_event(&sink, n);
        }
        let log = sink.snapshot();
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped, 2);
        assert_eq!(log.events[0].at, Time::from_ns(2), "oldest evicted first");
        assert_eq!(log.events[2].at, Time::from_ns(4));
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
