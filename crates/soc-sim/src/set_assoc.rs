//! Generic set-associative cache used as the building block for the CPU L1/L2
//! caches, each LLC slice and each GPU L3 structure.
//!
//! The cache only tracks tags (line presence); data values never matter for a
//! timing covert channel, so the simulator stores none.

use crate::address::{PhysAddr, CACHE_LINE_BITS, CACHE_LINE_SIZE};
use crate::replacement::{ReplacementPolicy, ReplacementState};
use rand::rngs::SmallRng;

/// How a physical address is mapped to a set index within one cache structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Indexing {
    /// `set = (line_number) mod num_sets` — the classic low-order scheme used
    /// by the CPU L1/L2 and within an LLC slice.
    LowOrder,
    /// `set = bits [lo, hi) of the address` — used by the GPU L3, where the
    /// paper determines that 10 index bits (bits 6..16) select the
    /// set/bank/sub-bank (Section III-D).
    AddressBits {
        /// First (lowest) address bit of the index field.
        lo: u32,
        /// One past the last address bit of the index field.
        hi: u32,
    },
}

/// Geometry and policy of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: usize,
    /// Number of ways per set.
    pub ways: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
    /// Set-index mapping.
    pub indexing: Indexing,
}

impl CacheGeometry {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * CACHE_LINE_SIZE
    }
}

/// Result of inserting a line into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// The line was already present (the fill degenerated to a touch).
    AlreadyPresent,
    /// The line was inserted into an empty way.
    InsertedClean,
    /// The line was inserted and `evicted` was displaced.
    Evicted(PhysAddr),
}

impl FillOutcome {
    /// Returns the evicted line, if any.
    pub fn evicted(self) -> Option<PhysAddr> {
        match self {
            FillOutcome::Evicted(a) => Some(a),
            _ => None,
        }
    }
}

/// Tag value marking an empty way. Stored tags are line-base addresses
/// (64-byte aligned, low bits zero), so the all-ones pattern can never
/// collide with a real line.
const TAG_INVALID: u64 = u64::MAX;

/// A set-associative, physically indexed, tag-only cache.
///
/// Tag state lives in one flat arena (`ways` consecutive `u64` entries per
/// set) instead of per-set heap nodes: a way scan touches a couple of
/// contiguous cache lines and compiles to straight word compares, and no
/// access ever allocates.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Flat tag arena, indexed `set * ways + way`; `TAG_INVALID` marks an
    /// empty way.
    tags: Vec<u64>,
    /// Per-set replacement bookkeeping.
    replacement: Vec<ReplacementState>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has zero sets or zero ways.
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(geometry.sets > 0, "cache needs at least one set");
        assert!(geometry.ways > 0, "cache needs at least one way");
        SetAssocCache {
            tags: vec![TAG_INVALID; geometry.sets * geometry.ways],
            replacement: (0..geometry.sets)
                .map(|_| geometry.policy.new_state(geometry.ways))
                .collect(),
            geometry,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The tag slots of set `index` within the arena.
    #[inline]
    fn set_tags(&self, index: usize) -> &[u64] {
        let base = index * self.geometry.ways;
        &self.tags[base..base + self.geometry.ways]
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Computes the set index for a physical address.
    pub fn set_index(&self, addr: PhysAddr) -> usize {
        // Every modelled geometry has power-of-two sets, so the modulo on
        // the access hot path reduces to a mask; the division survives only
        // as the fallback for exotic test geometries.
        let sets = self.geometry.sets;
        let raw = match self.geometry.indexing {
            Indexing::LowOrder => addr.line_number() as usize,
            Indexing::AddressBits { lo, hi } => {
                debug_assert!(
                    lo >= CACHE_LINE_BITS,
                    "index bits must be above the line offset"
                );
                addr.bits(lo, hi) as usize
            }
        };
        if sets.is_power_of_two() {
            raw & (sets - 1)
        } else {
            raw % sets
        }
    }

    /// Returns `true` when the line containing `addr` is present.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let line = addr.line_base();
        self.set_tags(self.set_index(line)).contains(&line.0)
    }

    /// Looks up `addr`, updating replacement state and hit statistics.
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let line = addr.line_base();
        let idx = self.set_index(line);
        if let Some(way) = self.set_tags(idx).iter().position(|&t| t == line.0) {
            self.replacement[idx].touch(way);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts the line containing `addr`, evicting a victim if the set is
    /// full. The caller provides the RNG used only by the random policy.
    pub fn fill(&mut self, addr: PhysAddr, rng: &mut SmallRng) -> FillOutcome {
        let ways = self.geometry.ways;
        self.fill_within(addr, rng, 0, ways)
    }

    /// Inserts the line containing `addr`, but only ever allocates into ways
    /// `[lo, hi)` of the set — the allocation rule of a way-partitioned cache.
    /// Hits anywhere in the set still count (partitioning restricts placement,
    /// not lookup).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `hi` exceeds the associativity.
    pub fn fill_within(
        &mut self,
        addr: PhysAddr,
        rng: &mut SmallRng,
        lo: usize,
        hi: usize,
    ) -> FillOutcome {
        assert!(lo < hi && hi <= self.geometry.ways, "invalid way partition");
        let line = addr.line_base();
        let idx = self.set_index(line);
        let base = idx * self.geometry.ways;
        let tags = &mut self.tags[base..base + self.geometry.ways];
        if let Some(way) = tags.iter().position(|&t| t == line.0) {
            self.replacement[idx].touch(way);
            return FillOutcome::AlreadyPresent;
        }
        if let Some(way) = (lo..hi).find(|&w| tags[w] == TAG_INVALID) {
            tags[way] = line.0;
            self.replacement[idx].touch(way);
            return FillOutcome::InsertedClean;
        }
        let way = self.replacement[idx].victim_within(lo, hi, rng);
        let tags = &mut self.tags[base..base + self.geometry.ways];
        debug_assert_ne!(tags[way], TAG_INVALID, "full partition has no empty way");
        let evicted = PhysAddr(tags[way]);
        tags[way] = line.0;
        self.replacement[idx].touch(way);
        self.evictions += 1;
        FillOutcome::Evicted(evicted)
    }

    /// Invalidates the line containing `addr`. Returns `true` if it was
    /// present.
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        let line = addr.line_base();
        let idx = self.set_index(line);
        let base = idx * self.geometry.ways;
        let tags = &mut self.tags[base..base + self.geometry.ways];
        if let Some(way) = tags.iter().position(|&t| t == line.0) {
            tags[way] = TAG_INVALID;
            true
        } else {
            false
        }
    }

    /// Invalidates every line in the cache.
    pub fn invalidate_all(&mut self) {
        self.tags.fill(TAG_INVALID);
    }

    /// Returns the lines currently resident in set `index` (valid ways only).
    ///
    /// # Panics
    ///
    /// Panics if `index >= sets`.
    pub fn resident_lines(&self, index: usize) -> Vec<PhysAddr> {
        self.set_tags(index)
            .iter()
            .filter(|&&t| t != TAG_INVALID)
            .map(|&t| PhysAddr(t))
            .collect()
    }

    /// Number of valid lines in set `index` — the allocation-free form of
    /// `resident_lines(index).len()` used on the access hot path.
    ///
    /// # Panics
    ///
    /// Panics if `index >= sets`.
    pub fn resident_count(&self, index: usize) -> usize {
        self.set_tags(index)
            .iter()
            .filter(|&&t| t != TAG_INVALID)
            .count()
    }

    /// The `n`-th valid line of set `index`, in way order (the line
    /// `resident_lines(index)[n]` would return, without the allocation).
    ///
    /// # Panics
    ///
    /// Panics if `index >= sets`.
    pub fn nth_resident(&self, index: usize, n: usize) -> Option<PhysAddr> {
        self.set_tags(index)
            .iter()
            .filter(|&&t| t != TAG_INVALID)
            .map(|&t| PhysAddr(t))
            .nth(n)
    }

    /// Number of valid lines across the whole cache.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }

    /// (hits, misses, evictions) counters since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Resets the hit/miss/eviction counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cache(ways: usize, policy: ReplacementPolicy) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry {
            sets: 4,
            ways,
            policy,
            indexing: Indexing::LowOrder,
        })
    }

    #[test]
    fn capacity_matches_geometry() {
        let g = CacheGeometry {
            sets: 2048,
            ways: 16,
            policy: ReplacementPolicy::Lru,
            indexing: Indexing::LowOrder,
        };
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn hit_after_fill() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        let a = PhysAddr::new(0x1000);
        assert!(!c.access(a));
        c.fill(a, &mut rng);
        assert!(c.access(a));
        assert!(
            c.contains(PhysAddr::new(0x1004)),
            "same line, different byte"
        );
        let (hits, misses, _) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        // Three lines mapping to set 0 of a 4-set low-order cache: line numbers 0, 4, 8.
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(4 * CACHE_LINE_SIZE);
        let d = PhysAddr::new(8 * CACHE_LINE_SIZE);
        assert_eq!(c.set_index(a), c.set_index(b));
        assert_eq!(c.set_index(a), c.set_index(d));
        c.fill(a, &mut rng);
        c.fill(b, &mut rng);
        // Touch `a` so `b` becomes LRU.
        c.access(a);
        let outcome = c.fill(d, &mut rng);
        assert_eq!(outcome.evicted(), Some(b.line_base()));
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn fill_existing_line_is_not_an_eviction() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        let a = PhysAddr::new(0x40);
        assert_eq!(c.fill(a, &mut rng), FillOutcome::InsertedClean);
        assert_eq!(c.fill(a, &mut rng), FillOutcome::AlreadyPresent);
        assert_eq!(c.stats().2, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        let a = PhysAddr::new(0x80);
        c.fill(a, &mut rng);
        assert!(c.invalidate(a));
        assert!(!c.contains(a));
        assert!(!c.invalidate(a), "second invalidate is a no-op");
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = small_cache(4, ReplacementPolicy::TreePlru);
        for i in 0..32 {
            c.fill(PhysAddr::new(i * CACHE_LINE_SIZE), &mut rng);
        }
        assert!(c.occupancy() > 0);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn address_bits_indexing() {
        // Index by bits [6, 8): 4 sets.
        let mut c = SetAssocCache::new(CacheGeometry {
            sets: 4,
            ways: 1,
            policy: ReplacementPolicy::Lru,
            indexing: Indexing::AddressBits { lo: 6, hi: 8 },
        });
        assert_eq!(c.set_index(PhysAddr::new(0b00_000000)), 0);
        assert_eq!(c.set_index(PhysAddr::new(0b01_000000)), 1);
        assert_eq!(c.set_index(PhysAddr::new(0b10_000000)), 2);
        assert_eq!(c.set_index(PhysAddr::new(0b11_000000)), 3);
        // Bits above the field do not change the set.
        assert_eq!(
            c.set_index(PhysAddr::new(0x1000 + 0b01_000000)),
            c.set_index(PhysAddr::new(0b01_000000))
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let a = PhysAddr::new(0b01_000000);
        let b = PhysAddr::new(0x100 + 0b01_000000);
        c.fill(a, &mut rng);
        let out = c.fill(b, &mut rng);
        assert_eq!(out.evicted(), Some(a), "single-way set conflict evicts");
    }

    #[test]
    fn resident_lines_reports_set_contents() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(4 * CACHE_LINE_SIZE);
        c.fill(a, &mut rng);
        c.fill(b, &mut rng);
        let mut resident = c.resident_lines(0);
        resident.sort();
        assert_eq!(resident, vec![a, b]);
    }

    #[test]
    fn plru_full_set_eviction_never_evicts_mru() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut c = SetAssocCache::new(CacheGeometry {
            sets: 1,
            ways: 8,
            policy: ReplacementPolicy::TreePlru,
            indexing: Indexing::LowOrder,
        });
        for i in 0..8u64 {
            c.fill(PhysAddr::new(i * CACHE_LINE_SIZE), &mut rng);
        }
        // Touch line 3, then insert a new line: line 3 must survive.
        let kept = PhysAddr::new(3 * CACHE_LINE_SIZE);
        c.access(kept);
        c.fill(PhysAddr::new(100 * CACHE_LINE_SIZE), &mut rng);
        assert!(c.contains(kept));
    }
}
