//! The shared, sliced last-level cache (LLC).
//!
//! On the modelled part the LLC is 8 MB, 16-way set associative with 64 B
//! lines, split into four 2 MB slices of 2048 sets each. A physical address
//! selects a slice through the complex XOR hash of [`crate::slice_hash`] and a
//! set within the slice through low-order line-number bits. The LLC is
//! *inclusive* of the CPU-side caches (evicting a line here back-invalidates
//! L1/L2) but *not* inclusive of the GPU L3 — the asymmetry at the heart of
//! the paper's Section III-D.

use crate::address::{PhysAddr, CACHE_LINE_SIZE};
use crate::clock::Time;
use crate::contention::ContentionResource;
use crate::replacement::ReplacementPolicy;
use crate::set_assoc::{CacheGeometry, FillOutcome, Indexing, SetAssocCache};
use crate::slice_hash::SliceHash;
use rand::rngs::SmallRng;
use std::fmt;

/// Identifies one set of the LLC: a slice plus a set index within the slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LlcSetId {
    /// Slice index (0-based).
    pub slice: usize,
    /// Set index within the slice.
    pub set: usize,
}

impl fmt::Display for LlcSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice {} set {}", self.slice, self.set)
    }
}

/// Static LLC configuration.
#[derive(Debug, Clone)]
pub struct LlcConfig {
    /// Number of sets per slice (2048 on the modelled part).
    pub sets_per_slice: usize,
    /// Associativity (16 on the modelled part).
    pub ways: usize,
    /// Replacement policy (true LRU).
    pub policy: ReplacementPolicy,
    /// Slice-selection hash.
    pub hash: SliceHash,
    /// Per-slice port service time (one request at a time per slice port).
    pub port_service: Time,
}

impl LlcConfig {
    /// LLC of the Kaby Lake i7-7700k: 8 MB, 4 slices x 2048 sets x 16 ways.
    pub fn kaby_lake_i7_7700k() -> Self {
        LlcConfig {
            sets_per_slice: 2048,
            ways: 16,
            policy: ReplacementPolicy::Lru,
            hash: SliceHash::kaby_lake_i7_7700k(),
            port_service: Time::from_ps(1_000),
        }
    }

    /// A scaled-down LLC (fewer sets/slices) for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        LlcConfig {
            sets_per_slice: 64,
            ways: 4,
            policy: ReplacementPolicy::Lru,
            hash: SliceHash::low_order(6, 1),
            port_service: Time::from_ps(1_000),
        }
    }

    /// Number of slices implied by the hash.
    pub fn slices(&self) -> usize {
        self.hash.slice_count()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.slices() as u64 * self.sets_per_slice as u64 * self.ways as u64 * CACHE_LINE_SIZE
    }
}

/// The sliced last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    config: LlcConfig,
    slices: Vec<SetAssocCache>,
    ports: Vec<ContentionResource>,
}

impl Llc {
    /// Creates an empty LLC.
    pub fn new(config: LlcConfig) -> Self {
        let geometry = CacheGeometry {
            sets: config.sets_per_slice,
            ways: config.ways,
            policy: config.policy,
            indexing: Indexing::LowOrder,
        };
        let slices = (0..config.slices())
            .map(|_| SetAssocCache::new(geometry))
            .collect();
        let ports = (0..config.slices())
            .map(|i| ContentionResource::new(&format!("llc-port-{i}")))
            .collect();
        Llc {
            config,
            slices,
            ports,
        }
    }

    /// Returns the LLC configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Maps a physical address to its LLC set.
    pub fn set_of(&self, addr: PhysAddr) -> LlcSetId {
        let slice = self.config.hash.slice_of(addr);
        let set = self.slices[slice].set_index(addr);
        LlcSetId { slice, set }
    }

    /// Returns `true` when the line containing `addr` is resident.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let slice = self.config.hash.slice_of(addr);
        self.slices[slice].contains(addr)
    }

    /// Looks up `addr` (updating LRU state); returns `true` on hit.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let slice = self.config.hash.slice_of(addr);
        self.slices[slice].access(addr)
    }

    /// Looks up `addr` in an already-resolved slice — the hot-path variant
    /// for callers that computed [`Llc::set_of`] once and reuse it across
    /// the lookup, port acquisition, fill and telemetry of one access.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn access_in_slice(&mut self, slice: usize, addr: PhysAddr) -> bool {
        self.slices[slice].access(addr)
    }

    /// [`Llc::fill`] for an already-resolved slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn fill_in_slice(
        &mut self,
        slice: usize,
        addr: PhysAddr,
        rng: &mut SmallRng,
    ) -> FillOutcome {
        self.slices[slice].fill(addr, rng)
    }

    /// [`Llc::fill_within`] for an already-resolved slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range or the way range is invalid.
    pub fn fill_within_in_slice(
        &mut self,
        slice: usize,
        addr: PhysAddr,
        rng: &mut SmallRng,
        lo: usize,
        hi: usize,
    ) -> FillOutcome {
        self.slices[slice].fill_within(addr, rng, lo, hi)
    }

    /// Fills the line containing `addr`, returning any evicted line.
    /// The caller is responsible for back-invalidating inclusive upper levels.
    pub fn fill(&mut self, addr: PhysAddr, rng: &mut SmallRng) -> FillOutcome {
        let slice = self.config.hash.slice_of(addr);
        self.slices[slice].fill(addr, rng)
    }

    /// Fills the line containing `addr`, allocating only into ways
    /// `[lo, hi)` — the allocation rule under way partitioning (the paper's
    /// Section VI mitigation). Lookups are unaffected by partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the way range is empty or exceeds the associativity.
    pub fn fill_within(
        &mut self,
        addr: PhysAddr,
        rng: &mut SmallRng,
        lo: usize,
        hi: usize,
    ) -> FillOutcome {
        let slice = self.config.hash.slice_of(addr);
        self.slices[slice].fill_within(addr, rng, lo, hi)
    }

    /// Invalidates the line containing `addr` (e.g. for `clflush`).
    /// Returns `true` if it was present.
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        let slice = self.config.hash.slice_of(addr);
        self.slices[slice].invalidate(addr)
    }

    /// Evicts one random resident line from the set containing `addr`
    /// (ambient-noise injection). Returns the evicted line, if the set was
    /// non-empty.
    pub fn evict_random_from_set(
        &mut self,
        addr: PhysAddr,
        rng: &mut SmallRng,
    ) -> Option<PhysAddr> {
        let id = self.set_of(addr);
        self.evict_random_at(id, rng)
    }

    /// [`Llc::evict_random_from_set`] for an already-resolved set, without
    /// materializing the resident-line list (the victim index is drawn
    /// first, then resolved by walking the set's valid ways).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn evict_random_at(&mut self, id: LlcSetId, rng: &mut SmallRng) -> Option<PhysAddr> {
        use rand::Rng;
        let resident = self.slices[id.slice].resident_count(id.set);
        if resident == 0 {
            return None;
        }
        let n = rng.gen_range(0..resident);
        let victim = self.slices[id.slice]
            .nth_resident(id.set, n)
            .expect("victim index drawn within the resident count");
        self.slices[id.slice].invalidate(victim);
        Some(victim)
    }

    /// Lines currently resident in an LLC set.
    pub fn resident_lines(&self, id: LlcSetId) -> Vec<PhysAddr> {
        self.slices[id.slice].resident_lines(id.set)
    }

    /// Number of lines resident in an LLC set — the allocation-free form of
    /// `resident_lines(id).len()`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_occupancy(&self, id: LlcSetId) -> usize {
        self.slices[id.slice].resident_count(id.set)
    }

    /// Acquires the slice port for `addr` at `now`; returns the queuing delay
    /// caused by port contention.
    pub fn acquire_port(&mut self, addr: PhysAddr, now: Time) -> Time {
        let slice = self.config.hash.slice_of(addr);
        self.acquire_port_on(slice, now)
    }

    /// [`Llc::acquire_port`] for an already-resolved slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn acquire_port_on(&mut self, slice: usize, now: Time) -> Time {
        let service = self.config.port_service;
        self.ports[slice].acquire(now, service)
    }

    /// Per-slice port contention statistics.
    pub fn port(&self, slice: usize) -> &ContentionResource {
        &self.ports[slice]
    }

    /// Aggregate (hits, misses, evictions) across all slices.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.slices
            .iter()
            .map(|s| s.stats())
            .fold((0, 0, 0), |acc, s| (acc.0 + s.0, acc.1 + s.1, acc.2 + s.2))
    }

    /// Clears hit/miss statistics and port statistics.
    pub fn reset_stats(&mut self) {
        for s in &mut self.slices {
            s.reset_stats();
        }
        for p in &mut self.ports {
            p.reset_stats();
        }
    }

    /// Invalidates every line in every slice.
    pub fn invalidate_all(&mut self) {
        for s in &mut self.slices {
            s.invalidate_all();
        }
    }

    /// Total number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.slices.iter().map(|s| s.occupancy()).sum()
    }

    /// Enumerates `count` line-aligned physical addresses that all map to the
    /// given LLC set, scanning upward from `start`. This is the simulator-side
    /// ground truth the reverse-engineering code is validated against.
    ///
    /// Within a slice the set index is `line_number mod sets_per_slice`, so
    /// the scan steps directly between lines with the right set index and
    /// only evaluates the slice hash on those — the same addresses a
    /// line-by-line scan finds, in the same order.
    ///
    /// # Panics
    ///
    /// Panics if `id.set` is outside the slice (no address maps to it, so
    /// the enumeration could never finish).
    pub fn enumerate_set_addresses(
        &self,
        id: LlcSetId,
        start: PhysAddr,
        count: usize,
    ) -> Vec<PhysAddr> {
        let sets = self.config.sets_per_slice as u64;
        assert!((id.set as u64) < sets, "set index outside the slice");
        let mut out = Vec::with_capacity(count);
        let start_line = start.line_base().value() / CACHE_LINE_SIZE;
        let skew = (id.set as u64 + sets - start_line % sets) % sets;
        let mut addr = PhysAddr::new((start_line + skew) * CACHE_LINE_SIZE);
        while out.len() < count {
            if self.set_of(addr) == id {
                out.push(addr);
            }
            addr = addr.add(sets * CACHE_LINE_SIZE);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn kaby_lake_capacity_is_8mb() {
        let cfg = LlcConfig::kaby_lake_i7_7700k();
        assert_eq!(cfg.slices(), 4);
        assert_eq!(cfg.capacity_bytes(), 8 * 1024 * 1024);
    }

    #[test]
    fn set_of_uses_hash_and_low_order_bits() {
        let llc = Llc::new(LlcConfig::kaby_lake_i7_7700k());
        let a = PhysAddr::new(0x12345 * 64);
        let id = llc.set_of(a);
        assert!(id.slice < 4);
        assert!(id.set < 2048);
        // Same line -> same set.
        assert_eq!(llc.set_of(a.add(63)), id);
        assert_eq!(
            format!("{id}"),
            format!("slice {} set {}", id.slice, id.set)
        );
    }

    #[test]
    fn fill_then_access_hits() {
        let mut llc = Llc::new(LlcConfig::tiny_for_tests());
        let mut rng = rng();
        let a = PhysAddr::new(0x4000);
        assert!(!llc.access(a));
        llc.fill(a, &mut rng);
        assert!(llc.access(a));
        assert!(llc.contains(a));
        let (h, m, _) = llc.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn filling_ways_plus_one_conflicting_lines_evicts() {
        let cfg = LlcConfig::tiny_for_tests();
        let ways = cfg.ways;
        let mut llc = Llc::new(cfg);
        let mut rng = rng();
        let base = PhysAddr::new(0);
        let target_set = llc.set_of(base);
        let addrs = llc.enumerate_set_addresses(target_set, base, ways + 1);
        for &a in &addrs {
            llc.fill(a, &mut rng);
        }
        // The first-filled line must have been evicted by LRU.
        assert!(!llc.contains(addrs[0]));
        assert!(llc.contains(addrs[ways]));
        assert_eq!(llc.resident_lines(target_set).len(), ways);
    }

    #[test]
    fn invalidate_removes_and_reports() {
        let mut llc = Llc::new(LlcConfig::tiny_for_tests());
        let mut rng = rng();
        let a = PhysAddr::new(0x8000);
        llc.fill(a, &mut rng);
        assert!(llc.invalidate(a));
        assert!(!llc.contains(a));
        assert!(!llc.invalidate(a));
    }

    #[test]
    fn evict_random_from_set_picks_a_resident_line() {
        let mut llc = Llc::new(LlcConfig::tiny_for_tests());
        let mut rng = rng();
        let a = PhysAddr::new(0x0);
        assert!(llc.evict_random_from_set(a, &mut rng).is_none());
        llc.fill(a, &mut rng);
        let evicted = llc.evict_random_from_set(a, &mut rng);
        assert_eq!(evicted, Some(a.line_base()));
        assert_eq!(llc.occupancy(), 0);
    }

    #[test]
    fn port_contention_is_per_slice() {
        let mut llc = Llc::new(LlcConfig::kaby_lake_i7_7700k());
        // Find two addresses in different slices.
        let a = PhysAddr::new(0);
        let mut b = PhysAddr::new(64);
        while llc.set_of(b).slice == llc.set_of(a).slice {
            b = b.add(64);
        }
        let t = Time::from_us(1);
        assert_eq!(llc.acquire_port(a, t), Time::ZERO);
        // Same slice again at the same time: queues.
        assert!(llc.acquire_port(a, t) > Time::ZERO);
        // Different slice: independent port, no queuing.
        assert_eq!(llc.acquire_port(b, t), Time::ZERO);
        assert!(llc.port(llc.set_of(a).slice).transactions() >= 2);
    }

    #[test]
    fn enumerate_set_addresses_all_map_to_requested_set() {
        let llc = Llc::new(LlcConfig::kaby_lake_i7_7700k());
        let target = llc.set_of(PhysAddr::new(0x123456 * 64));
        let addrs = llc.enumerate_set_addresses(target, PhysAddr::new(0), 32);
        assert_eq!(addrs.len(), 32);
        for a in addrs {
            assert_eq!(llc.set_of(a), target);
        }
    }

    #[test]
    fn invalidate_all_and_reset_stats() {
        let mut llc = Llc::new(LlcConfig::tiny_for_tests());
        let mut rng = rng();
        for i in 0..100u64 {
            llc.fill(PhysAddr::new(i * 64), &mut rng);
        }
        assert!(llc.occupancy() > 0);
        llc.invalidate_all();
        llc.reset_stats();
        assert_eq!(llc.occupancy(), 0);
        assert_eq!(llc.stats(), (0, 0, 0));
    }
}
