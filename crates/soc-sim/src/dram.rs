//! System memory (DRAM + memory controller) latency model.
//!
//! LLC misses from either component are serviced by the same memory
//! controller, so DRAM is modelled as a base access latency plus a shared
//! channel with a per-transaction service time — another (weaker) contention
//! domain shared between CPU and GPU.
//!
//! The timing parameters live behind the [`DramTiming`] trait so topologies
//! can swap memory generations without touching the queuing model: [`Ddr4`]
//! is the paper's DDR4-2400-class platform, [`Ddr5`] a DDR5-4800-class part
//! with a slightly longer idle latency but roughly twice the channel
//! bandwidth (half the per-line occupancy). [`DramTimingKind`] is the
//! copyable configuration handle the [`crate::topology::TopologySpec`] layer
//! stores.

use crate::clock::Time;
use crate::contention::ContentionResource;

/// Timing parameters of one DRAM generation, as the memory-controller model
/// consumes them.
///
/// Implementations only describe *numbers*; the queuing behaviour (one
/// shared channel, first-come-first-served occupancy) is fixed in [`Dram`].
pub trait DramTiming {
    /// Uncontended, unqueued access latency (row activation + CAS + transfer
    /// as seen by a single line fill).
    fn base_latency(&self) -> Time;

    /// Channel occupancy per 64 B line — the inverse of the peak bandwidth
    /// and the service time of the shared-channel queue.
    fn channel_service(&self) -> Time;

    /// Human-readable generation label (`"DDR4-2400"`, …).
    fn label(&self) -> &'static str;
}

/// Dual-channel DDR4-2400-class timings: ~60 ns base latency, ~3.3 ns of
/// channel occupancy per 64 B line. The paper's experimental platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ddr4;

impl DramTiming for Ddr4 {
    fn base_latency(&self) -> Time {
        Time::from_ns(60)
    }

    fn channel_service(&self) -> Time {
        Time::from_ps(3_300)
    }

    fn label(&self) -> &'static str {
        "DDR4-2400"
    }
}

/// Dual-channel DDR5-4800-class timings: the first-word latency is slightly
/// *worse* than DDR4 (~68 ns — higher CAS latencies at early speed bins),
/// but the doubled transfer rate halves the per-line channel occupancy
/// (~1.7 ns), so queued/bursty traffic comes out ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ddr5;

impl DramTiming for Ddr5 {
    fn base_latency(&self) -> Time {
        Time::from_ns(68)
    }

    fn channel_service(&self) -> Time {
        Time::from_ps(1_700)
    }

    fn label(&self) -> &'static str {
        "DDR5-4800"
    }
}

/// Copyable selector of a DRAM generation, stored in the SoC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DramTimingKind {
    /// The paper platform's DDR4-2400-class memory.
    #[default]
    Ddr4,
    /// A DDR5-4800-class part (longer idle latency, double the bandwidth).
    Ddr5,
}

impl DramTimingKind {
    /// Every supported generation, in chronological order.
    pub const ALL: [DramTimingKind; 2] = [DramTimingKind::Ddr4, DramTimingKind::Ddr5];
}

impl DramTiming for DramTimingKind {
    fn base_latency(&self) -> Time {
        match self {
            DramTimingKind::Ddr4 => Ddr4.base_latency(),
            DramTimingKind::Ddr5 => Ddr5.base_latency(),
        }
    }

    fn channel_service(&self) -> Time {
        match self {
            DramTimingKind::Ddr4 => Ddr4.channel_service(),
            DramTimingKind::Ddr5 => Ddr5.channel_service(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            DramTimingKind::Ddr4 => Ddr4.label(),
            DramTimingKind::Ddr5 => Ddr5.label(),
        }
    }
}

/// DRAM / memory-controller model.
#[derive(Debug, Clone)]
pub struct Dram {
    base_latency: Time,
    channel_service: Time,
    channel: ContentionResource,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM model with the given base access latency and per-access
    /// channel occupancy.
    pub fn new(base_latency: Time, channel_service: Time) -> Self {
        Dram {
            base_latency,
            channel_service,
            channel: ContentionResource::new("dram-channel"),
            accesses: 0,
        }
    }

    /// Creates a DRAM model from any [`DramTiming`] implementation.
    pub fn from_timing(timing: &impl DramTiming) -> Self {
        Dram::new(timing.base_latency(), timing.channel_service())
    }

    /// DDR4-2400-class defaults (the paper's platform).
    pub fn ddr4_default() -> Self {
        Dram::from_timing(&Ddr4)
    }

    /// Performs one line-sized access starting at `now`; returns its latency.
    pub fn access(&mut self, now: Time) -> Time {
        self.accesses += 1;
        let queue = self.channel.acquire(now, self.channel_service);
        self.base_latency + queue + self.channel_service
    }

    /// Base (uncontended, unqueued) access latency.
    pub fn base_latency(&self) -> Time {
        self.base_latency
    }

    /// Total number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Contention statistics for the memory channel.
    pub fn channel(&self) -> &ContentionResource {
        &self.channel
    }

    /// Clears access and contention statistics.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.channel.reset_stats();
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::ddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_is_base_plus_service() {
        let mut d = Dram::new(Time::from_ns(60), Time::from_ns(3));
        let lat = d.access(Time::from_us(5));
        assert_eq!(lat, Time::from_ns(63));
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn concurrent_accesses_queue_on_the_channel() {
        let mut d = Dram::new(Time::from_ns(60), Time::from_ns(3));
        let t = Time::from_us(1);
        let first = d.access(t);
        let second = d.access(t);
        assert!(second > first);
        assert_eq!(second - first, Time::from_ns(3));
    }

    #[test]
    fn default_is_ddr4_class() {
        let d = Dram::default();
        assert!(d.base_latency() >= Time::from_ns(40));
        assert!(d.base_latency() <= Time::from_ns(100));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut d = Dram::default();
        d.access(Time::ZERO);
        d.reset_stats();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.channel().transactions(), 0);
    }

    #[test]
    fn ddr5_trades_idle_latency_for_bandwidth() {
        // A single cold access is *slower* on DDR5 (higher first-word
        // latency), but its channel occupancy is well under DDR4's, so the
        // queue drains roughly twice as fast.
        assert!(Ddr5.base_latency() > Ddr4.base_latency());
        assert!(Ddr5.channel_service() < Ddr4.channel_service());
        let mut ddr4 = Dram::from_timing(&Ddr4);
        let mut ddr5 = Dram::from_timing(&Ddr5);
        let single4 = ddr4.access(Time::from_us(1));
        let single5 = ddr5.access(Time::from_us(1));
        assert!(single5 > single4, "idle: DDR5 {single5} vs DDR4 {single4}");
        // A burst of simultaneous accesses: the last one queues behind the
        // whole burst, where DDR5's halved occupancy wins.
        let t = Time::from_us(2);
        let burst = 32;
        let last4 = (0..burst).map(|_| ddr4.access(t)).last().unwrap();
        let last5 = (0..burst).map(|_| ddr5.access(t)).last().unwrap();
        assert!(last5 < last4, "burst: DDR5 {last5} vs DDR4 {last4}");
    }

    #[test]
    fn timing_kind_delegates_to_the_generation() {
        assert_eq!(DramTimingKind::Ddr4.base_latency(), Ddr4.base_latency());
        assert_eq!(
            DramTimingKind::Ddr5.channel_service(),
            Ddr5.channel_service()
        );
        assert_eq!(DramTimingKind::Ddr4.label(), "DDR4-2400");
        assert_eq!(DramTimingKind::Ddr5.label(), "DDR5-4800");
        assert_eq!(DramTimingKind::default(), DramTimingKind::Ddr4);
        assert_eq!(DramTimingKind::ALL.len(), 2);
    }
}
