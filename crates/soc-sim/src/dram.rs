//! System memory (DRAM + memory controller) latency model.
//!
//! LLC misses from either component are serviced by the same memory
//! controller, so DRAM is modelled as a base access latency plus a shared
//! channel with a per-transaction service time — another (weaker) contention
//! domain shared between CPU and GPU.

use crate::clock::Time;
use crate::contention::ContentionResource;

/// DRAM / memory-controller model.
#[derive(Debug, Clone)]
pub struct Dram {
    base_latency: Time,
    channel_service: Time,
    channel: ContentionResource,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM model with the given base access latency and per-access
    /// channel occupancy.
    pub fn new(base_latency: Time, channel_service: Time) -> Self {
        Dram {
            base_latency,
            channel_service,
            channel: ContentionResource::new("dram-channel"),
            accesses: 0,
        }
    }

    /// Dual-channel DDR4-2400-class defaults: ~60 ns base latency, ~3.3 ns of
    /// channel occupancy per 64 B line.
    pub fn ddr4_default() -> Self {
        Dram::new(Time::from_ns(60), Time::from_ps(3_300))
    }

    /// Performs one line-sized access starting at `now`; returns its latency.
    pub fn access(&mut self, now: Time) -> Time {
        self.accesses += 1;
        let queue = self.channel.acquire(now, self.channel_service);
        self.base_latency + queue + self.channel_service
    }

    /// Base (uncontended, unqueued) access latency.
    pub fn base_latency(&self) -> Time {
        self.base_latency
    }

    /// Total number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Contention statistics for the memory channel.
    pub fn channel(&self) -> &ContentionResource {
        &self.channel
    }

    /// Clears access and contention statistics.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.channel.reset_stats();
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::ddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_is_base_plus_service() {
        let mut d = Dram::new(Time::from_ns(60), Time::from_ns(3));
        let lat = d.access(Time::from_us(5));
        assert_eq!(lat, Time::from_ns(63));
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn concurrent_accesses_queue_on_the_channel() {
        let mut d = Dram::new(Time::from_ns(60), Time::from_ns(3));
        let t = Time::from_us(1);
        let first = d.access(t);
        let second = d.access(t);
        assert!(second > first);
        assert_eq!(second - first, Time::from_ns(3));
    }

    #[test]
    fn default_is_ddr4_class() {
        let d = Dram::default();
        assert!(d.base_latency() >= Time::from_ns(40));
        assert!(d.base_latency() <= Time::from_ns(100));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut d = Dram::default();
        d.access(Time::ZERO);
        d.reset_stats();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.channel().transactions(), 0);
    }
}
