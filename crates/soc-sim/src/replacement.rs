//! Cache replacement policies.
//!
//! The CPU caches and the LLC of the modelled part use (true) LRU while the
//! GPU L3 uses a tree-based pseudo-LRU (pLRU), which is why the paper needs
//! several passes over an L3 eviction set before the target line is reliably
//! evicted (Section III-D). Both policies are implemented here behind the
//! [`ReplacementState`] enum so a cache set can be configured with either.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    Lru,
    /// Tree-based pseudo-LRU with `ways - 1` internal nodes.
    TreePlru,
    /// Uniformly random victim selection.
    Random,
}

impl ReplacementPolicy {
    /// Creates the per-set replacement state for a set with `ways` ways.
    pub fn new_state(self, ways: usize) -> ReplacementState {
        match self {
            ReplacementPolicy::Lru => ReplacementState::Lru(LruState::new(ways)),
            ReplacementPolicy::TreePlru => ReplacementState::TreePlru(TreePlruState::new(ways)),
            ReplacementPolicy::Random => ReplacementState::Random { ways },
        }
    }
}

/// Per-set replacement bookkeeping.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// LRU stack.
    Lru(LruState),
    /// pLRU tree bits.
    TreePlru(TreePlruState),
    /// Stateless random replacement.
    Random {
        /// Number of ways in the set.
        ways: usize,
    },
}

impl ReplacementState {
    /// Records an access (hit or fill) to `way`.
    pub fn touch(&mut self, way: usize) {
        match self {
            ReplacementState::Lru(s) => s.touch(way),
            ReplacementState::TreePlru(s) => s.touch(way),
            ReplacementState::Random { .. } => {}
        }
    }

    /// Chooses a victim way for the next fill.
    pub fn victim(&self, rng: &mut SmallRng) -> usize {
        match self {
            ReplacementState::Lru(s) => s.victim(),
            ReplacementState::TreePlru(s) => s.victim(),
            ReplacementState::Random { ways } => rng.gen_range(0..*ways),
        }
    }

    /// Chooses a victim way restricted to `[lo, hi)` — used by way-partitioned
    /// caches (e.g. an Intel CAT-style LLC partition, the mitigation of
    /// Section VI of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn victim_within(&self, lo: usize, hi: usize, rng: &mut SmallRng) -> usize {
        assert!(lo < hi, "partition way range must be non-empty");
        match self {
            ReplacementState::Lru(s) => {
                assert!(hi <= s.mru_order().len(), "partition exceeds associativity");
                *s.mru_order()
                    .iter()
                    .rev()
                    .find(|w| (lo..hi).contains(*w))
                    .expect("non-empty range within the set")
            }
            ReplacementState::TreePlru(_) | ReplacementState::Random { .. } => {
                rng.gen_range(lo..hi)
            }
        }
    }
}

/// True-LRU state: `order[0]` is the most recently used way.
#[derive(Debug, Clone)]
pub struct LruState {
    order: Vec<usize>,
}

impl LruState {
    /// Creates LRU state for `ways` ways, initially ordered 0..ways.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a cache set needs at least one way");
        LruState {
            order: (0..ways).collect(),
        }
    }

    /// Moves `way` to the most-recently-used position.
    pub fn touch(&mut self, way: usize) {
        if let Some(pos) = self.order.iter().position(|&w| w == way) {
            let w = self.order.remove(pos);
            self.order.insert(0, w);
        }
    }

    /// Returns the least-recently-used way.
    pub fn victim(&self) -> usize {
        *self.order.last().expect("non-empty LRU order")
    }

    /// Returns the ways ordered from most to least recently used.
    pub fn mru_order(&self) -> &[usize] {
        &self.order
    }
}

/// Tree pseudo-LRU state.
///
/// The tree has `ways - 1` internal nodes (as documented for the Gen9 GPU L3
/// in the Intel PRM and cited by the paper); each node bit points towards the
/// half of the subtree that was *less* recently used.
#[derive(Debug, Clone)]
pub struct TreePlruState {
    /// Node bits, heap layout: node `i` has children `2i + 1` and `2i + 2`.
    bits: Vec<bool>,
    ways: usize,
}

impl TreePlruState {
    /// Creates pLRU state for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two (tree pLRU requires it).
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two(),
            "tree pLRU requires power-of-two ways"
        );
        TreePlruState {
            bits: vec![false; ways.saturating_sub(1)],
            ways,
        }
    }

    /// Number of internal tree nodes (`ways - 1`).
    pub fn node_count(&self) -> usize {
        self.bits.len()
    }

    /// Records an access to `way`: every node on the path is flipped to point
    /// away from the accessed way.
    pub fn touch(&mut self, way: usize) {
        debug_assert!(way < self.ways);
        if self.ways == 1 {
            return;
        }
        let levels = self.ways.trailing_zeros();
        let mut node = 0usize;
        for level in (0..levels).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point to the opposite half of the one we just used.
            self.bits[node] = !go_right;
            node = 2 * node + 1 + usize::from(go_right);
        }
    }

    /// Follows the tree bits to the pseudo-least-recently-used way.
    pub fn victim(&self) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let levels = self.ways.trailing_zeros();
        let mut node = 0usize;
        let mut way = 0usize;
        for _ in 0..levels {
            let go_right = self.bits[node];
            way = (way << 1) | usize::from(go_right);
            node = 2 * node + 1 + usize::from(go_right);
        }
        way
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = LruState::new(4);
        s.touch(0);
        s.touch(1);
        s.touch(2);
        s.touch(3);
        assert_eq!(s.victim(), 0);
        s.touch(0);
        assert_eq!(s.victim(), 1);
        assert_eq!(s.mru_order()[0], 0);
    }

    #[test]
    fn lru_initial_victim_is_last_way() {
        let s = LruState::new(8);
        assert_eq!(s.victim(), 7);
    }

    #[test]
    fn plru_has_ways_minus_one_nodes() {
        let s = TreePlruState::new(16);
        assert_eq!(s.node_count(), 15);
    }

    #[test]
    fn plru_never_evicts_just_touched_way() {
        let mut s = TreePlruState::new(8);
        for way in 0..8 {
            s.touch(way);
            assert_ne!(s.victim(), way, "victim must differ from the MRU way");
        }
    }

    #[test]
    fn plru_round_robin_fill_touches_all_ways() {
        // Filling an empty set by repeatedly inserting at the victim position
        // must use every way exactly once before reusing any.
        let mut s = TreePlruState::new(8);
        let mut used = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = s.victim();
            assert!(used.insert(v), "way {v} reused before the set was full");
            s.touch(v);
        }
        assert_eq!(used.len(), 8);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = TreePlruState::new(12);
    }

    #[test]
    fn replacement_state_dispatch() {
        let mut rng = SmallRng::seed_from_u64(7);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let mut state = policy.new_state(4);
            state.touch(2);
            let v = state.victim(&mut rng);
            assert!(v < 4);
            if matches!(policy, ReplacementPolicy::Lru | ReplacementPolicy::TreePlru) {
                assert_ne!(v, 2);
            }
        }
    }

    #[test]
    fn random_policy_covers_all_ways_eventually() {
        let mut rng = SmallRng::seed_from_u64(11);
        let state = ReplacementPolicy::Random.new_state(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(state.victim(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
