//! Cache replacement policies.
//!
//! The CPU caches and the LLC of the modelled part use (true) LRU while the
//! GPU L3 uses a tree-based pseudo-LRU (pLRU), which is why the paper needs
//! several passes over an L3 eviction set before the target line is reliably
//! evicted (Section III-D). Both policies are implemented here behind the
//! [`ReplacementState`] enum so a cache set can be configured with either.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    Lru,
    /// Tree-based pseudo-LRU with `ways - 1` internal nodes.
    TreePlru,
    /// Uniformly random victim selection.
    Random,
}

impl ReplacementPolicy {
    /// Creates the per-set replacement state for a set with `ways` ways.
    pub fn new_state(self, ways: usize) -> ReplacementState {
        match self {
            ReplacementPolicy::Lru => ReplacementState::Lru(LruState::new(ways)),
            ReplacementPolicy::TreePlru => ReplacementState::TreePlru(TreePlruState::new(ways)),
            ReplacementPolicy::Random => ReplacementState::Random { ways },
        }
    }
}

/// Per-set replacement bookkeeping.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// LRU stack.
    Lru(LruState),
    /// pLRU tree bits.
    TreePlru(TreePlruState),
    /// Stateless random replacement.
    Random {
        /// Number of ways in the set.
        ways: usize,
    },
}

impl ReplacementState {
    /// Records an access (hit or fill) to `way`.
    pub fn touch(&mut self, way: usize) {
        match self {
            ReplacementState::Lru(s) => s.touch(way),
            ReplacementState::TreePlru(s) => s.touch(way),
            ReplacementState::Random { .. } => {}
        }
    }

    /// Chooses a victim way for the next fill.
    pub fn victim(&self, rng: &mut SmallRng) -> usize {
        match self {
            ReplacementState::Lru(s) => s.victim(),
            ReplacementState::TreePlru(s) => s.victim(),
            ReplacementState::Random { ways } => rng.gen_range(0..*ways),
        }
    }

    /// Chooses a victim way restricted to `[lo, hi)` — used by way-partitioned
    /// caches (e.g. an Intel CAT-style LLC partition, the mitigation of
    /// Section VI of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn victim_within(&self, lo: usize, hi: usize, rng: &mut SmallRng) -> usize {
        assert!(lo < hi, "partition way range must be non-empty");
        match self {
            ReplacementState::Lru(s) => s.victim_within(lo, hi),
            ReplacementState::TreePlru(_) | ReplacementState::Random { .. } => {
                rng.gen_range(lo..hi)
            }
        }
    }
}

/// Associativity up to which [`LruState`] packs the recency stack into one
/// word (4 bits per way).
const PACKED_MAX_WAYS: usize = 16;

/// Packed initial stack: nibble `r` holds way `r`, i.e. way 0 is MRU and the
/// highest way is the first victim — the same order `(0..ways).collect()`
/// produced.
const PACKED_INIT: u64 = 0xFEDC_BA98_7654_3210;

const NIBBLE_LSB: u64 = 0x1111_1111_1111_1111;
const NIBBLE_MSB: u64 = 0x8888_8888_8888_8888;

/// True-LRU state: a recency stack whose front is the most recently used way.
///
/// Every modelled cache has at most 16 ways, so the stack is packed into a
/// single `u64` (nibble `r` = the way holding recency rank `r`, rank 0 being
/// MRU); a `touch` is a nibble search plus a masked shift instead of a heap
/// scan and `memmove`. Associativities above 16 fall back to a plain vector.
#[derive(Debug, Clone)]
pub struct LruState {
    /// Packed stack (always a permutation of `0..16` in nibbles; nibbles at
    /// ranks `ways..16` keep their initial values and never move).
    order: u64,
    ways: u16,
    /// Fallback stack for `ways > 16`; empty in packed mode.
    wide: Vec<usize>,
}

impl LruState {
    /// Creates LRU state for `ways` ways, initially ordered 0..ways.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "a cache set needs at least one way");
        assert!(ways <= u16::MAX as usize, "associativity out of range");
        LruState {
            order: PACKED_INIT,
            ways: ways as u16,
            wide: if ways <= PACKED_MAX_WAYS {
                Vec::new()
            } else {
                (0..ways).collect()
            },
        }
    }

    #[inline]
    fn way_at(&self, rank: usize) -> usize {
        ((self.order >> (4 * rank)) & 0xF) as usize
    }

    /// Moves `way` to the most-recently-used position. A `way` outside the
    /// set is ignored.
    #[inline]
    pub fn touch(&mut self, way: usize) {
        let ways = self.ways as usize;
        if way >= ways {
            return;
        }
        if ways <= PACKED_MAX_WAYS {
            // Locate the nibble equal to `way` (exactly one exists: the word
            // stays a permutation of 0..16). XORing the replicated way zeroes
            // that nibble; the carry trick flags zero nibbles via their MSB,
            // and the lowest flag is always exact.
            let diff = self.order ^ (way as u64 * NIBBLE_LSB);
            let flags = diff.wrapping_sub(NIBBLE_LSB) & !diff & NIBBLE_MSB;
            let rank = (flags.trailing_zeros() >> 2) as usize;
            // Rotate ranks 0..=rank right by one nibble: `way` becomes MRU,
            // everything it outranked slides down one. The shift amount is
            // 4 * (15 - rank), so it never reaches 64.
            let mask = u64::MAX >> (60 - 4 * rank as u32);
            let rotated = ((self.order << 4) | way as u64) & mask;
            self.order = (self.order & !mask) | rotated;
        } else if let Some(pos) = self.wide.iter().position(|&w| w == way) {
            self.wide[..=pos].rotate_right(1);
        }
    }

    /// Returns the least-recently-used way.
    #[inline]
    pub fn victim(&self) -> usize {
        let ways = self.ways as usize;
        if ways <= PACKED_MAX_WAYS {
            self.way_at(ways - 1)
        } else {
            *self.wide.last().expect("non-empty LRU order")
        }
    }

    /// Returns the least-recently-used way among ways `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the associativity.
    pub fn victim_within(&self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "partition way range must be non-empty");
        assert!(hi <= self.ways as usize, "partition exceeds associativity");
        let ways = self.ways as usize;
        if ways <= PACKED_MAX_WAYS {
            for rank in (0..ways).rev() {
                let w = self.way_at(rank);
                if (lo..hi).contains(&w) {
                    return w;
                }
            }
            unreachable!("a non-empty way range always holds some way")
        } else {
            *self
                .wide
                .iter()
                .rev()
                .find(|w| (lo..hi).contains(*w))
                .expect("non-empty range within the set")
        }
    }

    /// Returns the ways ordered from most to least recently used.
    pub fn mru_order(&self) -> Vec<usize> {
        let ways = self.ways as usize;
        if ways <= PACKED_MAX_WAYS {
            (0..ways).map(|r| self.way_at(r)).collect()
        } else {
            self.wide.clone()
        }
    }
}

/// Tree pseudo-LRU state.
///
/// The tree has `ways - 1` internal nodes (as documented for the Gen9 GPU L3
/// in the Intel PRM and cited by the paper); each node bit points towards the
/// half of the subtree that was *less* recently used. The nodes live in one
/// `u64` (bit `i` = node `i` in heap layout, children at `2i + 1` / `2i + 2`),
/// which caps the associativity at 64 ways — every modelled GPU L3 uses 8 or
/// 16 — and makes a touch a handful of register operations per tree level.
#[derive(Debug, Clone)]
pub struct TreePlruState {
    bits: u64,
    ways: usize,
}

impl TreePlruState {
    /// Creates pLRU state for `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two (tree pLRU requires it) or
    /// exceeds 64 (the packed node word).
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two(),
            "tree pLRU requires power-of-two ways"
        );
        assert!(ways <= 64, "tree pLRU supports at most 64 ways");
        TreePlruState { bits: 0, ways }
    }

    /// Number of internal tree nodes (`ways - 1`).
    pub fn node_count(&self) -> usize {
        self.ways - 1
    }

    /// Records an access to `way`: every node on the path is flipped to point
    /// away from the accessed way.
    #[inline]
    pub fn touch(&mut self, way: usize) {
        debug_assert!(way < self.ways);
        let levels = self.ways.trailing_zeros();
        let mut node = 0u32;
        for level in (0..levels).rev() {
            let go_right = (way as u64 >> level) & 1;
            // Point to the opposite half of the one we just used.
            self.bits = (self.bits & !(1 << node)) | ((go_right ^ 1) << node);
            node = 2 * node + 1 + go_right as u32;
        }
    }

    /// Follows the tree bits to the pseudo-least-recently-used way.
    #[inline]
    pub fn victim(&self) -> usize {
        let levels = self.ways.trailing_zeros();
        let mut node = 0u32;
        let mut way = 0usize;
        for _ in 0..levels {
            let go_right = (self.bits >> node) & 1;
            way = (way << 1) | go_right as usize;
            node = 2 * node + 1 + go_right as u32;
        }
        way
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = LruState::new(4);
        s.touch(0);
        s.touch(1);
        s.touch(2);
        s.touch(3);
        assert_eq!(s.victim(), 0);
        s.touch(0);
        assert_eq!(s.victim(), 1);
        assert_eq!(s.mru_order()[0], 0);
    }

    #[test]
    fn lru_initial_victim_is_last_way() {
        let s = LruState::new(8);
        assert_eq!(s.victim(), 7);
    }

    #[test]
    fn plru_has_ways_minus_one_nodes() {
        let s = TreePlruState::new(16);
        assert_eq!(s.node_count(), 15);
    }

    #[test]
    fn plru_never_evicts_just_touched_way() {
        let mut s = TreePlruState::new(8);
        for way in 0..8 {
            s.touch(way);
            assert_ne!(s.victim(), way, "victim must differ from the MRU way");
        }
    }

    #[test]
    fn plru_round_robin_fill_touches_all_ways() {
        // Filling an empty set by repeatedly inserting at the victim position
        // must use every way exactly once before reusing any.
        let mut s = TreePlruState::new(8);
        let mut used = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = s.victim();
            assert!(used.insert(v), "way {v} reused before the set was full");
            s.touch(v);
        }
        assert_eq!(used.len(), 8);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = TreePlruState::new(12);
    }

    #[test]
    fn replacement_state_dispatch() {
        let mut rng = SmallRng::seed_from_u64(7);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let mut state = policy.new_state(4);
            state.touch(2);
            let v = state.victim(&mut rng);
            assert!(v < 4);
            if matches!(policy, ReplacementPolicy::Lru | ReplacementPolicy::TreePlru) {
                assert_ne!(v, 2);
            }
        }
    }

    #[test]
    fn random_policy_covers_all_ways_eventually() {
        let mut rng = SmallRng::seed_from_u64(11);
        let state = ReplacementPolicy::Random.new_state(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(state.victim(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
