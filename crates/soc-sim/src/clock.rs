//! Simulated time and clock domains.
//!
//! The CPU (4.2 GHz) and the integrated GPU (1.1 GHz) of the modelled Kaby
//! Lake part run in different clock domains; the 4:1 frequency disparity is
//! one of the central challenges the paper solves (Section III-E, "Optimization
//! around heterogeneous components"). All shared structures therefore operate
//! on a global [`Time`] expressed in picoseconds, and each agent converts
//! between its own cycles and global time through a [`ClockDomain`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero.
    pub const ZERO: Time = Time(0);

    /// Creates a time value from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time value from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time value from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a time value from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Returns the value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the value in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value as fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the value as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;

    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A fixed-frequency clock domain.
///
/// # Examples
///
/// ```
/// use soc_sim::clock::{ClockDomain, Time};
///
/// let cpu = ClockDomain::from_ghz("cpu", 4.2);
/// let one_hundred_cycles = cpu.cycles_to_time(100);
/// assert_eq!(cpu.time_to_cycles(one_hundred_cycles), 100);
/// assert!(one_hundred_cycles < Time::from_ns(24));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDomain {
    name: String,
    picos_per_cycle: f64,
}

impl ClockDomain {
    /// Creates a clock domain from a frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(name: &str, ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        ClockDomain {
            name: name.to_string(),
            picos_per_cycle: 1_000.0 / ghz,
        }
    }

    /// Creates a clock domain from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn from_mhz(name: &str, mhz: f64) -> Self {
        Self::from_ghz(name, mhz / 1_000.0)
    }

    /// Creates a clock domain from an exact cycle duration in picoseconds —
    /// the bit-exact inverse of [`ClockDomain::picos_per_cycle`], for
    /// serializers that must reconstruct a domain without a float division
    /// round trip.
    ///
    /// # Panics
    ///
    /// Panics if `picos` is not strictly positive and finite.
    pub fn from_picos_per_cycle(name: &str, picos: f64) -> Self {
        assert!(
            picos.is_finite() && picos > 0.0,
            "cycle time must be positive"
        );
        ClockDomain {
            name: name.to_string(),
            picos_per_cycle: picos,
        }
    }

    /// Returns the clock domain name (e.g. `"cpu"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        1_000.0 / self.picos_per_cycle
    }

    /// Returns the duration of one cycle in picoseconds (fractional).
    pub fn picos_per_cycle(&self) -> f64 {
        self.picos_per_cycle
    }

    /// Converts a cycle count into global time (rounded to the nearest
    /// picosecond).
    pub fn cycles_to_time(&self, cycles: u64) -> Time {
        Time((cycles as f64 * self.picos_per_cycle).round() as u64)
    }

    /// Converts a global duration into whole cycles of this domain
    /// (rounded to the nearest cycle).
    pub fn time_to_cycles(&self, time: Time) -> u64 {
        (time.as_ps() as f64 / self.picos_per_cycle).round() as u64
    }
}

/// The three clock domains of the modelled SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct SocClocks {
    /// CPU core clock (default 4.2 GHz, i7-7700k turbo).
    pub cpu: ClockDomain,
    /// GPU clock (default 1.1 GHz, Gen9 HD Graphics).
    pub gpu: ClockDomain,
    /// Ring interconnect / LLC clock (default equal to the CPU clock).
    pub ring: ClockDomain,
}

impl SocClocks {
    /// Clock configuration of the paper's Kaby Lake i7-7700k test machine.
    pub fn kaby_lake() -> Self {
        SocClocks {
            cpu: ClockDomain::from_ghz("cpu", 4.2),
            gpu: ClockDomain::from_ghz("gpu", 1.1),
            ring: ClockDomain::from_ghz("ring", 4.2),
        }
    }

    /// Ratio of CPU to GPU frequency (~3.8 on the default configuration).
    pub fn frequency_disparity(&self) -> f64 {
        self.cpu.frequency_ghz() / self.gpu.frequency_ghz()
    }
}

impl Default for SocClocks {
    fn default() -> Self {
        Self::kaby_lake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_and_accessors() {
        assert_eq!(Time::from_ns(3).as_ps(), 3_000);
        assert_eq!(Time::from_us(2).as_ns(), 2_000);
        assert_eq!(Time::from_ps(1500).as_ns(), 1);
        assert!((Time::from_ps(1500).as_ns_f64() - 1.5).abs() < 1e-9);
        assert!((Time::from_us(1).as_secs_f64() - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(3);
        assert_eq!(a + b, Time::from_ns(8));
        assert_eq!(a - b, Time::from_ns(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_ns(8));
    }

    #[test]
    fn time_display_scales_units() {
        assert_eq!(format!("{}", Time::from_ps(500)), "500 ps");
        assert!(format!("{}", Time::from_ns(500)).contains("ns"));
        assert!(format!("{}", Time::from_us(5)).contains("us"));
    }

    #[test]
    fn clock_domain_roundtrip() {
        let gpu = ClockDomain::from_ghz("gpu", 1.1);
        for cycles in [1, 10, 1_000, 123_456] {
            let t = gpu.cycles_to_time(cycles);
            let back = gpu.time_to_cycles(t);
            assert!(
                (back as i64 - cycles as i64).abs() <= 1,
                "{back} vs {cycles}"
            );
        }
    }

    #[test]
    fn clock_domain_from_mhz() {
        let d = ClockDomain::from_mhz("x", 1100.0);
        assert!((d.frequency_ghz() - 1.1).abs() < 1e-9);
        assert_eq!(d.name(), "x");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::from_ghz("bad", 0.0);
    }

    #[test]
    fn kaby_lake_disparity_is_about_four() {
        let clocks = SocClocks::kaby_lake();
        let disparity = clocks.frequency_disparity();
        assert!(disparity > 3.5 && disparity < 4.0, "disparity {disparity}");
        // A CPU cycle is shorter than a GPU cycle.
        assert!(clocks.cpu.picos_per_cycle() < clocks.gpu.picos_per_cycle());
    }
}
