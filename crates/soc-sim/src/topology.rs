//! Declarative, composable description of a memory-hierarchy topology.
//!
//! Before this layer existed every platform variant was a hand-written
//! [`SocConfig`] constructor: the paper's Kaby Lake + Gen9, the partitioned
//! mitigation, the Gen11-class scale-up — each duplicating the full list of
//! clocks, geometries and latencies, and each needing new plumbing through
//! the sweep harness. [`TopologySpec`] replaces that with one builder whose
//! axes match the knobs a topology actually has (clock domains, CPU cache
//! geometry, LLC slice hash + per-slice geometry, replacement policy, GPU
//! L3, fixed latencies, DRAM generation, noise, way-partitioning), so a new
//! platform is *data* — a preset function or a chain of `with_*` calls — and
//! the [`crate::registry::BackendRegistry`] can enumerate them by name.
//!
//! ```
//! use soc_sim::prelude::*;
//!
//! // The paper platform, but with DDR5 memory and an 8-slice LLC hash:
//! let config = TopologySpec::kaby_lake_gen9()
//!     .with_dram(DramTimingKind::Ddr5)
//!     .with_slice_hash(SliceHash::icelake_8slice())
//!     .build_config();
//! assert_eq!(config.llc.slices(), 8);
//! ```

use crate::clock::SocClocks;
use crate::dram::DramTimingKind;
use crate::gpu_l3::GpuL3Config;
use crate::llc::LlcConfig;
use crate::noise::{NoiseConfig, NoiseSchedule};
use crate::replacement::ReplacementPolicy;
use crate::slice_hash::SliceHash;
use crate::system::{CpuCacheConfig, LatencyConfig, LlcPartition, Soc, SocConfig};

/// Declarative description of one SoC topology, assembled into a
/// [`SocConfig`] (and from there a [`Soc`]) by [`TopologySpec::build_config`].
///
/// Every field has a paper-platform default, so presets only state their
/// deltas. The builder is by-value (`with_*` methods consume and return
/// `self`) so specs compose in one expression.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    clocks: SocClocks,
    cpu_cores: usize,
    cpu_caches: CpuCacheConfig,
    llc_sets_per_slice: usize,
    llc_ways: usize,
    llc_policy: ReplacementPolicy,
    slice_hash: SliceHash,
    llc_port_service_ps: u64,
    gpu_l3: GpuL3Config,
    latencies: LatencyConfig,
    noise: NoiseConfig,
    noise_schedule: Option<NoiseSchedule>,
    llc_partition: Option<LlcPartition>,
    dram: DramTimingKind,
    phys_mem_bytes: u64,
    seed: u64,
}

impl TopologySpec {
    /// The paper's experimental platform: i7-7700k (4 cores, 8 MB 4-slice
    /// LLC) with Gen9 HD Graphics on DDR4-class memory, quiet system.
    pub fn kaby_lake_gen9() -> Self {
        TopologySpec {
            clocks: SocClocks::kaby_lake(),
            cpu_cores: 4,
            cpu_caches: CpuCacheConfig::kaby_lake(),
            llc_sets_per_slice: 2048,
            llc_ways: 16,
            llc_policy: ReplacementPolicy::Lru,
            slice_hash: SliceHash::kaby_lake_i7_7700k(),
            llc_port_service_ps: 1_000,
            gpu_l3: GpuL3Config::gen9(),
            latencies: LatencyConfig::kaby_lake(),
            noise: NoiseConfig::quiet_system(),
            noise_schedule: None,
            llc_partition: None,
            dram: DramTimingKind::Ddr4,
            phys_mem_bytes: 8 * 1024 * 1024 * 1024,
            seed: 0xC0FFEE,
        }
    }

    /// A "Gen11-class" scale-up: the Kaby Lake slice hash and clocks, twice
    /// the LLC sets per slice (16 MB total) and a doubled GPU L3.
    pub fn gen11_class() -> Self {
        TopologySpec::kaby_lake_gen9()
            .with_llc_geometry(4096, 16)
            .with_gpu_l3(GpuL3Config::gen11_class())
            .with_phys_mem(16 * 1024 * 1024 * 1024)
    }

    /// An Ice Lake-class topology: eight LLC slices behind the three-equation
    /// hash of [`SliceHash::icelake_8slice`] (16 MB total), a doubled GPU L3
    /// and DDR5-class memory — the "larger SoC" scenario the paper's
    /// discussion extrapolates to.
    pub fn icelake_8slice() -> Self {
        TopologySpec::kaby_lake_gen9()
            .with_slice_hash(SliceHash::icelake_8slice())
            .with_gpu_l3(GpuL3Config::gen11_class())
            .with_dram(DramTimingKind::Ddr5)
            .with_phys_mem(16 * 1024 * 1024 * 1024)
    }

    /// Replaces the clock domains.
    pub fn with_clocks(mut self, clocks: SocClocks) -> Self {
        self.clocks = clocks;
        self
    }

    /// Sets the number of CPU cores.
    pub fn with_cpu_cores(mut self, cores: usize) -> Self {
        self.cpu_cores = cores;
        self
    }

    /// Replaces the per-core private-cache geometry.
    pub fn with_cpu_caches(mut self, caches: CpuCacheConfig) -> Self {
        self.cpu_caches = caches;
        self
    }

    /// Sets the per-slice LLC geometry (sets per slice, associativity). The
    /// slice *count* is implied by the slice hash.
    pub fn with_llc_geometry(mut self, sets_per_slice: usize, ways: usize) -> Self {
        self.llc_sets_per_slice = sets_per_slice;
        self.llc_ways = ways;
        self
    }

    /// Replaces the LLC replacement policy.
    pub fn with_llc_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.llc_policy = policy;
        self
    }

    /// Replaces the slice-selection hash (and with it the slice count —
    /// any power of two the hash's output bits encode).
    pub fn with_slice_hash(mut self, hash: SliceHash) -> Self {
        self.slice_hash = hash;
        self
    }

    /// Replaces the GPU L3 configuration.
    pub fn with_gpu_l3(mut self, gpu_l3: GpuL3Config) -> Self {
        self.gpu_l3 = gpu_l3;
        self
    }

    /// Replaces the fixed access-path latencies.
    pub fn with_latencies(mut self, latencies: LatencyConfig) -> Self {
        self.latencies = latencies;
        self
    }

    /// Replaces the ambient-noise configuration.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches a time-varying noise program (e.g.
    /// [`NoiseSchedule::calm_burst`]). When set, every timed access
    /// selects the phase its simulated timestamp falls into, overriding the
    /// static [`TopologySpec::with_noise`] level — the regime link
    /// adaptation has to chase.
    pub fn with_noise_schedule(mut self, schedule: NoiseSchedule) -> Self {
        self.noise_schedule = Some(schedule);
        self
    }

    /// Enables LLC way-partitioning between CPU and GPU (the Section VI
    /// mitigation).
    pub fn with_partition(mut self, partition: LlcPartition) -> Self {
        self.llc_partition = Some(partition);
        self
    }

    /// Selects the DRAM generation.
    pub fn with_dram(mut self, dram: DramTimingKind) -> Self {
        self.dram = dram;
        self
    }

    /// Sets the physical memory size in bytes.
    pub fn with_phys_mem(mut self, bytes: u64) -> Self {
        self.phys_mem_bytes = bytes;
        self
    }

    /// Sets the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the LLC port service time in picoseconds (the serialization
    /// quantum ring-contention timing is built on).
    pub fn with_llc_port_service_ps(mut self, picos: u64) -> Self {
        self.llc_port_service_ps = picos;
        self
    }

    /// Number of LLC slices this spec describes (implied by the hash).
    pub fn slice_count(&self) -> usize {
        self.slice_hash.slice_count()
    }

    /// The clock domains.
    pub fn clocks(&self) -> &SocClocks {
        &self.clocks
    }

    /// Number of CPU cores.
    pub fn cpu_cores(&self) -> usize {
        self.cpu_cores
    }

    /// The per-core private-cache geometry.
    pub fn cpu_caches(&self) -> &CpuCacheConfig {
        &self.cpu_caches
    }

    /// LLC sets per slice.
    pub fn llc_sets_per_slice(&self) -> usize {
        self.llc_sets_per_slice
    }

    /// LLC associativity.
    pub fn llc_ways(&self) -> usize {
        self.llc_ways
    }

    /// The LLC replacement policy.
    pub fn llc_policy(&self) -> ReplacementPolicy {
        self.llc_policy
    }

    /// The slice-selection hash.
    pub fn slice_hash(&self) -> &SliceHash {
        &self.slice_hash
    }

    /// The LLC port service time in picoseconds.
    pub fn llc_port_service_ps(&self) -> u64 {
        self.llc_port_service_ps
    }

    /// The GPU L3 configuration.
    pub fn gpu_l3(&self) -> &GpuL3Config {
        &self.gpu_l3
    }

    /// The fixed access-path latencies.
    pub fn latencies(&self) -> &LatencyConfig {
        &self.latencies
    }

    /// The ambient-noise configuration.
    pub fn noise(&self) -> &NoiseConfig {
        &self.noise
    }

    /// The time-varying noise program, when one is attached.
    pub fn noise_schedule(&self) -> Option<&NoiseSchedule> {
        self.noise_schedule.as_ref()
    }

    /// The LLC way-partition, when the mitigation is enabled.
    pub fn llc_partition(&self) -> Option<LlcPartition> {
        self.llc_partition
    }

    /// Physical memory size in bytes.
    pub fn phys_mem_bytes(&self) -> u64 {
        self.phys_mem_bytes
    }

    /// The simulation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A 64-bit FNV-1a digest over the spec's complete debug rendering —
    /// every axis, including noise schedules and latencies, feeds the hash.
    /// Sweep resume caches store this for scenario-defined backends so a
    /// row simulated under one topology is never reused after the scenario
    /// file changes the topology out from under it.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Total LLC capacity in bytes this spec describes.
    pub fn llc_capacity_bytes(&self) -> u64 {
        self.slice_count() as u64
            * self.llc_sets_per_slice as u64
            * self.llc_ways as u64
            * crate::address::CACHE_LINE_SIZE
    }

    /// The DRAM generation this spec selects.
    pub fn dram(&self) -> DramTimingKind {
        self.dram
    }

    /// Checks the spec for degenerate geometry without building anything —
    /// the non-panicking validation path the sweep runner uses so a bad
    /// caller-registered topology becomes an error *row*, not a worker-
    /// thread panic that aborts the grid.
    ///
    /// # Errors
    ///
    /// Describes the first invalid axis found; every message names the
    /// offending field and the value it carried, so a scenario-file typo
    /// points at the field to fix.
    pub fn validate(&self) -> Result<(), String> {
        if !self.llc_sets_per_slice.is_power_of_two() {
            return Err(format!(
                "llc.sets_per_slice: must be a power of two (the set index is a bit field), got {}",
                self.llc_sets_per_slice
            ));
        }
        if self.llc_ways == 0 {
            return Err("llc.ways: the LLC needs at least one way, got 0".into());
        }
        if self.llc_policy == ReplacementPolicy::TreePlru && !self.llc_ways.is_power_of_two() {
            return Err(format!(
                "llc.ways: tree-pLRU replacement requires a power-of-two way count, got {}",
                self.llc_ways
            ));
        }
        if self.cpu_cores == 0 {
            return Err("cpu_cores: the SoC needs at least one CPU core, got 0".into());
        }
        if let Some(partition) = self.llc_partition {
            if partition.cpu_ways == 0 || partition.cpu_ways >= self.llc_ways {
                return Err(format!(
                    "partition.cpu_ways: must leave both sides at least one way, \
                     got {} of {} ways",
                    partition.cpu_ways, self.llc_ways
                ));
            }
        }
        if self.phys_mem_bytes == 0 {
            return Err("phys_mem_bytes: must be positive, got 0".into());
        }
        Ok(())
    }

    /// Assembles the spec into a [`SocConfig`].
    ///
    /// # Panics
    ///
    /// Panics if [`TopologySpec::validate`] rejects the spec (zero cores or
    /// ways, or a set count that is not a power of two — the set index is a
    /// bit field).
    pub fn build_config(self) -> SocConfig {
        if let Err(message) = self.validate() {
            panic!("{message}");
        }
        SocConfig {
            clocks: self.clocks,
            cpu_cores: self.cpu_cores,
            cpu_caches: self.cpu_caches,
            llc: LlcConfig {
                sets_per_slice: self.llc_sets_per_slice,
                ways: self.llc_ways,
                policy: self.llc_policy,
                hash: self.slice_hash,
                port_service: crate::clock::Time::from_ps(self.llc_port_service_ps),
            },
            gpu_l3: self.gpu_l3,
            latencies: self.latencies,
            noise: self.noise,
            noise_schedule: self.noise_schedule,
            llc_partition: self.llc_partition,
            dram: self.dram,
            phys_mem_bytes: self.phys_mem_bytes,
            seed: self.seed,
        }
    }

    /// Assembles the spec and builds the simulator.
    pub fn build(self) -> Soc {
        Soc::new(self.build_config())
    }
}

impl Default for TopologySpec {
    fn default() -> Self {
        Self::kaby_lake_gen9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaby_lake_spec_matches_the_legacy_constructor() {
        let spec = TopologySpec::kaby_lake_gen9().build_config();
        let legacy = SocConfig::kaby_lake_i7_7700k();
        assert_eq!(spec.cpu_cores, legacy.cpu_cores);
        assert_eq!(spec.llc.slices(), legacy.llc.slices());
        assert_eq!(spec.llc.capacity_bytes(), legacy.llc.capacity_bytes());
        assert_eq!(spec.dram, legacy.dram);
        assert_eq!(spec.phys_mem_bytes, legacy.phys_mem_bytes);
    }

    #[test]
    fn icelake_spec_has_eight_slices_and_ddr5() {
        let spec = TopologySpec::icelake_8slice();
        assert_eq!(spec.slice_count(), 8);
        assert_eq!(spec.llc_capacity_bytes(), 16 * 1024 * 1024);
        assert_eq!(spec.dram(), DramTimingKind::Ddr5);
        let config = spec.build_config();
        assert_eq!(config.llc.slices(), 8);
        assert_eq!(config.llc.capacity_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn builder_axes_compose() {
        let config = TopologySpec::kaby_lake_gen9()
            .with_cpu_cores(8)
            .with_llc_geometry(1024, 12)
            .with_dram(DramTimingKind::Ddr5)
            .with_partition(LlcPartition { cpu_ways: 6 })
            .with_noise(NoiseConfig::none())
            .with_seed(99)
            .build_config();
        assert_eq!(config.cpu_cores, 8);
        assert_eq!(config.llc.sets_per_slice, 1024);
        assert_eq!(config.llc.ways, 12);
        assert_eq!(config.dram, DramTimingKind::Ddr5);
        assert_eq!(config.llc_partition, Some(LlcPartition { cpu_ways: 6 }));
        assert_eq!(config.seed, 99);
    }

    #[test]
    fn built_soc_is_usable() {
        use crate::address::PhysAddr;
        use crate::clock::Time;
        use crate::system::HitLevel;
        let mut soc = TopologySpec::icelake_8slice()
            .with_noise(NoiseConfig::none())
            .build();
        let a = PhysAddr::new(0x40_0000);
        let cold = soc.cpu_access(0, a, Time::ZERO);
        assert_eq!(cold.level, HitLevel::Dram);
        let warm = soc.cpu_access(0, a, cold.latency);
        assert_eq!(warm.level, HitLevel::CpuL1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = TopologySpec::kaby_lake_gen9()
            .with_llc_geometry(1000, 16)
            .build_config();
    }

    #[test]
    fn validate_names_the_offending_field_and_value() {
        let sets = TopologySpec::kaby_lake_gen9()
            .with_llc_geometry(1000, 16)
            .validate()
            .unwrap_err();
        assert!(sets.starts_with("llc.sets_per_slice:"), "{sets}");
        assert!(sets.contains("1000"), "{sets}");
        let ways = TopologySpec::kaby_lake_gen9()
            .with_llc_geometry(2048, 0)
            .validate()
            .unwrap_err();
        assert!(ways.starts_with("llc.ways:"), "{ways}");
        let plru = TopologySpec::kaby_lake_gen9()
            .with_llc_geometry(2048, 12)
            .with_llc_policy(ReplacementPolicy::TreePlru)
            .validate()
            .unwrap_err();
        assert!(
            plru.starts_with("llc.ways:") && plru.contains("12"),
            "{plru}"
        );
        let cores = TopologySpec::kaby_lake_gen9()
            .with_cpu_cores(0)
            .validate()
            .unwrap_err();
        assert!(cores.starts_with("cpu_cores:"), "{cores}");
        let partition = TopologySpec::kaby_lake_gen9()
            .with_partition(LlcPartition { cpu_ways: 16 })
            .validate()
            .unwrap_err();
        assert!(partition.starts_with("partition.cpu_ways:"), "{partition}");
        assert!(partition.contains("16"), "{partition}");
        let mem = TopologySpec::kaby_lake_gen9()
            .with_phys_mem(0)
            .validate()
            .unwrap_err();
        assert!(mem.starts_with("phys_mem_bytes:"), "{mem}");
        assert_eq!(TopologySpec::kaby_lake_gen9().validate(), Ok(()));
    }

    #[test]
    fn getters_expose_every_builder_axis() {
        let spec = TopologySpec::kaby_lake_gen9()
            .with_llc_port_service_ps(1_250)
            .with_seed(17);
        assert_eq!(spec.cpu_cores(), 4);
        assert_eq!(spec.llc_sets_per_slice(), 2048);
        assert_eq!(spec.llc_ways(), 16);
        assert_eq!(spec.llc_policy(), ReplacementPolicy::Lru);
        assert_eq!(spec.llc_port_service_ps(), 1_250);
        assert_eq!(spec.phys_mem_bytes(), 8 * 1024 * 1024 * 1024);
        assert_eq!(spec.seed(), 17);
        assert!(spec.llc_partition().is_none());
        assert!(spec.noise_schedule().is_none());
        assert_eq!(spec.slice_hash().slice_count(), 4);
        assert!((spec.clocks().cpu.frequency_ghz() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_tracks_every_axis() {
        let base = TopologySpec::kaby_lake_gen9();
        assert_eq!(
            base.fingerprint(),
            TopologySpec::kaby_lake_gen9().fingerprint()
        );
        let tweaks = [
            TopologySpec::kaby_lake_gen9().with_llc_geometry(4096, 16),
            TopologySpec::kaby_lake_gen9().with_seed(1),
            TopologySpec::kaby_lake_gen9().with_dram(DramTimingKind::Ddr5),
            TopologySpec::kaby_lake_gen9().with_noise(NoiseConfig::none()),
            TopologySpec::kaby_lake_gen9().with_llc_port_service_ps(999),
            TopologySpec::kaby_lake_gen9()
                .with_noise_schedule(NoiseSchedule::calm_burst(crate::clock::Time::from_us(50))),
        ];
        for tweak in &tweaks {
            assert_ne!(base.fingerprint(), tweak.fingerprint());
        }
    }
}
