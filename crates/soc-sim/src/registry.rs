//! String-keyed registry of ready-made memory-hierarchy backends.
//!
//! The scenario sweeps, the `repro` CLI and the examples used to select
//! platforms through a closed `SocBackend` enum — every new topology meant a
//! new variant threaded through sweep grids, JSON rows and labels. The
//! [`BackendRegistry`] replaces that: a backend is a named
//! [`BackendSpec`] — a registry key, a one-line summary, a
//! [`TopologySpec`] and a build mode — and callers select it by string.
//! Adding a platform is one `BackendSpec` entry (in
//! [`BackendRegistry::standard`], or at run time via
//! [`BackendRegistry::register`] and a sweep runner's `with_registry`);
//! grids, JSON rows, CLI selection and labels pick it up automatically.
//! Backends that are not assembled from a [`TopologySpec`] (a different
//! simulator, real hardware) bypass the registry and plug into the channel
//! layer directly through the [`MemorySystem`] trait.
//!
//! [`BackendRegistry::standard`] enumerates the built-in scenarios: the
//! paper platform, its way-partitioned mitigation, the Gen11-class scale-up,
//! an Ice Lake-class 8-slice topology, a DDR5 variant of the paper platform,
//! and a trace-recording wrapper for regression capture.

use crate::dram::{DramTiming, DramTimingKind};
use crate::system::{LlcPartition, Soc, SocConfig};
use crate::topology::TopologySpec;
use crate::trace::{Trace, TraceRecorder, TraceReplayer};
use crate::MemorySystem;
use std::borrow::Cow;
use std::sync::Arc;

/// How a spec turns its configuration into a running backend.
#[derive(Debug, Clone)]
enum BuildMode {
    /// Plain simulator.
    Soc,
    /// Simulator wrapped in a bounded [`TraceRecorder`] (regression capture).
    Recording,
    /// No simulator at all: a [`TraceReplayer`] serving this recorded trace
    /// (loaded from disk or captured earlier in the process). The passed-in
    /// configuration is ignored — the replayer runs against the trace's own
    /// recorded configuration.
    Replaying(Arc<Trace>),
}

/// Recording capacity (in recorded accesses — see
/// [`TraceRecorder::with_capacity`]) for recording backends built from the
/// registry: ample for replaying channel calibration and short
/// transmissions, bounded so a long sweep point cannot balloon memory.
const RECORDING_CAPACITY: usize = 1 << 16;

/// Where a spec's [`TopologySpec`] comes from: a preset function (the
/// built-in backends — `Copy`-cheap and reproducible) or a materialized
/// value (scenario-file topologies registered at run time).
#[derive(Debug, Clone)]
enum TopologySource {
    /// A preset function producing the spec on demand.
    Preset(fn() -> TopologySpec),
    /// A concrete spec value, e.g. parsed from a scenario file.
    Value(Arc<TopologySpec>),
}

/// One named backend: a registry key plus the topology it builds.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    name: Cow<'static, str>,
    summary: Cow<'static, str>,
    topology: TopologySource,
    mode: BuildMode,
}

impl BackendSpec {
    /// A new plain-simulator spec: `topology` is a function producing the
    /// [`TopologySpec`] so the spec stays `Copy`-cheap and reproducible.
    pub fn new(
        name: impl Into<Cow<'static, str>>,
        summary: impl Into<Cow<'static, str>>,
        topology: fn() -> TopologySpec,
    ) -> Self {
        BackendSpec {
            name: name.into(),
            summary: summary.into(),
            topology: TopologySource::Preset(topology),
            mode: BuildMode::Soc,
        }
    }

    /// A plain-simulator spec built from a concrete [`TopologySpec`] value —
    /// the constructor scenario files use to register topologies that exist
    /// only as parsed data, with no preset function to point at.
    pub fn from_topology(
        name: impl Into<Cow<'static, str>>,
        summary: impl Into<Cow<'static, str>>,
        topology: TopologySpec,
    ) -> Self {
        BackendSpec {
            name: name.into(),
            summary: summary.into(),
            topology: TopologySource::Value(Arc::new(topology)),
            mode: BuildMode::Soc,
        }
    }

    /// A spec whose builds wrap the simulator in a bounded
    /// [`TraceRecorder`].
    pub fn recording(
        name: impl Into<Cow<'static, str>>,
        summary: impl Into<Cow<'static, str>>,
        topology: fn() -> TopologySpec,
    ) -> Self {
        BackendSpec {
            mode: BuildMode::Recording,
            ..BackendSpec::new(name, summary, topology)
        }
    }

    /// A spec whose builds replay `trace` instead of simulating — the path
    /// a trace file loaded from disk takes back into the sweep machinery.
    /// The spec's configuration is the trace's recorded [`SocConfig`]; the
    /// stored topology function is never consulted. Replay is a strict
    /// oracle: a driver whose access sequence diverges from the recording
    /// panics with the position of the first mismatch.
    pub fn replaying(
        name: impl Into<Cow<'static, str>>,
        summary: impl Into<Cow<'static, str>>,
        trace: Trace,
    ) -> Self {
        BackendSpec {
            mode: BuildMode::Replaying(Arc::new(trace)),
            // Placeholder — every configuration query on a replaying spec
            // resolves against the trace's recorded config instead.
            ..BackendSpec::new(name, summary, TopologySpec::kaby_lake_gen9)
        }
    }

    /// Registry key (also the label sweep rows and JSON use).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line human-readable description.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The declarative topology this backend is built from. For a
    /// replaying spec this is a placeholder — use [`BackendSpec::config`],
    /// which resolves against the trace's recorded configuration.
    pub fn topology(&self) -> TopologySpec {
        match &self.topology {
            TopologySource::Preset(f) => f(),
            TopologySource::Value(spec) => (**spec).clone(),
        }
    }

    /// The topology fingerprint of a value-built spec (see
    /// [`BackendSpec::from_topology`] and [`TopologySpec::fingerprint`]),
    /// `None` for preset-function and replaying specs. Sweep resume keys
    /// fold this in so a cached row goes stale the moment the scenario file
    /// that defined the backend changes its topology.
    pub fn topology_fingerprint(&self) -> Option<u64> {
        match (&self.topology, &self.mode) {
            (TopologySource::Value(spec), BuildMode::Soc | BuildMode::Recording) => {
                Some(spec.fingerprint())
            }
            _ => None,
        }
    }

    /// The assembled configuration: the topology's build for simulating
    /// specs, the recorded configuration for replaying ones.
    pub fn config(&self) -> SocConfig {
        match &self.mode {
            BuildMode::Replaying(trace) => trace.config().clone(),
            _ => self.topology().build_config(),
        }
    }

    /// Builds the backend from an explicit (possibly customized)
    /// configuration — the path the sweep runner uses after applying its
    /// noise/seed axes.
    pub fn instantiate(&self, config: SocConfig) -> BackendInstance {
        match &self.mode {
            BuildMode::Soc => BackendInstance::Soc(Box::new(Soc::new(config))),
            BuildMode::Recording => BackendInstance::Recording(Box::new(
                TraceRecorder::with_capacity(Soc::new(config), RECORDING_CAPACITY),
            )),
            BuildMode::Replaying(trace) => {
                BackendInstance::Replaying(Box::new(TraceReplayer::new((**trace).clone())))
            }
        }
    }

    /// Builds the backend with the given simulation seed.
    pub fn build(&self, seed: u64) -> BackendInstance {
        self.instantiate(self.config().with_seed(seed))
    }

    /// `true` when this backend records a replayable trace while running.
    pub fn is_recording(&self) -> bool {
        matches!(self.mode, BuildMode::Recording)
    }

    /// `true` when this backend replays a recorded trace instead of
    /// simulating.
    pub fn is_replaying(&self) -> bool {
        matches!(self.mode, BuildMode::Replaying(_))
    }

    /// The telemetry metric groups instances of this backend emit once a
    /// registry is attached (see
    /// [`MemorySystem::attach_telemetry`]). Simulating backends report the
    /// full hierarchy; a replayer serves recorded latencies, simulates
    /// nothing, and therefore emits nothing.
    pub fn telemetry_groups(&self) -> &'static [&'static str] {
        match self.mode {
            BuildMode::Replaying(_) => &[],
            _ => &["llc", "ring", "dram"],
        }
    }
}

/// A built backend from the registry, driven through [`MemorySystem`].
#[derive(Debug, Clone)]
pub enum BackendInstance {
    /// A plain simulator.
    Soc(Box<Soc>),
    /// A simulator wrapped in a trace recorder.
    Recording(Box<TraceRecorder<Soc>>),
    /// A trace replayer serving a recorded run.
    Replaying(Box<TraceReplayer>),
}

impl BackendInstance {
    /// The recorded trace, when this instance is a recording backend.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        match self {
            BackendInstance::Soc(_) | BackendInstance::Replaying(_) => None,
            BackendInstance::Recording(rec) => Some(rec.trace()),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            BackendInstance::Soc($inner) => $body,
            BackendInstance::Recording($inner) => $body,
            BackendInstance::Replaying($inner) => $body,
        }
    };
}

impl MemorySystem for BackendInstance {
    fn cpu_access(
        &mut self,
        core: usize,
        paddr: crate::address::PhysAddr,
        now: crate::clock::Time,
    ) -> crate::system::AccessOutcome {
        delegate!(self, m => m.cpu_access(core, paddr, now))
    }

    fn gpu_access(
        &mut self,
        paddr: crate::address::PhysAddr,
        now: crate::clock::Time,
    ) -> crate::system::AccessOutcome {
        delegate!(self, m => m.gpu_access(paddr, now))
    }

    fn gpu_access_parallel(
        &mut self,
        addrs: &[crate::address::PhysAddr],
        parallelism: usize,
        now: crate::clock::Time,
    ) -> crate::system::ParallelOutcome {
        delegate!(self, m => m.gpu_access_parallel(addrs, parallelism, now))
    }

    fn clflush(
        &mut self,
        paddr: crate::address::PhysAddr,
        now: crate::clock::Time,
    ) -> crate::clock::Time {
        delegate!(self, m => m.clflush(paddr, now))
    }

    fn timer_noise_factor(&mut self) -> f64 {
        delegate!(self, m => m.timer_noise_factor())
    }

    fn llc(&self) -> &crate::llc::Llc {
        delegate!(self, m => m.llc())
    }

    fn gpu_l3(&self) -> &crate::gpu_l3::GpuL3 {
        delegate!(self, m => m.gpu_l3())
    }

    fn create_process(&mut self) -> crate::page_table::AddressSpace {
        delegate!(self, m => m.create_process())
    }

    fn alloc(
        &mut self,
        space: &mut crate::page_table::AddressSpace,
        len: u64,
        kind: crate::page_table::PageKind,
    ) -> Result<crate::page_table::MappedBuffer, crate::page_table::MapError> {
        delegate!(self, m => m.alloc(space, len, kind))
    }

    fn config(&self) -> &SocConfig {
        delegate!(self, m => m.config())
    }

    fn stats(&self) -> crate::stats::SocStats {
        delegate!(self, m => m.stats())
    }

    fn contention_snapshot(&self) -> crate::stats::ContentionSnapshot {
        delegate!(self, m => m.contention_snapshot())
    }

    fn reset_stats(&mut self) {
        delegate!(self, m => m.reset_stats())
    }

    fn in_cpu_private_caches(&self, paddr: crate::address::PhysAddr) -> bool {
        delegate!(self, m => m.in_cpu_private_caches(paddr))
    }

    fn attach_telemetry(&mut self, registry: &crate::telemetry::Registry) {
        delegate!(self, m => m.attach_telemetry(registry))
    }

    fn attach_events(&mut self, sink: &crate::events::EventSink) {
        delegate!(self, m => m.attach_events(sink))
    }
}

/// The string-keyed collection of named backends.
#[derive(Debug, Clone)]
pub struct BackendRegistry {
    specs: Vec<BackendSpec>,
}

impl BackendRegistry {
    /// The built-in scenario registry (≥ 6 entries; see the module docs).
    pub fn standard() -> Self {
        BackendRegistry {
            specs: vec![
                BackendSpec::new(
                    "kabylake-gen9",
                    "paper platform: i7-7700k + Gen9, 4-slice 8 MB LLC, DDR4",
                    TopologySpec::kaby_lake_gen9,
                ),
                BackendSpec::new(
                    "kabylake-gen9-partitioned",
                    "paper platform with the Section VI way-partitioned LLC mitigation",
                    || TopologySpec::kaby_lake_gen9().with_partition(LlcPartition::even_split()),
                ),
                BackendSpec::new(
                    "gen11-class",
                    "Gen11-class scale-up: 16 MB LLC (4 slices), doubled GPU L3",
                    TopologySpec::gen11_class,
                ),
                BackendSpec::new(
                    "icelake-8slice",
                    "Ice Lake-class: 8-slice hash (3 equations), 16 MB LLC, DDR5",
                    TopologySpec::icelake_8slice,
                ),
                BackendSpec::new(
                    "kabylake-ddr5",
                    "paper platform on DDR5-4800 memory (latency/bandwidth trade)",
                    || TopologySpec::kaby_lake_gen9().with_dram(DramTimingKind::Ddr5),
                ),
                BackendSpec::recording(
                    "trace-replay",
                    "paper platform under a trace recorder (replayable regression capture)",
                    TopologySpec::kaby_lake_gen9,
                ),
            ],
        }
    }

    /// Adds a spec to the registry. A spec whose name is already registered
    /// replaces the existing entry (last registration wins), so callers can
    /// shadow a built-in with a tweaked topology.
    pub fn register(&mut self, spec: BackendSpec) {
        if let Some(existing) = self.specs.iter_mut().find(|s| s.name == spec.name) {
            *existing = spec;
        } else {
            self.specs.push(spec);
        }
    }

    /// Builder-style [`BackendRegistry::register`].
    pub fn with_spec(mut self, spec: BackendSpec) -> Self {
        self.register(spec);
        self
    }

    /// Looks up a backend by registry key.
    pub fn get(&self, name: &str) -> Option<&BackendSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All specs, in registry order.
    pub fn specs(&self) -> &[BackendSpec] {
        &self.specs
    }

    /// All registry keys, in registry order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name()).collect()
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the registry is empty (never, for the standard registry).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// One formatted description line per backend: name, slice count, full
    /// LLC geometry (capacity, sets × ways), DRAM generation and the
    /// telemetry groups the backend emits — what `repro --list-backends`
    /// prints. The summary sentence follows on the same line.
    pub fn describe(&self) -> Vec<String> {
        self.specs
            .iter()
            .map(|s| {
                let config = s.config();
                let groups = s.telemetry_groups();
                let telemetry = if groups.is_empty() {
                    "-".to_string()
                } else {
                    groups.join("+")
                };
                format!(
                    "{:<26} {:>2} slices  {:>3} MB LLC ({:>4} sets x {:>2} ways)  {:<9}  telemetry {:<12}  {}",
                    s.name(),
                    config.llc.slices(),
                    config.llc.capacity_bytes() / (1024 * 1024),
                    config.llc.sets_per_slice,
                    config.llc.ways,
                    config.dram.label(),
                    telemetry,
                    s.summary(),
                )
            })
            .collect()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysAddr;
    use crate::clock::Time;

    /// Exercises a backend purely through the trait, the way the execution
    /// models do.
    fn roundtrip<M: MemorySystem>(mem: &mut M) {
        let a = PhysAddr::new(0x40_0000);
        let cold = mem.cpu_access(0, a, Time::ZERO);
        let warm = mem.cpu_access(0, a, cold.latency);
        assert!(warm.latency < cold.latency);
        let g = mem.gpu_access(PhysAddr::new(0x80_0000), Time::ZERO);
        assert!(g.latency > Time::ZERO);
        assert!(mem.stats().total_accesses() > 0);
        mem.reset_stats();
        assert_eq!(mem.stats().total_accesses(), 0);
    }

    #[test]
    fn standard_registry_has_at_least_six_named_backends() {
        let registry = BackendRegistry::standard();
        assert!(registry.len() >= 6, "registry has {}", registry.len());
        assert!(!registry.is_empty());
        let names = registry.names();
        for required in [
            "kabylake-gen9",
            "kabylake-gen9-partitioned",
            "gen11-class",
            "icelake-8slice",
            "kabylake-ddr5",
            "trace-replay",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
        // Keys are unique.
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn every_backend_serves_the_trait_surface() {
        for spec in BackendRegistry::standard().specs() {
            let mut backend = spec.build(1);
            roundtrip(&mut backend);
        }
    }

    #[test]
    fn lookup_is_by_exact_key() {
        let registry = BackendRegistry::standard();
        assert!(registry.get("icelake-8slice").is_some());
        assert!(registry.get("IceLake-8slice").is_none());
        assert!(registry.get("nonexistent").is_none());
    }

    #[test]
    fn specs_expose_their_topology_facts() {
        let registry = BackendRegistry::standard();
        let ice = registry.get("icelake-8slice").unwrap();
        assert_eq!(ice.config().llc.slices(), 8);
        assert_eq!(ice.config().dram, DramTimingKind::Ddr5);
        let ddr5 = registry.get("kabylake-ddr5").unwrap();
        assert_eq!(ddr5.config().llc.slices(), 4);
        assert_eq!(ddr5.config().dram, DramTimingKind::Ddr5);
        let partitioned = registry.get("kabylake-gen9-partitioned").unwrap();
        assert!(partitioned.config().llc_partition.is_some());
        assert!(registry
            .get("kabylake-gen9")
            .unwrap()
            .config()
            .llc_partition
            .is_none());
    }

    #[test]
    fn recording_backend_captures_a_trace() {
        let registry = BackendRegistry::standard();
        let spec = registry.get("trace-replay").unwrap();
        assert!(spec.is_recording());
        let mut backend = spec.build(5);
        assert_eq!(backend.trace().map(|t| t.events().len()), Some(0));
        backend.cpu_access(0, PhysAddr::new(0x1000), Time::ZERO);
        backend.gpu_access(PhysAddr::new(0x2000), Time::ZERO);
        let trace = backend.trace().expect("recording backend has a trace");
        assert_eq!(trace.events().len(), 2);
        // Non-recording backends have no trace.
        assert!(registry
            .get("kabylake-gen9")
            .unwrap()
            .build(5)
            .trace()
            .is_none());
    }

    #[test]
    fn register_adds_and_replaces_by_name() {
        let mut registry = BackendRegistry::standard();
        let before = registry.len();
        registry.register(BackendSpec::new(
            "custom-topology",
            "a caller-defined platform",
            crate::topology::TopologySpec::gen11_class,
        ));
        assert_eq!(registry.len(), before + 1);
        assert_eq!(
            registry.get("custom-topology").unwrap().summary(),
            "a caller-defined platform"
        );
        // Re-registering the same name replaces, not duplicates.
        let registry = registry.with_spec(BackendSpec::new(
            "custom-topology",
            "replaced",
            crate::topology::TopologySpec::kaby_lake_gen9,
        ));
        assert_eq!(registry.len(), before + 1);
        assert_eq!(
            registry.get("custom-topology").unwrap().summary(),
            "replaced"
        );
        let mut built = registry.get("custom-topology").unwrap().build(3);
        roundtrip(&mut built);
    }

    #[test]
    fn value_built_specs_register_carry_fingerprints_and_serve_the_trait() {
        let topology = crate::topology::TopologySpec::kaby_lake_gen9().with_llc_geometry(2048, 12);
        let name = format!("{}-12way", "kabylake"); // an owned, run-time name
        let mut registry = BackendRegistry::standard();
        registry.register(BackendSpec::from_topology(
            name,
            "a 12-way variant parsed from data".to_string(),
            topology.clone(),
        ));
        let spec = registry.get("kabylake-12way").expect("registered");
        assert_eq!(spec.config().llc.ways, 12);
        assert_eq!(spec.topology_fingerprint(), Some(topology.fingerprint()));
        // Preset-function specs have no fingerprint: their topology is code,
        // not data that can change under a cache.
        assert_eq!(
            registry
                .get("kabylake-gen9")
                .unwrap()
                .topology_fingerprint(),
            None
        );
        let mut built = spec.build(3);
        roundtrip(&mut built);
    }

    #[test]
    fn replaying_spec_serves_the_recorded_outcomes_through_the_registry() {
        // Record a short run on the paper platform…
        let mut rec = TraceRecorder::new(Soc::new(SocConfig::kaby_lake_i7_7700k().with_seed(9)));
        let addrs: Vec<PhysAddr> = (0..16u64)
            .map(|i| PhysAddr::new(0x50_0000 + i * 64))
            .collect();
        let mut expected = Vec::new();
        let mut now = Time::ZERO;
        for &a in &addrs {
            let out = rec.cpu_access(0, a, now);
            now += out.latency;
            expected.push(out);
        }
        let (_, trace) = rec.into_parts();
        // …then register the trace as a named backend and replay the same
        // access pattern through a registry-built instance.
        let registry = BackendRegistry::standard().with_spec(BackendSpec::replaying(
            "trace-file",
            "recorded run loaded as a backend",
            trace,
        ));
        let spec = registry.get("trace-file").unwrap();
        assert!(spec.is_replaying());
        assert!(!spec.is_recording());
        let mut replayed = spec.build(9);
        assert!(replayed.trace().is_none());
        let mut now = Time::ZERO;
        for (&a, want) in addrs.iter().zip(&expected) {
            let got = replayed.cpu_access(0, a, now);
            now += got.latency;
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn build_seed_controls_the_configuration() {
        let spec = BackendRegistry::standard();
        let built = spec.get("kabylake-gen9").unwrap().build(7);
        assert_eq!(built.config().seed, 7);
    }

    #[test]
    fn describe_lists_name_slices_capacity_and_dram() {
        let lines = BackendRegistry::standard().describe();
        assert_eq!(lines.len(), BackendRegistry::standard().len());
        let ice = lines
            .iter()
            .find(|l| l.contains("icelake-8slice"))
            .expect("icelake line");
        assert!(ice.contains("8 slices"), "{ice}");
        assert!(ice.contains("16 MB"), "{ice}");
        assert!(ice.contains("DDR5"), "{ice}");
    }

    #[test]
    fn describe_lists_llc_geometry_and_telemetry_groups() {
        let lines = BackendRegistry::standard().describe();
        let gen9 = lines
            .iter()
            .find(|l| l.contains("kabylake-gen9 "))
            .expect("gen9 line");
        assert!(gen9.contains("2048 sets x 16 ways"), "{gen9}");
        assert!(gen9.contains("telemetry llc+ring+dram"), "{gen9}");
    }

    #[test]
    fn telemetry_groups_match_the_build_mode() {
        let registry = BackendRegistry::standard();
        let gen9 = registry.get("kabylake-gen9").unwrap();
        assert_eq!(gen9.telemetry_groups(), &["llc", "ring", "dram"]);
        let recording = registry.get("trace-replay").unwrap();
        assert_eq!(recording.telemetry_groups(), &["llc", "ring", "dram"]);
        let rec = TraceRecorder::new(Soc::new(SocConfig::kaby_lake_noiseless()));
        let (_, trace) = rec.into_parts();
        let replaying = BackendSpec::replaying("t", "trace", trace);
        assert!(replaying.telemetry_groups().is_empty());
    }

    #[test]
    fn attach_telemetry_reaches_the_simulator_through_the_delegate() {
        let registry = crate::telemetry::Registry::new();
        let mut backend = BackendRegistry::standard()
            .get("kabylake-gen9")
            .unwrap()
            .build(7);
        backend.attach_telemetry(&registry);
        // A cold access misses the LLC and goes to DRAM.
        backend.cpu_access(0, PhysAddr::new(0x40_0000), Time::ZERO);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter_total("llc.slice"), 1, "{snapshot:?}");
        assert!(snapshot.counter("ring.crossings") == Some(1));
        assert_eq!(
            snapshot.counter("dram.row_hits").unwrap()
                + snapshot.counter("dram.row_misses").unwrap(),
            1
        );
    }
}
