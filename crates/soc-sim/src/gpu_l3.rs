//! The GPU's universal L3 data cache.
//!
//! The Gen9 iGPU attaches to the shared LLC through its own L3 cache: 768 KB
//! per GPU slice, of which 512 KB is data cache (the rest is SLM and other
//! structures). The paper's reverse engineering (Section III-D) finds:
//!
//! * 64 B cache lines;
//! * a placement function that consumes the 16 low address bits —
//!   6 bits of byte offset, 5 bits of set, 2 bits of bank and 3 bits of
//!   sub-bank under the paper's low-order-interleaving assumption;
//! * tree pseudo-LRU replacement, so a conflict set must be traversed several
//!   times (5+ in the paper) before the target line is reliably evicted;
//! * crucially, the L3 is **not inclusive** with respect to the LLC: flushing
//!   a line from the CPU side does not remove it from the L3.
//!
//! The model indexes the data cache by address bits `[6, 16)` (1024 composite
//! set/bank/sub-bank buckets) with an associativity derived from the total
//! data capacity, and exposes the bank/sub-bank split for the
//! reverse-engineering code to rediscover.

use crate::address::{PhysAddr, CACHE_LINE_SIZE};
use crate::replacement::ReplacementPolicy;
use crate::set_assoc::{CacheGeometry, FillOutcome, Indexing, SetAssocCache};
use rand::rngs::SmallRng;

/// Static GPU L3 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuL3Config {
    /// Number of cache banks per L3 slice (4 on Gen9).
    pub banks: usize,
    /// Number of sub-banks per bank (8 on Gen9).
    pub sub_banks: usize,
    /// Number of sets per bank (32 on Gen9).
    pub sets_per_bank: usize,
    /// Total data-cache capacity in bytes (512 KB per slice on Gen9).
    pub data_capacity_bytes: u64,
    /// Replacement policy (tree pLRU on Gen9).
    pub policy: ReplacementPolicy,
}

impl GpuL3Config {
    /// Gen9 (Kaby Lake HD Graphics) single-slice configuration.
    pub fn gen9() -> Self {
        GpuL3Config {
            banks: 4,
            sub_banks: 8,
            sets_per_bank: 32,
            data_capacity_bytes: 512 * 1024,
            policy: ReplacementPolicy::TreePlru,
        }
    }

    /// A "Gen11-class" L3: same bank geometry and placement function, twice
    /// the data capacity (the extra capacity shows up as associativity).
    pub fn gen11_class() -> Self {
        GpuL3Config {
            data_capacity_bytes: 1024 * 1024,
            ..Self::gen9()
        }
    }

    /// Lowest address bit of the placement index (just above the line offset).
    pub const INDEX_LO: u32 = 6;

    /// One past the highest address bit of the placement index.
    pub const INDEX_HI: u32 = 16;

    /// Number of composite index buckets (set x bank x sub-bank).
    pub fn index_buckets(&self) -> usize {
        self.sets_per_bank * self.banks * self.sub_banks
    }

    /// Associativity implied by capacity / (buckets * line size).
    pub fn ways(&self) -> usize {
        (self.data_capacity_bytes / (self.index_buckets() as u64 * CACHE_LINE_SIZE)) as usize
    }

    /// Number of address bits consumed by placement (offset + set + bank +
    /// sub-bank); 16 on Gen9, matching the paper.
    pub fn placement_bits(&self) -> u32 {
        (CACHE_LINE_SIZE.trailing_zeros())
            + (self.sets_per_bank.trailing_zeros())
            + (self.banks.trailing_zeros())
            + (self.sub_banks.trailing_zeros())
    }
}

impl Default for GpuL3Config {
    fn default() -> Self {
        Self::gen9()
    }
}

/// The GPU L3 data cache (single consolidated slice).
#[derive(Debug, Clone)]
pub struct GpuL3 {
    config: GpuL3Config,
    cache: SetAssocCache,
}

impl GpuL3 {
    /// Creates an empty L3.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero ways (capacity too small for
    /// the bank/sub-bank/set geometry).
    pub fn new(config: GpuL3Config) -> Self {
        let ways = config.ways();
        assert!(ways > 0, "GPU L3 configuration yields zero ways");
        let cache = SetAssocCache::new(CacheGeometry {
            sets: config.index_buckets(),
            ways,
            policy: config.policy,
            indexing: Indexing::AddressBits {
                lo: GpuL3Config::INDEX_LO,
                hi: GpuL3Config::INDEX_HI,
            },
        });
        GpuL3 { config, cache }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &GpuL3Config {
        &self.config
    }

    /// Composite placement index of an address (bits `[6, 16)`).
    pub fn placement_index(&self, addr: PhysAddr) -> usize {
        self.cache.set_index(addr)
    }

    /// Set index within a bank (bits `[6, 11)` under low-order interleaving).
    pub fn set_of(&self, addr: PhysAddr) -> usize {
        addr.bits(6, 11) as usize
    }

    /// Bank index (bits `[11, 13)`).
    pub fn bank_of(&self, addr: PhysAddr) -> usize {
        addr.bits(11, 13) as usize
    }

    /// Sub-bank index (bits `[13, 16)`).
    pub fn sub_bank_of(&self, addr: PhysAddr) -> usize {
        addr.bits(13, 16) as usize
    }

    /// Returns `true` when two addresses conflict in the L3 (same placement
    /// index), i.e. they are candidates for the same eviction set.
    pub fn conflicts(&self, a: PhysAddr, b: PhysAddr) -> bool {
        self.placement_index(a) == self.placement_index(b)
    }

    /// Returns `true` when the line containing `addr` is resident.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.cache.contains(addr)
    }

    /// Looks up `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        self.cache.access(addr)
    }

    /// Fills the line containing `addr`. The L3 is not inclusive of anything,
    /// so the caller never needs to propagate the returned eviction.
    pub fn fill(&mut self, addr: PhysAddr, rng: &mut SmallRng) -> FillOutcome {
        self.cache.fill(addr, rng)
    }

    /// Invalidates the line containing `addr` (used only by tests and by the
    /// "clear the whole L3" eviction strategy).
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        self.cache.invalidate(addr)
    }

    /// Invalidates the whole L3.
    pub fn invalidate_all(&mut self) {
        self.cache.invalidate_all();
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    /// Associativity of each composite set.
    pub fn ways(&self) -> usize {
        self.cache.geometry().ways
    }

    /// (hits, misses, evictions) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        self.cache.stats()
    }

    /// Clears the statistics counters.
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

impl Default for GpuL3 {
    fn default() -> Self {
        GpuL3::new(GpuL3Config::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gen9_geometry_matches_paper() {
        let cfg = GpuL3Config::gen9();
        assert_eq!(
            cfg.placement_bits(),
            16,
            "6 offset + 5 set + 2 bank + 3 sub-bank"
        );
        assert_eq!(cfg.index_buckets(), 1024);
        assert_eq!(cfg.ways(), 8);
        assert_eq!(
            cfg.index_buckets() as u64 * cfg.ways() as u64 * CACHE_LINE_SIZE,
            512 * 1024
        );
    }

    #[test]
    fn placement_depends_only_on_low_16_bits() {
        let l3 = GpuL3::default();
        let a = PhysAddr::new(0x0000_1234_5678 & 0xffff);
        let b = PhysAddr::new(0xabcd_0000_0000 | a.value());
        assert_eq!(l3.placement_index(a), l3.placement_index(b));
        assert!(l3.conflicts(a, b));
        // Changing a bit inside [6,16) moves the line to another bucket.
        let c = PhysAddr::new(a.value() ^ (1 << 9));
        assert!(!l3.conflicts(a, c));
    }

    #[test]
    fn set_bank_sub_bank_decomposition() {
        let l3 = GpuL3::default();
        // bits: offset=0, set=0b10101 (21), bank=0b11 (3), sub_bank=0b101 (5)
        let addr = PhysAddr::new((21 << 6) | (3 << 11) | (5 << 13));
        assert_eq!(l3.set_of(addr), 21);
        assert_eq!(l3.bank_of(addr), 3);
        assert_eq!(l3.sub_bank_of(addr), 5);
        // The composite placement index is exactly bits [6,16).
        assert_eq!(l3.placement_index(addr), addr.bits(6, 16) as usize);
    }

    #[test]
    fn fill_and_hit() {
        let mut l3 = GpuL3::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let a = PhysAddr::new(0x40);
        assert!(!l3.access(a));
        l3.fill(a, &mut rng);
        assert!(l3.access(a));
        assert_eq!(l3.occupancy(), 1);
    }

    #[test]
    fn conflicting_lines_evict_after_enough_fills() {
        let mut l3 = GpuL3::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let target = PhysAddr::new(0x1_0000); // placement index 0
        l3.fill(target, &mut rng);
        // Addresses sharing the 16 low bits (all zero here) conflict with the target.
        let conflict: Vec<PhysAddr> = (1..=16u64).map(|i| PhysAddr::new(i << 16)).collect();
        for &c in &conflict {
            assert!(l3.conflicts(target, c));
        }
        // One pass over `ways` conflicting addresses may not evict under pLRU,
        // but several passes must (the paper uses 5+).
        for _ in 0..5 {
            for &c in &conflict {
                if !l3.access(c) {
                    l3.fill(c, &mut rng);
                }
            }
        }
        assert!(
            !l3.contains(target),
            "target must be evicted by repeated conflict passes"
        );
    }

    #[test]
    fn invalidate_all_empties() {
        let mut l3 = GpuL3::default();
        let mut rng = SmallRng::seed_from_u64(6);
        for i in 0..1000u64 {
            l3.fill(PhysAddr::new(i * CACHE_LINE_SIZE), &mut rng);
        }
        assert!(l3.occupancy() > 500);
        l3.invalidate_all();
        assert_eq!(l3.occupancy(), 0);
        l3.reset_stats();
        assert_eq!(l3.stats(), (0, 0, 0));
    }

    #[test]
    fn ways_accessor_matches_config() {
        let l3 = GpuL3::default();
        assert_eq!(l3.ways(), GpuL3Config::gen9().ways());
    }
}
