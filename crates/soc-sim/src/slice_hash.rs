//! LLC slice-selection hash.
//!
//! The modelled 8 MB LLC is split into four 2 MB slices; a physical address is
//! routed to a slice by a complex, undocumented XOR hash of its high bits.
//! The paper reverse-engineers this hash on the Kaby Lake i7-7700k and reports
//! it as Equations (1) and (2): each slice-select bit is the XOR (parity) of a
//! fixed subset of physical address bits. [`SliceHash`] implements exactly
//! that family of functions; [`SliceHash::kaby_lake_i7_7700k`] is the paper's
//! instance, and arbitrary XOR-mask hashes can be built for testing the
//! reverse-engineering code against other ground truths.

use crate::address::PhysAddr;
use std::fmt;

/// Builds a bit mask with a 1 in each listed bit position.
const fn mask_of_bits(bits: &[u32]) -> u64 {
    let mut mask = 0u64;
    let mut i = 0;
    while i < bits.len() {
        mask |= 1u64 << bits[i];
        i += 1;
    }
    mask
}

/// Address bits XORed into slice-select bit S0 on the i7-7700k (Equation 1).
pub const KABY_LAKE_S0_BITS: &[u32] = &[
    36, 35, 33, 32, 30, 28, 27, 26, 25, 24, 22, 20, 18, 17, 16, 14, 12, 10, 6,
];

/// Address bits XORed into slice-select bit S1 on the i7-7700k (Equation 2).
pub const KABY_LAKE_S1_BITS: &[u32] = &[
    37, 35, 34, 33, 31, 29, 28, 26, 24, 23, 22, 21, 20, 19, 17, 15, 13, 11, 7,
];

/// Address bits XORed into slice-select bit S2 of the modelled Ice Lake-class
/// 8-slice hash. The part the paper measured has only four slices; this third
/// equation extends the same XOR-parity family to an 8-slice topology the
/// way Intel's larger dies do. The mask is chosen to be linearly independent
/// of Equations (1)/(2) on every address window the reverse-engineering
/// probes can reach, so timing recovery observes all eight slices.
pub const ICELAKE_S2_BITS: &[u32] = &[
    37, 35, 33, 31, 30, 28, 27, 25, 23, 21, 19, 18, 17, 15, 13, 11, 8,
];

/// An XOR-parity slice hash: slice bit `i` is the parity of `addr & masks[i]`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SliceHash {
    masks: Vec<u64>,
}

impl SliceHash {
    /// Creates a hash from one XOR mask per slice-select bit.
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty or has more than 6 entries (64-way sliced
    /// LLCs do not exist on the parts this simulator models).
    pub fn new(masks: Vec<u64>) -> Self {
        assert!(
            !masks.is_empty() && masks.len() <= 6,
            "slice hash must have between 1 and 6 output bits"
        );
        SliceHash { masks }
    }

    /// The i7-7700k (Kaby Lake, 4-slice) hash from Equations (1) and (2) of
    /// the paper.
    pub fn kaby_lake_i7_7700k() -> Self {
        SliceHash::new(vec![
            mask_of_bits(KABY_LAKE_S0_BITS),
            mask_of_bits(KABY_LAKE_S1_BITS),
        ])
    }

    /// An Ice Lake-class 8-slice hash: the two Kaby Lake equations plus a
    /// third, linearly independent parity equation ([`ICELAKE_S2_BITS`]).
    /// Exercises the arbitrary power-of-two generalization of the slice
    /// machinery — the LLC sizes itself from [`SliceHash::slice_count`].
    pub fn icelake_8slice() -> Self {
        SliceHash::new(vec![
            mask_of_bits(KABY_LAKE_S0_BITS),
            mask_of_bits(KABY_LAKE_S1_BITS),
            mask_of_bits(ICELAKE_S2_BITS),
        ])
    }

    /// A trivial hash that uses plain address bits `[lo, lo + bits)` as the
    /// slice index (useful as an "easy" ground truth in tests).
    pub fn low_order(lo: u32, bits: u32) -> Self {
        SliceHash::new((0..bits).map(|i| 1u64 << (lo + i)).collect())
    }

    /// Number of slice-select output bits.
    pub fn output_bits(&self) -> usize {
        self.masks.len()
    }

    /// Number of slices addressed by this hash (2^output_bits).
    pub fn slice_count(&self) -> usize {
        1 << self.masks.len()
    }

    /// The XOR masks, one per output bit (bit 0 first).
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Computes the slice index for a physical address.
    pub fn slice_of(&self, addr: PhysAddr) -> usize {
        let mut slice = 0usize;
        for (i, mask) in self.masks.iter().enumerate() {
            let parity = (addr.value() & mask).count_ones() & 1;
            slice |= (parity as usize) << i;
        }
        slice
    }
}

impl fmt::Debug for SliceHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("SliceHash");
        for (i, mask) in self.masks.iter().enumerate() {
            d.field(&format!("s{i}_mask"), &format_args!("{mask:#x}"));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaby_lake_hash_has_four_slices() {
        let h = SliceHash::kaby_lake_i7_7700k();
        assert_eq!(h.output_bits(), 2);
        assert_eq!(h.slice_count(), 4);
    }

    #[test]
    fn masks_match_equations() {
        let h = SliceHash::kaby_lake_i7_7700k();
        // Every bit listed in the equations must be set, and no others.
        let s0 = h.masks()[0];
        let s1 = h.masks()[1];
        assert_eq!(s0.count_ones() as usize, KABY_LAKE_S0_BITS.len());
        assert_eq!(s1.count_ones() as usize, KABY_LAKE_S1_BITS.len());
        for &b in KABY_LAKE_S0_BITS {
            assert_eq!((s0 >> b) & 1, 1, "S0 missing bit {b}");
        }
        for &b in KABY_LAKE_S1_BITS {
            assert_eq!((s1 >> b) & 1, 1, "S1 missing bit {b}");
        }
    }

    #[test]
    fn slice_of_is_xor_parity() {
        let h = SliceHash::kaby_lake_i7_7700k();
        // Flipping a bit that appears only in S0 toggles only the low slice bit.
        let base = PhysAddr::new(0);
        assert_eq!(h.slice_of(base), 0);
        let flip_b6 = PhysAddr::new(1 << 6);
        assert_eq!(h.slice_of(flip_b6), 0b01);
        let flip_b7 = PhysAddr::new(1 << 7);
        assert_eq!(h.slice_of(flip_b7), 0b10);
        // Bit 35 appears in both equations: flips both slice bits.
        let flip_b35 = PhysAddr::new(1 << 35);
        assert_eq!(h.slice_of(flip_b35), 0b11);
        // XOR property: flipping the same bit twice returns to slice 0.
        let both = PhysAddr::new((1 << 6) ^ (1 << 6));
        assert_eq!(h.slice_of(both), 0);
    }

    #[test]
    fn hash_is_linear_over_gf2() {
        // slice(a ^ b) == slice(a) ^ slice(b) for an XOR-parity hash.
        let h = SliceHash::kaby_lake_i7_7700k();
        let samples = [
            0x0u64,
            0x40,
            0x1000,
            0xdead_b000,
            0x3_4567_8000,
            0x24_0000_0040,
        ];
        for &a in &samples {
            for &b in &samples {
                let sa = h.slice_of(PhysAddr::new(a));
                let sb = h.slice_of(PhysAddr::new(b));
                let sab = h.slice_of(PhysAddr::new(a ^ b));
                assert_eq!(sab, sa ^ sb, "a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn slices_are_roughly_balanced() {
        let h = SliceHash::kaby_lake_i7_7700k();
        let mut counts = [0usize; 4];
        // Walk cache-line-aligned addresses over a 1 MiB region.
        for i in 0..16_384u64 {
            counts[h.slice_of(PhysAddr::new(i * 64))] += 1;
        }
        for &c in &counts {
            assert!(
                (3_500..=4_700).contains(&c),
                "slice population unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn icelake_hash_has_eight_slices_and_extends_kaby_lake() {
        let h = SliceHash::icelake_8slice();
        assert_eq!(h.output_bits(), 3);
        assert_eq!(h.slice_count(), 8);
        // The first two equations are exactly the Kaby Lake ones.
        let kaby = SliceHash::kaby_lake_i7_7700k();
        assert_eq!(h.masks()[0], kaby.masks()[0]);
        assert_eq!(h.masks()[1], kaby.masks()[1]);
        assert_eq!(h.masks()[2].count_ones() as usize, ICELAKE_S2_BITS.len());
    }

    #[test]
    fn icelake_s2_is_independent_of_s0_s1_on_the_probe_window() {
        // The reverse-engineering probes vary bits [17, 30). On that window
        // S2 must not equal any GF(2) combination of S0 and S1, or timing
        // recovery would only ever observe four slice groups.
        let h = SliceHash::icelake_8slice();
        let window: u64 = ((1u64 << 30) - 1) & !((1u64 << 17) - 1);
        let s0 = h.masks()[0] & window;
        let s1 = h.masks()[1] & window;
        let s2 = h.masks()[2] & window;
        for combo in [0, s0, s1, s0 ^ s1] {
            assert_ne!(s2, combo, "S2 degenerate on the huge-page window");
        }
    }

    #[test]
    fn low_order_hash_uses_plain_bits() {
        let h = SliceHash::low_order(6, 2);
        assert_eq!(h.slice_of(PhysAddr::new(0b00_000000)), 0);
        assert_eq!(h.slice_of(PhysAddr::new(0b01_000000)), 1);
        assert_eq!(h.slice_of(PhysAddr::new(0b10_000000)), 2);
        assert_eq!(h.slice_of(PhysAddr::new(0b11_000000)), 3);
    }

    #[test]
    #[should_panic(expected = "between 1 and 6")]
    fn empty_mask_list_rejected() {
        let _ = SliceHash::new(vec![]);
    }

    #[test]
    fn debug_format_shows_masks() {
        let h = SliceHash::low_order(6, 1);
        let s = format!("{h:?}");
        assert!(s.contains("s0_mask"));
        assert!(s.contains("0x40"));
    }
}
