//! Trace record / replay: a recording wrapper around any [`MemorySystem`]
//! and a deterministic replayer for regression-grade reproducibility.
//!
//! [`TraceRecorder`] interposes on the backend trait: every timed operation
//! (CPU/GPU accesses, parallel GPU groups, `clflush`, timer-noise samples)
//! is executed by the wrapped backend *and* appended to a [`Trace`]. [`TraceReplayer`] then serves the identical operation
//! sequence back without simulating anything: a channel (or test) re-driven
//! against the replayer sees bit-for-bit the outcomes of the recorded run.
//! Because the replayer checks every call against the recorded operation, it
//! doubles as a regression oracle — any drift in the caller's access pattern
//! is caught at the first diverging call.
//!
//! Address-space management is *not* traced: frame allocation in the
//! simulator is purely seed-driven, so the replayer reproduces it with its
//! own allocator initialized exactly like [`Soc`](crate::system::Soc)'s.

use crate::address::PhysAddr;
use crate::clock::Time;
use crate::gpu_l3::GpuL3;
use crate::llc::Llc;
use crate::page_table::{AddressSpace, MapError, MappedBuffer, PageKind, PhysFrameAllocator};
use crate::stats::{ContentionSnapshot, SocStats};
use crate::system::{AccessOutcome, HitLevel, ParallelOutcome, SocConfig};
use crate::MemorySystem;

/// One recorded backend operation together with its result.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A timed CPU load.
    CpuAccess {
        /// Issuing core.
        core: usize,
        /// Accessed line.
        paddr: PhysAddr,
        /// The recorded result.
        outcome: AccessOutcome,
    },
    /// A timed GPU load.
    GpuAccess {
        /// Accessed line.
        paddr: PhysAddr,
        /// The recorded result.
        outcome: AccessOutcome,
    },
    /// A parallel GPU access group.
    GpuAccessParallel {
        /// Accessed lines, in issue order.
        addrs: Vec<PhysAddr>,
        /// Thread-group width the group ran with.
        parallelism: usize,
        /// The recorded result.
        outcome: ParallelOutcome,
    },
    /// A `clflush` instruction.
    Clflush {
        /// Flushed line.
        paddr: PhysAddr,
        /// The recorded instruction latency.
        latency: Time,
    },
    /// A sample of the GPU custom timer's noise factor.
    TimerNoise {
        /// The recorded multiplicative factor.
        factor: f64,
    },
}

impl TraceEvent {
    /// Short operation name for mismatch diagnostics.
    fn op_name(&self) -> &'static str {
        match self {
            TraceEvent::CpuAccess { .. } => "cpu_access",
            TraceEvent::GpuAccess { .. } => "gpu_access",
            TraceEvent::GpuAccessParallel { .. } => "gpu_access_parallel",
            TraceEvent::Clflush { .. } => "clflush",
            TraceEvent::TimerNoise { .. } => "timer_noise_factor",
        }
    }
}

/// A recorded operation sequence plus the configuration it ran against.
#[derive(Debug, Clone)]
pub struct Trace {
    config: SocConfig,
    events: Vec<TraceEvent>,
    dropped: usize,
}

impl Trace {
    /// Reassembles a trace from its parts — the constructor a disk reader
    /// uses after deserializing a recorded run.
    pub fn from_parts(config: SocConfig, events: Vec<TraceEvent>, dropped: usize) -> Self {
        Trace {
            config,
            events,
            dropped,
        }
    }

    /// The configuration of the backend the trace was recorded from.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that were *not* recorded because the recorder's
    /// capacity bound was reached. A truncated trace replays its prefix only.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Builds a replayer for this trace.
    pub fn into_replayer(self) -> TraceReplayer {
        TraceReplayer::new(self)
    }
}

/// A [`MemorySystem`] wrapper that records every operation it forwards.
///
/// Unbounded by default; [`TraceRecorder::with_capacity`] bounds the event
/// log for long-running workloads (excess operations still execute, they are
/// just counted instead of stored). The bound is measured in recorded
/// *accesses*, not events: a parallel GPU group of `k` addresses weighs `k`,
/// so a group-heavy workload cannot balloon memory through a small number
/// of huge events.
#[derive(Debug, Clone)]
pub struct TraceRecorder<M: MemorySystem> {
    inner: M,
    trace: Trace,
    capacity: Option<usize>,
    recorded_weight: usize,
}

impl<M: MemorySystem> TraceRecorder<M> {
    /// Wraps `inner`, recording every operation.
    pub fn new(inner: M) -> Self {
        let config = inner.config().clone();
        TraceRecorder {
            inner,
            trace: Trace {
                config,
                events: Vec::new(),
                dropped: 0,
            },
            capacity: None,
            recorded_weight: 0,
        }
    }

    /// Wraps `inner`, recording at most `capacity` accesses' worth of events
    /// (further operations are executed and counted, not stored).
    pub fn with_capacity(inner: M, capacity: usize) -> Self {
        let mut recorder = TraceRecorder::new(inner);
        recorder.capacity = Some(capacity);
        recorder
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, returning the wrapped backend and the trace.
    pub fn into_parts(self) -> (M, Trace) {
        (self.inner, self.trace)
    }

    /// Read access to the wrapped backend.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn record(&mut self, weight: usize, event: TraceEvent) {
        // Truncation is sticky: once one event is dropped, every later event
        // is dropped too, so the trace is always an exact *prefix* of the
        // recorded run (a hole in the middle would make the replay oracle
        // report false divergence on a faithful re-run).
        let over = match self.capacity {
            Some(cap) => self.trace.dropped > 0 || self.recorded_weight + weight > cap,
            None => false,
        };
        if over {
            self.trace.dropped += 1;
        } else {
            self.recorded_weight += weight;
            self.trace.events.push(event);
        }
    }
}

impl<M: MemorySystem> MemorySystem for TraceRecorder<M> {
    fn cpu_access(&mut self, core: usize, paddr: PhysAddr, now: Time) -> AccessOutcome {
        let outcome = self.inner.cpu_access(core, paddr, now);
        self.record(
            1,
            TraceEvent::CpuAccess {
                core,
                paddr,
                outcome,
            },
        );
        outcome
    }

    fn gpu_access(&mut self, paddr: PhysAddr, now: Time) -> AccessOutcome {
        let outcome = self.inner.gpu_access(paddr, now);
        self.record(1, TraceEvent::GpuAccess { paddr, outcome });
        outcome
    }

    fn gpu_access_parallel(
        &mut self,
        addrs: &[PhysAddr],
        parallelism: usize,
        now: Time,
    ) -> ParallelOutcome {
        let outcome = self.inner.gpu_access_parallel(addrs, parallelism, now);
        self.record(
            addrs.len().max(1),
            TraceEvent::GpuAccessParallel {
                addrs: addrs.to_vec(),
                parallelism,
                outcome: outcome.clone(),
            },
        );
        outcome
    }

    fn clflush(&mut self, paddr: PhysAddr, now: Time) -> Time {
        let latency = self.inner.clflush(paddr, now);
        self.record(1, TraceEvent::Clflush { paddr, latency });
        latency
    }

    fn timer_noise_factor(&mut self) -> f64 {
        let factor = self.inner.timer_noise_factor();
        self.record(1, TraceEvent::TimerNoise { factor });
        factor
    }

    fn llc(&self) -> &Llc {
        self.inner.llc()
    }

    fn gpu_l3(&self) -> &GpuL3 {
        self.inner.gpu_l3()
    }

    fn create_process(&mut self) -> AddressSpace {
        self.inner.create_process()
    }

    fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError> {
        self.inner.alloc(space, len, kind)
    }

    fn config(&self) -> &SocConfig {
        self.inner.config()
    }

    fn stats(&self) -> SocStats {
        self.inner.stats()
    }

    fn contention_snapshot(&self) -> ContentionSnapshot {
        self.inner.contention_snapshot()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn in_cpu_private_caches(&self, paddr: PhysAddr) -> bool {
        self.inner.in_cpu_private_caches(paddr)
    }

    fn attach_telemetry(&mut self, registry: &crate::telemetry::Registry) {
        // Recording is transparent: the wrapped backend's instruments are
        // the recorder's instruments.
        self.inner.attach_telemetry(registry)
    }

    fn attach_events(&mut self, sink: &crate::events::EventSink) {
        // Transparent, like telemetry: the wrapped backend's timeline is
        // the recorder's timeline.
        self.inner.attach_events(sink)
    }
}

/// Deterministic replay of a [`Trace`]: serves the recorded outcomes back in
/// order, without simulating the hierarchy.
///
/// Every call is checked against the recorded operation; a caller that
/// diverges from the recorded sequence (different op, address, core or
/// group shape) triggers a panic naming the position and both operations —
/// the failure mode a regression harness wants.
///
/// The LLC and GPU-L3 views are rebuilt (empty) from the recorded
/// configuration, so geometry introspection (`set_of`, config queries, set
/// enumeration) behaves identically to the recorded backend; residency
/// queries reflect replay state, not the recorded run.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: Trace,
    cursor: usize,
    llc: Llc,
    gpu_l3: GpuL3,
    frames: PhysFrameAllocator,
    next_pid: u32,
    stats: SocStats,
}

impl TraceReplayer {
    /// Builds a replayer positioned at the start of `trace`.
    pub fn new(trace: Trace) -> Self {
        let config = trace.config().clone();
        TraceReplayer {
            llc: Llc::new(config.llc.clone()),
            gpu_l3: GpuL3::new(config.gpu_l3),
            // Mirror of Soc::new so replayed allocations land on the same
            // frames as the recorded run.
            frames: PhysFrameAllocator::new(config.phys_mem_bytes, config.seed ^ 0x9E37_79B9),
            next_pid: 1,
            stats: SocStats::default(),
            cursor: 0,
            trace,
        }
    }

    /// Number of events replayed so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Number of recorded events not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.events().len() - self.cursor
    }

    /// `true` once every recorded event has been replayed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// The event at the cursor, by reference (the caller clones only what it
    /// returns — a parallel-group trace is not deep-copied per call).
    fn peek_event(&self, expected: &str) -> &TraceEvent {
        let index = self.cursor;
        self.trace.events().get(index).unwrap_or_else(|| {
            panic!(
                "trace replay diverged: caller issued {expected} at position {index}, \
                 but the trace has only {} events ({} dropped at record time)",
                self.trace.events().len(),
                self.trace.dropped()
            )
        })
    }

    fn mismatch(&self, index: usize, expected: String, got: &TraceEvent) -> ! {
        panic!(
            "trace replay diverged at position {index}: caller issued {expected}, \
             trace recorded {}",
            got.op_name()
        )
    }

    fn count_access(&mut self, from_gpu: bool, level: HitLevel) {
        match (from_gpu, level) {
            (false, HitLevel::CpuL1) => self.stats.cpu_l1_hits += 1,
            (false, HitLevel::CpuL2) => self.stats.cpu_l2_hits += 1,
            (false, HitLevel::Llc) => self.stats.cpu_llc_hits += 1,
            (false, _) => self.stats.cpu_dram_accesses += 1,
            (true, HitLevel::GpuL3) => self.stats.gpu_l3_hits += 1,
            (true, HitLevel::Llc) => self.stats.gpu_llc_hits += 1,
            (true, _) => self.stats.gpu_dram_accesses += 1,
        }
    }
}

impl MemorySystem for TraceReplayer {
    fn cpu_access(&mut self, core: usize, paddr: PhysAddr, _now: Time) -> AccessOutcome {
        let index = self.cursor;
        let outcome = match self.peek_event("cpu_access") {
            TraceEvent::CpuAccess {
                core: c,
                paddr: p,
                outcome,
            } if *c == core && *p == paddr => *outcome,
            other => self.mismatch(index, format!("cpu_access(core {core}, {paddr:?})"), other),
        };
        self.cursor += 1;
        self.count_access(false, outcome.level);
        outcome
    }

    fn gpu_access(&mut self, paddr: PhysAddr, _now: Time) -> AccessOutcome {
        let index = self.cursor;
        let outcome = match self.peek_event("gpu_access") {
            TraceEvent::GpuAccess { paddr: p, outcome } if *p == paddr => *outcome,
            other => self.mismatch(index, format!("gpu_access({paddr:?})"), other),
        };
        self.cursor += 1;
        self.count_access(true, outcome.level);
        outcome
    }

    fn gpu_access_parallel(
        &mut self,
        addrs: &[PhysAddr],
        parallelism: usize,
        _now: Time,
    ) -> ParallelOutcome {
        let index = self.cursor;
        let outcome = match self.peek_event("gpu_access_parallel") {
            TraceEvent::GpuAccessParallel {
                addrs: a,
                parallelism: p,
                outcome,
            } if a == addrs && *p == parallelism => outcome.clone(),
            other => self.mismatch(
                index,
                format!(
                    "gpu_access_parallel({} addrs, width {parallelism})",
                    addrs.len()
                ),
                other,
            ),
        };
        self.cursor += 1;
        for o in &outcome.outcomes {
            self.count_access(true, o.level);
        }
        outcome
    }

    fn clflush(&mut self, paddr: PhysAddr, _now: Time) -> Time {
        let index = self.cursor;
        let latency = match self.peek_event("clflush") {
            TraceEvent::Clflush { paddr: p, latency } if *p == paddr => *latency,
            other => self.mismatch(index, format!("clflush({paddr:?})"), other),
        };
        self.cursor += 1;
        self.stats.clflushes += 1;
        latency
    }

    fn timer_noise_factor(&mut self) -> f64 {
        let index = self.cursor;
        let factor = match self.peek_event("timer_noise_factor") {
            TraceEvent::TimerNoise { factor } => *factor,
            other => self.mismatch(index, "timer_noise_factor()".into(), other),
        };
        self.cursor += 1;
        factor
    }

    fn llc(&self) -> &Llc {
        &self.llc
    }

    fn gpu_l3(&self) -> &GpuL3 {
        &self.gpu_l3
    }

    fn create_process(&mut self) -> AddressSpace {
        let pid = self.next_pid;
        self.next_pid += 1;
        AddressSpace::new(pid)
    }

    fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError> {
        space.alloc(len, kind, &mut self.frames)
    }

    fn config(&self) -> &SocConfig {
        self.trace.config()
    }

    fn stats(&self) -> SocStats {
        self.stats
    }

    fn contention_snapshot(&self) -> ContentionSnapshot {
        // Contention counters are a property of the live queuing model; the
        // replayer serves recorded latencies (which already embed queuing
        // delay) and reports no separate counters.
        ContentionSnapshot::default()
    }

    fn reset_stats(&mut self) {
        self.stats = SocStats::default();
    }

    fn in_cpu_private_caches(&self, _paddr: PhysAddr) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Soc, SocConfig};

    fn recorded_workload(soc: Soc) -> (Vec<AccessOutcome>, Vec<Time>, Vec<f64>, Trace) {
        let mut rec = TraceRecorder::new(soc);
        let mut outcomes = Vec::new();
        let mut flushes = Vec::new();
        let mut factors = Vec::new();
        let mut now = Time::ZERO;
        for i in 0..64u64 {
            let a = PhysAddr::new(0x40_0000 + (i % 16) * 64);
            let out = if i % 3 == 0 {
                rec.gpu_access(a, now)
            } else {
                rec.cpu_access((i % 4) as usize, a, now)
            };
            now += out.latency;
            outcomes.push(out);
            if i % 8 == 7 {
                flushes.push(rec.clflush(a, now));
                factors.push(rec.timer_noise_factor());
            }
        }
        let (_, trace) = rec.into_parts();
        (outcomes, flushes, factors, trace)
    }

    #[test]
    fn replay_reproduces_the_recorded_outcome_sequence() {
        let (outcomes, flushes, factors, trace) =
            recorded_workload(Soc::new(SocConfig::kaby_lake_i7_7700k().with_seed(3)));
        assert_eq!(trace.events().len(), 64 + 2 * flushes.len());
        let mut rep = trace.into_replayer();
        let mut got = Vec::new();
        let mut got_flushes = Vec::new();
        let mut got_factors = Vec::new();
        let mut now = Time::ZERO;
        for i in 0..64u64 {
            let a = PhysAddr::new(0x40_0000 + (i % 16) * 64);
            let out = if i % 3 == 0 {
                rep.gpu_access(a, now)
            } else {
                rep.cpu_access((i % 4) as usize, a, now)
            };
            now += out.latency;
            got.push(out);
            if i % 8 == 7 {
                got_flushes.push(rep.clflush(a, now));
                got_factors.push(rep.timer_noise_factor());
            }
        }
        assert_eq!(got, outcomes, "replayed AccessOutcome sequence must match");
        assert_eq!(got_flushes, flushes);
        assert_eq!(got_factors, factors);
        assert!(rep.is_exhausted());
    }

    #[test]
    fn replayer_tracks_stats_like_the_original() {
        let mut rec = TraceRecorder::new(Soc::new(SocConfig::kaby_lake_noiseless()));
        let a = PhysAddr::new(0x10_0000);
        rec.cpu_access(0, a, Time::ZERO); // DRAM
        rec.cpu_access(0, a, Time::from_us(1)); // L1
        rec.gpu_access(a, Time::from_us(2)); // crosses to LLC
        let original = rec.stats();
        let (_, trace) = rec.into_parts();
        let mut rep = trace.into_replayer();
        rep.cpu_access(0, a, Time::ZERO);
        rep.cpu_access(0, a, Time::from_us(1));
        rep.gpu_access(a, Time::from_us(2));
        let replayed = rep.stats();
        assert_eq!(replayed.cpu_dram_accesses, original.cpu_dram_accesses);
        assert_eq!(replayed.cpu_l1_hits, original.cpu_l1_hits);
        assert_eq!(replayed.total_accesses(), original.total_accesses());
        rep.reset_stats();
        assert_eq!(rep.stats().total_accesses(), 0);
    }

    #[test]
    fn replayer_allocations_match_the_recorded_backend() {
        let mut soc = Soc::new(SocConfig::kaby_lake_i7_7700k().with_seed(11));
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, 8192, PageKind::Small).unwrap();
        let pa = space.translate(buf.base).unwrap();

        let rec = TraceRecorder::new(Soc::new(SocConfig::kaby_lake_i7_7700k().with_seed(11)));
        let (_, trace) = rec.into_parts();
        let mut rep = trace.into_replayer();
        let mut rspace = rep.create_process();
        let rbuf = rep.alloc(&mut rspace, 8192, PageKind::Small).unwrap();
        let rpa = rspace.translate(rbuf.base).unwrap();
        assert_eq!(rpa, pa, "seeded frame allocation must replay identically");
        assert_eq!(rspace.pid(), space.pid());
    }

    #[test]
    #[should_panic(expected = "trace replay diverged")]
    fn divergent_replay_panics_with_position() {
        let mut rec = TraceRecorder::new(Soc::new(SocConfig::kaby_lake_noiseless()));
        rec.cpu_access(0, PhysAddr::new(0x1000), Time::ZERO);
        let (_, trace) = rec.into_parts();
        let mut rep = trace.into_replayer();
        // Different address: the replay oracle must reject it.
        rep.cpu_access(0, PhysAddr::new(0x2000), Time::ZERO);
    }

    #[test]
    fn capacity_bound_truncates_but_counts() {
        let mut rec = TraceRecorder::with_capacity(Soc::new(SocConfig::kaby_lake_noiseless()), 4);
        for i in 0..10u64 {
            rec.cpu_access(0, PhysAddr::new(i * 64), Time::ZERO);
        }
        assert_eq!(rec.trace().events().len(), 4);
        assert_eq!(rec.trace().dropped(), 6);
    }

    #[test]
    fn capacity_weighs_parallel_groups_and_truncation_is_sticky() {
        // A parallel group of k addresses consumes k units of capacity, so
        // group-heavy workloads cannot balloon memory through a few events —
        // and once one event is dropped, everything after it is dropped too,
        // keeping the trace an exact prefix of the run.
        let mut rec = TraceRecorder::with_capacity(Soc::new(SocConfig::kaby_lake_noiseless()), 20);
        let group: Vec<PhysAddr> = (0..16u64).map(|i| PhysAddr::new(0x1000 + i * 64)).collect();
        rec.gpu_access_parallel(&group, 16, Time::ZERO); // weight 16: recorded
        rec.gpu_access_parallel(&group, 16, Time::from_us(1)); // would exceed: dropped
        rec.cpu_access(0, PhysAddr::new(0), Time::from_us(2)); // fits, but after a drop
        assert_eq!(rec.trace().events().len(), 1, "trace must stay a prefix");
        assert_eq!(rec.trace().dropped(), 2);
        // The prefix replays cleanly against the same workload.
        let (_, trace) = rec.into_parts();
        let mut rep = trace.into_replayer();
        rep.gpu_access_parallel(&group, 16, Time::ZERO);
        assert!(rep.is_exhausted());
    }

    #[test]
    fn recorder_is_transparent_to_the_wrapped_backend() {
        let mut plain = Soc::new(SocConfig::kaby_lake_noiseless());
        let mut rec = TraceRecorder::new(Soc::new(SocConfig::kaby_lake_noiseless()));
        let a = PhysAddr::new(0x77_0000);
        for t in 0..8u64 {
            let now = Time::from_us(t);
            assert_eq!(plain.cpu_access(0, a, now), rec.cpu_access(0, a, now));
        }
        assert_eq!(plain.stats(), rec.stats());
        assert_eq!(
            plain.llc().config().capacity_bytes(),
            rec.llc().config().capacity_bytes()
        );
    }
}
