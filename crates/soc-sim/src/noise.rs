//! Measurement noise and ambient system activity.
//!
//! The paper's channels are evaluated on a "generally quiet" but unmodified
//! system, and still see 0.8–9 % bit error depending on configuration. The
//! noise model reproduces the three dominant sources of error:
//!
//! 1. **Latency jitter** — run-to-run variation of an individual access
//!    (DVFS transitions, TLB walks, prefetcher interference, …).
//! 2. **Spurious evictions** — ambient traffic occasionally evicting one of
//!    the attacker's primed LLC lines, turning a transmitted `0` into an
//!    observed `1`.
//! 3. **Timer noise** — the GPU custom timer is a software counter and its
//!    increment rate wobbles with scheduling of the counter wavefronts.

use crate::clock::Time;
use rand::rngs::SmallRng;
use rand::Rng;

/// Tunable noise parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Standard deviation of the additive latency jitter, in picoseconds.
    pub latency_jitter_ps: f64,
    /// Probability that an LLC access is preceded by a spurious eviction of a
    /// random line in the accessed set (ambient traffic).
    pub spurious_eviction_prob: f64,
    /// Relative standard deviation of the GPU custom-timer increment rate.
    pub timer_rate_jitter: f64,
}

impl NoiseConfig {
    /// The "generally quiet system" of the paper's experimental setup.
    pub fn quiet_system() -> Self {
        NoiseConfig {
            latency_jitter_ps: 1_500.0,
            spurious_eviction_prob: 0.0015,
            timer_rate_jitter: 0.03,
        }
    }

    /// A perfectly noiseless configuration (useful for unit tests).
    pub fn none() -> Self {
        NoiseConfig {
            latency_jitter_ps: 0.0,
            spurious_eviction_prob: 0.0,
            timer_rate_jitter: 0.0,
        }
    }

    /// A loaded system with significantly more ambient interference.
    pub fn noisy_system() -> Self {
        NoiseConfig {
            latency_jitter_ps: 6_000.0,
            spurious_eviction_prob: 0.02,
            timer_rate_jitter: 0.10,
        }
    }

    /// A genuinely idle machine: far below even the "generally quiet"
    /// paper testbed. The *calm* phases of a [`NoiseSchedule`] — the
    /// regime where an uncoded link wins outright, giving a
    /// link-adaptation loop something to gain by shedding its code.
    pub fn calm_system() -> Self {
        NoiseConfig {
            latency_jitter_ps: 300.0,
            spurious_eviction_prob: 0.0002,
            timer_rate_jitter: 0.005,
        }
    }

    /// A short-lived interference burst: a co-running memory-hungry workload
    /// saturating the shared levels. Substantially harsher than
    /// [`NoiseConfig::noisy_system`] — the regime that forces a link onto its
    /// heaviest code — and meant for the *burst* phases of a
    /// [`NoiseSchedule`] rather than as a steady-state ambient level.
    pub fn burst_system() -> Self {
        NoiseConfig {
            latency_jitter_ps: 9_000.0,
            spurious_eviction_prob: 0.12,
            timer_rate_jitter: 0.15,
        }
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self::quiet_system()
    }
}

/// One phase of a [`NoiseSchedule`]: an ambient-noise configuration that
/// holds for a span of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePhase {
    /// How long the phase lasts.
    pub duration: Time,
    /// The ambient-noise configuration active during the phase.
    pub config: NoiseConfig,
}

/// A time-varying ambient-noise program: a sequence of [`NoisePhase`]s the
/// simulator walks by *simulated* access time.
///
/// The paper evaluates its channels under static ambient levels (quiet /
/// noisy); real co-running workloads come and go, which is exactly the regime
/// a link-adaptation loop exists for. A schedule attached to a
/// [`crate::system::SocConfig`] (via
/// [`crate::topology::TopologySpec::with_noise_schedule`]) replaces the
/// static noise model: every timed access selects the phase its timestamp
/// falls into. Cyclic schedules repeat forever; non-cyclic ones hold their
/// last phase once the program runs out.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSchedule {
    phases: Vec<NoisePhase>,
    cyclic: bool,
}

impl NoiseSchedule {
    /// A schedule from explicit phases. Zero-duration phases are dropped;
    /// an empty (or all-zero) phase list is rejected.
    ///
    /// # Panics
    ///
    /// Panics if no phase has a positive duration.
    pub fn new(phases: Vec<NoisePhase>, cyclic: bool) -> Self {
        let phases: Vec<NoisePhase> = phases
            .into_iter()
            .filter(|p| p.duration > Time::ZERO)
            .collect();
        assert!(
            !phases.is_empty(),
            "a noise schedule needs at least one phase with positive duration"
        );
        NoiseSchedule { phases, cyclic }
    }

    /// The canonical time-varying scenario of the adaptation experiments:
    /// an idle machine ([`NoiseConfig::calm_system`]) interrupted by an
    /// equally long interference burst ([`NoiseConfig::burst_system`]),
    /// repeating calm → burst → calm → burst → … Both regimes carry real
    /// weight in any time-averaged comparison, and no fixed operating
    /// point is right for both halves — the scenario a link-adaptation
    /// loop exists for. This single constructor is what the sweep's
    /// phased noise level, the adaptive example and the integration tests
    /// all build from, so the regime stays consistent across them.
    pub fn calm_burst(phase: Time) -> Self {
        NoiseSchedule::new(
            vec![
                NoisePhase {
                    duration: phase,
                    config: NoiseConfig::calm_system(),
                },
                NoisePhase {
                    duration: phase,
                    config: NoiseConfig::burst_system(),
                },
            ],
            true,
        )
    }

    /// The phases of the schedule, in program order.
    pub fn phases(&self) -> &[NoisePhase] {
        &self.phases
    }

    /// Whether the program repeats after its last phase.
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// Total duration of one pass through the program.
    pub fn period(&self) -> Time {
        Time::from_ps(self.phases.iter().map(|p| p.duration.as_ps()).sum())
    }

    /// Index of the phase active at simulated time `now`.
    pub fn phase_index_at(&self, now: Time) -> usize {
        let period = self.period().as_ps();
        let mut t = now.as_ps();
        if self.cyclic {
            t %= period;
        } else if t >= period {
            return self.phases.len() - 1;
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if t < phase.duration.as_ps() {
                return i;
            }
            t -= phase.duration.as_ps();
        }
        self.phases.len() - 1
    }

    /// The phase active at `now` together with the absolute half-open
    /// window `[start, end)` of simulated time over which that phase
    /// occurrence holds. The simulator caches the window so the per-access
    /// phase lookup degenerates to two compares until the next scheduled
    /// phase boundary (or a backward time jump) invalidates it. The last
    /// phase of a non-cyclic schedule holds forever, so its window extends
    /// to the end of time.
    pub fn phase_window_at(&self, now: Time) -> (usize, Time, Time) {
        let period = self.period().as_ps();
        let t = now.as_ps();
        let last = self.phases.len() - 1;
        let (cycle_base, mut offset) = if self.cyclic {
            (t - t % period, t % period)
        } else if t >= period {
            let start = period - self.phases[last].duration.as_ps();
            return (last, Time::from_ps(start), Time::from_ps(u64::MAX));
        } else {
            (0, t)
        };
        let mut acc = 0u64;
        for (i, phase) in self.phases.iter().enumerate() {
            let dur = phase.duration.as_ps();
            if offset < dur {
                let end = if !self.cyclic && i == last {
                    u64::MAX
                } else {
                    cycle_base + acc + dur
                };
                return (i, Time::from_ps(cycle_base + acc), Time::from_ps(end));
            }
            offset -= dur;
            acc += dur;
        }
        unreachable!("offset is always within one period");
    }

    /// The noise configuration active at simulated time `now`.
    pub fn config_at(&self, now: Time) -> &NoiseConfig {
        &self.phases[self.phase_index_at(now)].config
    }
}

/// Runtime noise sampler.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    config: NoiseConfig,
}

impl NoiseModel {
    /// Creates a sampler for the given configuration.
    pub fn new(config: NoiseConfig) -> Self {
        NoiseModel { config }
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Samples a non-negative latency perturbation to add to an access.
    pub fn latency_jitter(&self, rng: &mut SmallRng) -> Time {
        if self.config.latency_jitter_ps <= 0.0 {
            return Time::ZERO;
        }
        // Box-Muller transform; fold the Gaussian to keep latencies causal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let ps = (z.abs() * self.config.latency_jitter_ps).round() as u64;
        Time::from_ps(ps)
    }

    /// Returns `true` when ambient traffic evicts a line from the accessed
    /// set before this access.
    pub fn spurious_eviction(&self, rng: &mut SmallRng) -> bool {
        self.config.spurious_eviction_prob > 0.0
            && rng.gen_bool(self.config.spurious_eviction_prob.min(1.0))
    }

    /// Samples a multiplicative factor for the GPU custom-timer rate
    /// (centred on 1.0).
    pub fn timer_rate_factor(&self, rng: &mut SmallRng) -> f64 {
        if self.config.timer_rate_jitter <= 0.0 {
            return 1.0;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (1.0 + z * self.config.timer_rate_jitter).max(0.1)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::new(NoiseConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noiseless_config_produces_no_noise() {
        let m = NoiseModel::new(NoiseConfig::none());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.latency_jitter(&mut rng), Time::ZERO);
            assert!(!m.spurious_eviction(&mut rng));
            assert_eq!(m.timer_rate_factor(&mut rng), 1.0);
        }
    }

    #[test]
    fn jitter_is_bounded_and_nonzero_on_average() {
        let m = NoiseModel::new(NoiseConfig::quiet_system());
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..2_000)
            .map(|_| m.latency_jitter(&mut rng).as_ps())
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        // Folded normal mean = sigma * sqrt(2/pi) ~ 0.8 * sigma.
        assert!(mean > 500.0 && mean < 3_000.0, "mean jitter {mean}");
        assert!(
            samples.iter().all(|&s| s < 20_000),
            "jitter unexpectedly large"
        );
    }

    #[test]
    fn spurious_eviction_rate_matches_config() {
        let m = NoiseModel::new(NoiseConfig {
            spurious_eviction_prob: 0.25,
            ..NoiseConfig::none()
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let count = (0..n).filter(|_| m.spurious_eviction(&mut rng)).count();
        let rate = count as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn timer_rate_factor_is_centred_on_one() {
        let m = NoiseModel::new(NoiseConfig::quiet_system());
        let mut rng = SmallRng::seed_from_u64(4);
        let mean: f64 = (0..2_000)
            .map(|_| m.timer_rate_factor(&mut rng))
            .sum::<f64>()
            / 2_000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean factor {mean}");
    }

    #[test]
    fn presets_are_ordered_by_noise_level() {
        let quiet = NoiseConfig::quiet_system();
        let noisy = NoiseConfig::noisy_system();
        let burst = NoiseConfig::burst_system();
        assert!(noisy.latency_jitter_ps > quiet.latency_jitter_ps);
        assert!(noisy.spurious_eviction_prob > quiet.spurious_eviction_prob);
        assert!(burst.spurious_eviction_prob > noisy.spurious_eviction_prob);
        assert!(burst.latency_jitter_ps > noisy.latency_jitter_ps);
        assert_eq!(NoiseConfig::default(), quiet);
    }

    #[test]
    fn cyclic_schedule_walks_and_wraps_its_phases() {
        let schedule = NoiseSchedule::calm_burst(Time::from_us(100));
        assert_eq!(schedule.phases().len(), 2);
        assert!(schedule.is_cyclic());
        assert_eq!(schedule.period(), Time::from_us(200));
        // Calm for the first 100 us, burst for the next 100, then repeat.
        assert_eq!(schedule.phase_index_at(Time::ZERO), 0);
        assert_eq!(schedule.phase_index_at(Time::from_us(99)), 0);
        assert_eq!(schedule.phase_index_at(Time::from_us(100)), 1);
        assert_eq!(schedule.phase_index_at(Time::from_us(199)), 1);
        assert_eq!(schedule.phase_index_at(Time::from_us(200)), 0);
        assert_eq!(schedule.phase_index_at(Time::from_us(350)), 1);
        assert_eq!(
            schedule.config_at(Time::from_us(150)),
            &NoiseConfig::burst_system()
        );
        assert_eq!(
            schedule.config_at(Time::from_us(50)),
            &NoiseConfig::calm_system()
        );
    }

    #[test]
    fn non_cyclic_schedule_clamps_to_its_last_phase() {
        let schedule = NoiseSchedule::new(
            vec![
                NoisePhase {
                    duration: Time::from_us(50),
                    config: NoiseConfig::quiet_system(),
                },
                NoisePhase {
                    duration: Time::from_us(50),
                    config: NoiseConfig::noisy_system(),
                },
            ],
            false,
        );
        assert_eq!(schedule.phase_index_at(Time::from_us(10)), 0);
        assert_eq!(schedule.phase_index_at(Time::from_us(75)), 1);
        // Past the program: the last phase holds forever.
        assert_eq!(schedule.phase_index_at(Time::from_ms(10)), 1);
    }

    #[test]
    fn zero_duration_phases_are_dropped() {
        let schedule = NoiseSchedule::new(
            vec![
                NoisePhase {
                    duration: Time::ZERO,
                    config: NoiseConfig::burst_system(),
                },
                NoisePhase {
                    duration: Time::from_us(1),
                    config: NoiseConfig::quiet_system(),
                },
            ],
            true,
        );
        assert_eq!(schedule.phases().len(), 1);
        assert_eq!(schedule.config_at(Time::ZERO), &NoiseConfig::quiet_system());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_is_rejected() {
        let _ = NoiseSchedule::new(vec![], true);
    }
}
