//! Pluggable SoC backends behind the [`MemorySystem`] trait.
//!
//! The execution models (`cpu-exec`, `gpu-exec`) and the covert channels do
//! not talk to [`Soc`] directly any more: they are generic over
//! [`MemorySystem`], the facade surface a memory-hierarchy backend has to
//! provide — timed CPU/GPU accesses, `clflush`, address-space management and
//! the introspection hooks (LLC/L3 views, statistics, contention counters).
//!
//! [`Soc`] is the reference implementation; [`SocBackend`] enumerates the
//! ready-made configuration variants the scenario sweeps run against:
//! the paper's Kaby Lake + Gen9 platform, the way-partitioned mitigation of
//! Section VI, and a bigger-LLC "Gen11-class" topology. A new backend — a
//! different simulator, a trace replayer, real-hardware bindings — only has
//! to implement the trait and every channel, reverse-engineering routine and
//! sweep works against it unchanged.

use crate::clock::Time;
use crate::gpu_l3::GpuL3;
use crate::llc::Llc;
use crate::page_table::{AddressSpace, MapError, MappedBuffer, PageKind};
use crate::stats::{ContentionSnapshot, SocStats};
use crate::system::{AccessOutcome, LlcPartition, ParallelOutcome, Soc, SocConfig};

/// The memory-hierarchy surface the attacker execution models require.
///
/// Mirrors the [`Soc`] facade one-to-one so `Soc` implements it by
/// delegation; see the module documentation for why this seam exists.
pub trait MemorySystem {
    /// Performs a CPU load of the line containing `paddr` from core `core`,
    /// arriving at the core's local time `now`.
    fn cpu_access(
        &mut self,
        core: usize,
        paddr: crate::address::PhysAddr,
        now: Time,
    ) -> AccessOutcome;

    /// Performs a GPU load of the line containing `paddr` at GPU time `now`.
    fn gpu_access(&mut self, paddr: crate::address::PhysAddr, now: Time) -> AccessOutcome;

    /// Performs a batch of GPU loads issued by `parallelism` threads at a
    /// time.
    fn gpu_access_parallel(
        &mut self,
        addrs: &[crate::address::PhysAddr],
        parallelism: usize,
        now: Time,
    ) -> ParallelOutcome;

    /// Executes `clflush` on the line containing `paddr` from the CPU side,
    /// returning the instruction latency.
    fn clflush(&mut self, paddr: crate::address::PhysAddr, now: Time) -> Time;

    /// Samples a multiplicative noise factor for the GPU custom timer.
    fn timer_noise_factor(&mut self) -> f64;

    /// Read-only view of the shared LLC.
    fn llc(&self) -> &Llc;

    /// Read-only view of the GPU L3.
    fn gpu_l3(&self) -> &GpuL3;

    /// Creates a new process address space.
    fn create_process(&mut self) -> AddressSpace;

    /// Allocates and maps a buffer in `space`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the backend's frame allocator.
    fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError>;

    /// The backend's static configuration.
    fn config(&self) -> &SocConfig;

    /// Aggregate access statistics.
    fn stats(&self) -> SocStats;

    /// Snapshot of the shared-resource contention counters.
    fn contention_snapshot(&self) -> ContentionSnapshot;

    /// Clears all statistics counters (cache contents are preserved).
    fn reset_stats(&mut self);

    /// Whether the line is resident in any CPU private cache (diagnostics).
    fn in_cpu_private_caches(&self, paddr: crate::address::PhysAddr) -> bool;
}

impl MemorySystem for Soc {
    fn cpu_access(
        &mut self,
        core: usize,
        paddr: crate::address::PhysAddr,
        now: Time,
    ) -> AccessOutcome {
        Soc::cpu_access(self, core, paddr, now)
    }

    fn gpu_access(&mut self, paddr: crate::address::PhysAddr, now: Time) -> AccessOutcome {
        Soc::gpu_access(self, paddr, now)
    }

    fn gpu_access_parallel(
        &mut self,
        addrs: &[crate::address::PhysAddr],
        parallelism: usize,
        now: Time,
    ) -> ParallelOutcome {
        Soc::gpu_access_parallel(self, addrs, parallelism, now)
    }

    fn clflush(&mut self, paddr: crate::address::PhysAddr, now: Time) -> Time {
        Soc::clflush(self, paddr, now)
    }

    fn timer_noise_factor(&mut self) -> f64 {
        Soc::timer_noise_factor(self)
    }

    fn llc(&self) -> &Llc {
        Soc::llc(self)
    }

    fn gpu_l3(&self) -> &GpuL3 {
        Soc::gpu_l3(self)
    }

    fn create_process(&mut self) -> AddressSpace {
        Soc::create_process(self)
    }

    fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError> {
        Soc::alloc(self, space, len, kind)
    }

    fn config(&self) -> &SocConfig {
        Soc::config(self)
    }

    fn stats(&self) -> SocStats {
        Soc::stats(self)
    }

    fn contention_snapshot(&self) -> ContentionSnapshot {
        Soc::contention_snapshot(self)
    }

    fn reset_stats(&mut self) {
        Soc::reset_stats(self)
    }

    fn in_cpu_private_caches(&self, paddr: crate::address::PhysAddr) -> bool {
        Soc::in_cpu_private_caches(self, paddr)
    }
}

/// The ready-made [`Soc`] configuration variants the sweeps select between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocBackend {
    /// The paper's experimental platform: i7-7700k + Gen9 HD Graphics.
    KabyLakeGen9,
    /// The same platform with the Section VI mitigation: the LLC ways are
    /// statically partitioned between CPU and GPU.
    KabyLakeGen9Partitioned,
    /// A "Gen11-class" topology: same slice hash, twice the LLC sets (16 MB)
    /// and a doubled GPU L3 — the larger-SoC scenario the paper's discussion
    /// extrapolates to.
    Gen11Class,
}

impl SocBackend {
    /// All backends, in sweep order.
    pub const ALL: [SocBackend; 3] = [
        SocBackend::KabyLakeGen9,
        SocBackend::KabyLakeGen9Partitioned,
        SocBackend::Gen11Class,
    ];

    /// Human-readable label used by reports and sweep rows.
    pub fn label(self) -> &'static str {
        match self {
            SocBackend::KabyLakeGen9 => "KabyLake+Gen9",
            SocBackend::KabyLakeGen9Partitioned => "KabyLake+Gen9/partitioned",
            SocBackend::Gen11Class => "Gen11-class",
        }
    }

    /// The configuration this backend builds.
    pub fn config(self) -> SocConfig {
        match self {
            SocBackend::KabyLakeGen9 => SocConfig::kaby_lake_i7_7700k(),
            SocBackend::KabyLakeGen9Partitioned => {
                SocConfig::kaby_lake_i7_7700k().with_llc_partition(LlcPartition::even_split())
            }
            SocBackend::Gen11Class => SocConfig::gen11_class(),
        }
    }

    /// Builds the backend with the given simulation seed.
    pub fn build(self, seed: u64) -> Soc {
        Soc::new(self.config().with_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysAddr;

    /// Exercises a backend purely through the trait, the way the execution
    /// models do.
    fn roundtrip<M: MemorySystem>(mem: &mut M) {
        let a = PhysAddr::new(0x40_0000);
        let cold = mem.cpu_access(0, a, Time::ZERO);
        let warm = mem.cpu_access(0, a, cold.latency);
        assert!(warm.latency < cold.latency);
        let g = mem.gpu_access(PhysAddr::new(0x80_0000), Time::ZERO);
        assert!(g.latency > Time::ZERO);
        assert!(mem.stats().total_accesses() > 0);
        mem.reset_stats();
        assert_eq!(mem.stats().total_accesses(), 0);
    }

    #[test]
    fn every_backend_serves_the_trait_surface() {
        for backend in SocBackend::ALL {
            let mut soc = backend.build(1);
            roundtrip(&mut soc);
            assert!(!backend.label().is_empty());
        }
    }

    #[test]
    fn gen11_class_has_a_bigger_llc() {
        let gen9 = SocBackend::KabyLakeGen9.config();
        let gen11 = SocBackend::Gen11Class.config();
        assert!(gen11.llc.capacity_bytes() > gen9.llc.capacity_bytes());
        assert!(gen11.gpu_l3.data_capacity_bytes > gen9.gpu_l3.data_capacity_bytes);
    }

    #[test]
    fn partitioned_backend_carries_the_mitigation() {
        assert!(SocBackend::KabyLakeGen9Partitioned
            .config()
            .llc_partition
            .is_some());
        assert!(SocBackend::KabyLakeGen9.config().llc_partition.is_none());
    }

    #[test]
    fn backend_seed_controls_the_build() {
        let a = SocBackend::KabyLakeGen9.build(7);
        assert_eq!(a.config().seed, 7);
    }
}
