//! Pluggable SoC backends behind the [`MemorySystem`] trait.
//!
//! The execution models (`cpu-exec`, `gpu-exec`) and the covert channels do
//! not talk to [`Soc`] directly any more: they are generic over
//! [`MemorySystem`], the facade surface a memory-hierarchy backend has to
//! provide — timed CPU/GPU accesses, `clflush`, address-space management and
//! the introspection hooks (LLC/L3 views, statistics, contention counters).
//!
//! [`Soc`] is the reference implementation;
//! [`crate::trace::TraceRecorder`] / [`crate::trace::TraceReplayer`] are the
//! record/replay pair, and the named configuration variants the scenario
//! sweeps run against live in the string-keyed
//! [`crate::registry::BackendRegistry`]. A new backend — a different
//! simulator, a trace replayer, real-hardware bindings — only has to
//! implement the trait and every channel, reverse-engineering routine and
//! sweep works against it unchanged.

use crate::clock::Time;
use crate::gpu_l3::GpuL3;
use crate::llc::Llc;
use crate::page_table::{AddressSpace, MapError, MappedBuffer, PageKind};
use crate::stats::{ContentionSnapshot, SocStats};
use crate::system::{AccessOutcome, ParallelOutcome, Soc, SocConfig};

/// One request of a chained access batch (see
/// [`MemorySystem::access_batch`]).
///
/// Requests execute back-to-back: each runs at the issuing agent's running
/// local time, which advances by the load's end-to-end latency (or the
/// flush's instruction latency) before the next request issues — the exact
/// timing an execution-model loop stepping one access at a time produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchRequest {
    /// A CPU load of the line containing `paddr` from core `core`.
    CpuLoad {
        /// Issuing core.
        core: usize,
        /// Accessed line.
        paddr: crate::address::PhysAddr,
    },
    /// A GPU load of the line containing `paddr`.
    GpuLoad {
        /// Accessed line.
        paddr: crate::address::PhysAddr,
    },
    /// A `clflush` of the line containing `paddr` from the CPU side. No
    /// outcome is produced; only the running time advances.
    Flush {
        /// Flushed line.
        paddr: crate::address::PhysAddr,
    },
}

/// The pinned reference semantics of [`MemorySystem::access_batch`]: step
/// request-by-request through the per-access trait methods, chaining the
/// running time. Every batched override must stay bit-identical to this
/// loop — the property tests drive both through the same workload and
/// compare outcome sequences, and the trace record/replay oracle checks a
/// batched caller against a per-access recording.
pub fn access_batch_reference<M: MemorySystem + ?Sized>(
    mem: &mut M,
    requests: &[BatchRequest],
    start: Time,
    outcomes: &mut Vec<AccessOutcome>,
) -> Time {
    let mut now = start;
    for &request in requests {
        match request {
            BatchRequest::CpuLoad { core, paddr } => {
                let outcome = mem.cpu_access(core, paddr, now);
                now += outcome.latency;
                outcomes.push(outcome);
            }
            BatchRequest::GpuLoad { paddr } => {
                let outcome = mem.gpu_access(paddr, now);
                now += outcome.latency;
                outcomes.push(outcome);
            }
            BatchRequest::Flush { paddr } => {
                now += mem.clflush(paddr, now);
            }
        }
    }
    now
}

/// The memory-hierarchy surface the attacker execution models require.
///
/// Mirrors the [`Soc`] facade one-to-one so `Soc` implements it by
/// delegation; see the module documentation for why this seam exists.
pub trait MemorySystem {
    /// Performs a CPU load of the line containing `paddr` from core `core`,
    /// arriving at the core's local time `now`.
    fn cpu_access(
        &mut self,
        core: usize,
        paddr: crate::address::PhysAddr,
        now: Time,
    ) -> AccessOutcome;

    /// Performs a GPU load of the line containing `paddr` at GPU time `now`.
    fn gpu_access(&mut self, paddr: crate::address::PhysAddr, now: Time) -> AccessOutcome;

    /// Performs a batch of GPU loads issued by `parallelism` threads at a
    /// time.
    fn gpu_access_parallel(
        &mut self,
        addrs: &[crate::address::PhysAddr],
        parallelism: usize,
        now: Time,
    ) -> ParallelOutcome;

    /// Executes `clflush` on the line containing `paddr` from the CPU side,
    /// returning the instruction latency.
    fn clflush(&mut self, paddr: crate::address::PhysAddr, now: Time) -> Time;

    /// Executes a chained batch of timed requests starting at `start`,
    /// appending one [`AccessOutcome`] per *load* to `outcomes` (flushes
    /// advance the running time but produce no outcome) and returning the
    /// running time after the last request.
    ///
    /// The default implementation steps through the per-access trait
    /// methods ([`access_batch_reference`]), so interposing wrappers still
    /// observe every individual operation — a
    /// [`crate::trace::TraceRecorder`] records the same per-access event
    /// stream either way, and a [`crate::trace::TraceReplayer`] verifies a
    /// batched caller against a per-access recording. A backend with a
    /// faster whole-batch path may override it
    /// ([`Soc::simulate_burst`]), but the override must stay bit-identical
    /// to the default.
    fn access_batch(
        &mut self,
        requests: &[BatchRequest],
        start: Time,
        outcomes: &mut Vec<AccessOutcome>,
    ) -> Time {
        access_batch_reference(self, requests, start, outcomes)
    }

    /// Samples a multiplicative noise factor for the GPU custom timer.
    fn timer_noise_factor(&mut self) -> f64;

    /// Read-only view of the shared LLC.
    fn llc(&self) -> &Llc;

    /// Read-only view of the GPU L3.
    fn gpu_l3(&self) -> &GpuL3;

    /// Creates a new process address space.
    fn create_process(&mut self) -> AddressSpace;

    /// Allocates and maps a buffer in `space`.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from the backend's frame allocator.
    fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError>;

    /// The backend's static configuration.
    fn config(&self) -> &SocConfig;

    /// Aggregate access statistics.
    fn stats(&self) -> SocStats;

    /// Snapshot of the shared-resource contention counters.
    fn contention_snapshot(&self) -> ContentionSnapshot;

    /// Clears all statistics counters (cache contents are preserved).
    fn reset_stats(&mut self);

    /// Whether the line is resident in any CPU private cache (diagnostics).
    fn in_cpu_private_caches(&self, paddr: crate::address::PhysAddr) -> bool;

    /// Attaches this backend's instruments to a telemetry registry
    /// (`llc.*`, `ring.*`, `dram.*` groups on the reference simulator).
    ///
    /// Purely observational: attaching never changes simulated timing.
    /// The default is a no-op for backends with nothing to report (the
    /// trace replayer serves recorded latencies and simulates nothing).
    fn attach_telemetry(&mut self, registry: &crate::telemetry::Registry) {
        let _ = registry;
    }

    /// Attaches this backend to a cross-layer event timeline sink
    /// (`sim`/`noise` tracks on the reference simulator; see
    /// [`crate::events`]).
    ///
    /// Purely observational, like [`MemorySystem::attach_telemetry`]. The
    /// default is a no-op for backends with no event sources of their own.
    fn attach_events(&mut self, sink: &crate::events::EventSink) {
        let _ = sink;
    }
}

impl MemorySystem for Soc {
    fn cpu_access(
        &mut self,
        core: usize,
        paddr: crate::address::PhysAddr,
        now: Time,
    ) -> AccessOutcome {
        Soc::cpu_access(self, core, paddr, now)
    }

    fn gpu_access(&mut self, paddr: crate::address::PhysAddr, now: Time) -> AccessOutcome {
        Soc::gpu_access(self, paddr, now)
    }

    fn gpu_access_parallel(
        &mut self,
        addrs: &[crate::address::PhysAddr],
        parallelism: usize,
        now: Time,
    ) -> ParallelOutcome {
        Soc::gpu_access_parallel(self, addrs, parallelism, now)
    }

    fn clflush(&mut self, paddr: crate::address::PhysAddr, now: Time) -> Time {
        Soc::clflush(self, paddr, now)
    }

    fn access_batch(
        &mut self,
        requests: &[BatchRequest],
        start: Time,
        outcomes: &mut Vec<AccessOutcome>,
    ) -> Time {
        Soc::simulate_burst(self, requests, start, outcomes)
    }

    fn timer_noise_factor(&mut self) -> f64 {
        Soc::timer_noise_factor(self)
    }

    fn llc(&self) -> &Llc {
        Soc::llc(self)
    }

    fn gpu_l3(&self) -> &GpuL3 {
        Soc::gpu_l3(self)
    }

    fn create_process(&mut self) -> AddressSpace {
        Soc::create_process(self)
    }

    fn alloc(
        &mut self,
        space: &mut AddressSpace,
        len: u64,
        kind: PageKind,
    ) -> Result<MappedBuffer, MapError> {
        Soc::alloc(self, space, len, kind)
    }

    fn config(&self) -> &SocConfig {
        Soc::config(self)
    }

    fn stats(&self) -> SocStats {
        Soc::stats(self)
    }

    fn contention_snapshot(&self) -> ContentionSnapshot {
        Soc::contention_snapshot(self)
    }

    fn reset_stats(&mut self) {
        Soc::reset_stats(self)
    }

    fn in_cpu_private_caches(&self, paddr: crate::address::PhysAddr) -> bool {
        Soc::in_cpu_private_caches(self, paddr)
    }

    fn attach_telemetry(&mut self, registry: &crate::telemetry::Registry) {
        Soc::attach_telemetry(self, registry)
    }

    fn attach_events(&mut self, sink: &crate::events::EventSink) {
        Soc::attach_events(self, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::PhysAddr;

    #[test]
    fn soc_serves_the_trait_surface() {
        let mut mem = Soc::new(SocConfig::kaby_lake_noiseless());
        let a = PhysAddr::new(0x40_0000);
        let cold = MemorySystem::cpu_access(&mut mem, 0, a, Time::ZERO);
        let warm = MemorySystem::cpu_access(&mut mem, 0, a, cold.latency);
        assert!(warm.latency < cold.latency);
        let g = MemorySystem::gpu_access(&mut mem, PhysAddr::new(0x80_0000), Time::ZERO);
        assert!(g.latency > Time::ZERO);
        assert!(MemorySystem::stats(&mem).total_accesses() > 0);
        MemorySystem::reset_stats(&mut mem);
        assert_eq!(MemorySystem::stats(&mem).total_accesses(), 0);
    }

    #[test]
    fn gen11_class_has_a_bigger_llc() {
        let gen9 = SocConfig::kaby_lake_i7_7700k();
        let gen11 = SocConfig::gen11_class();
        assert!(gen11.llc.capacity_bytes() > gen9.llc.capacity_bytes());
        assert!(gen11.gpu_l3.data_capacity_bytes > gen9.gpu_l3.data_capacity_bytes);
    }
}
