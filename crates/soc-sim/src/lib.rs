//! # soc-sim — a timing simulator of an integrated CPU–GPU system-on-chip
//!
//! This crate is the hardware substrate for the reproduction of *Leaky
//! Buddies: Cross-Component Covert Channels on Integrated CPU-GPU Systems*
//! (ISCA 2021). The paper measures its covert channels on a real Intel Kaby
//! Lake i7-7700k with Gen9 HD Graphics; this crate models the parts of that
//! SoC the attacks depend on:
//!
//! * a physically indexed, **sliced LLC** shared by CPU and GPU, with the
//!   complex XOR slice hash the paper reverse-engineers (Equations 1 and 2),
//!   inclusive of the CPU caches but not of the GPU L3;
//! * the **GPU L3** with its bank/sub-bank geometry, 16-bit placement
//!   function and tree-pLRU replacement;
//! * per-subslice **shared local memory** on a separate data path (the basis
//!   of the custom GPU timer);
//! * the **ring interconnect** and **LLC ports**, modelled as shared
//!   resources with queuing so simultaneous CPU and GPU traffic produces the
//!   measurable contention the second covert channel exploits;
//! * **asymmetric clock domains** (4.2 GHz CPU vs 1.1 GHz GPU);
//! * process **address spaces** with 4 KiB / 1 GiB pages, shared virtual
//!   memory and zero-copy buffers.
//!
//! # Quick example
//!
//! ```
//! use soc_sim::prelude::*;
//!
//! let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
//! let mut process = soc.create_process();
//! let buffer = soc.alloc(&mut process, 4096, PageKind::Small)?;
//! let pa = process.translate(buffer.base).expect("just mapped");
//!
//! // Cold access goes to DRAM, the next one hits in the core's L1.
//! let cold = soc.cpu_access(0, pa, Time::ZERO);
//! let warm = soc.cpu_access(0, pa, cold.latency);
//! assert_eq!(cold.level, HitLevel::Dram);
//! assert_eq!(warm.level, HitLevel::CpuL1);
//! # Ok::<(), soc_sim::page_table::MapError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address;
pub mod backend;
pub mod clock;
pub mod contention;
pub mod dram;
pub mod events;
pub mod gpu_l3;
pub mod llc;
pub mod noise;
pub mod page_table;
pub mod registry;
pub mod replacement;
pub mod set_assoc;
pub mod slice_hash;
pub mod slm;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod topology;
pub mod trace;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::address::{PhysAddr, VirtAddr, CACHE_LINE_SIZE};
    pub use crate::backend::{access_batch_reference, BatchRequest, MemorySystem};
    pub use crate::clock::{ClockDomain, SocClocks, Time};
    pub use crate::dram::{Ddr4, Ddr5, DramTiming, DramTimingKind};
    pub use crate::events::{Event, EventLayer, EventLog, EventSink, FieldValue};
    pub use crate::gpu_l3::GpuL3Config;
    pub use crate::llc::{LlcConfig, LlcSetId};
    pub use crate::noise::{NoiseConfig, NoisePhase, NoiseSchedule};
    pub use crate::page_table::{AddressSpace, MappedBuffer, PageKind};
    pub use crate::registry::{BackendInstance, BackendRegistry, BackendSpec};
    pub use crate::slice_hash::SliceHash;
    pub use crate::system::{
        AccessOutcome, HitLevel, LatencyConfig, ParallelOutcome, Requester, Soc, SocConfig,
    };
    pub use crate::telemetry::{
        Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, Registry, Span,
    };
    pub use crate::topology::TopologySpec;
    pub use crate::trace::{Trace, TraceEvent, TraceRecorder, TraceReplayer};
}

pub use prelude::*;
