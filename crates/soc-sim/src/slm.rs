//! Shared Local Memory (SLM).
//!
//! Each GPU subslice has 64 KB of SLM inside the L3 complex but on a
//! *separate data path*: SLM traffic does not contend with L3/LLC traffic and
//! vice versa (Section III-D of the paper). This property is what makes the
//! paper's custom software timer possible — the counter wavefronts hammer an
//! SLM word with atomics while the measuring threads access memory through the
//! normal path, without the two perturbing each other.

use crate::clock::Time;

/// Size of the SLM available to one work-group / subslice, in bytes.
pub const SLM_BYTES_PER_SUBSLICE: u64 = 64 * 1024;

/// A single subslice's shared local memory.
///
/// Only word-granularity atomic operations are modelled (that is all the
/// custom timer needs); the backing store is a small array of `u64` words.
#[derive(Debug, Clone)]
pub struct Slm {
    words: Vec<u64>,
    access_latency: Time,
    atomic_ops: u64,
}

impl Slm {
    /// Creates an SLM with `words` addressable 64-bit words and the given
    /// per-operation latency.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(words: usize, access_latency: Time) -> Self {
        assert!(words > 0, "SLM must have at least one word");
        Slm {
            words: vec![0; words],
            access_latency,
            atomic_ops: 0,
        }
    }

    /// Gen9 defaults: 64 KB of SLM, ~20 GPU cycles (~18 ns at 1.1 GHz) per
    /// atomic operation.
    pub fn gen9() -> Self {
        Slm::new((SLM_BYTES_PER_SUBSLICE / 8) as usize, Time::from_ns(18))
    }

    /// Number of addressable words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Latency of one SLM operation.
    pub fn access_latency(&self) -> Time {
        self.access_latency
    }

    /// Atomically adds `value` to the word at `index`, returning the previous
    /// value (like OpenCL `atomic_add`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn atomic_add(&mut self, index: usize, value: u64) -> u64 {
        let old = self.words[index];
        self.words[index] = old.wrapping_add(value);
        self.atomic_ops += 1;
        old
    }

    /// Atomically reads the word at `index` (an `atomic_add(index, 0)` in the
    /// paper's Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn atomic_read(&mut self, index: usize) -> u64 {
        self.atomic_ops += 1;
        self.words[index]
    }

    /// Non-atomic store (used to reset the counter between measurements).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn store(&mut self, index: usize, value: u64) {
        self.words[index] = value;
    }

    /// Number of atomic operations performed so far.
    pub fn atomic_ops(&self) -> u64 {
        self.atomic_ops
    }

    /// Resets the operation counter (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.atomic_ops = 0;
    }
}

impl Default for Slm {
    fn default() -> Self {
        Self::gen9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen9_slm_has_64kb() {
        let slm = Slm::gen9();
        assert_eq!(slm.word_count() as u64 * 8, SLM_BYTES_PER_SUBSLICE);
        assert!(slm.access_latency() > Time::ZERO);
    }

    #[test]
    fn atomic_add_returns_old_value() {
        let mut slm = Slm::new(4, Time::from_ns(1));
        assert_eq!(slm.atomic_add(0, 5), 0);
        assert_eq!(slm.atomic_add(0, 3), 5);
        assert_eq!(slm.atomic_read(0), 8);
        assert_eq!(slm.atomic_ops(), 3);
    }

    #[test]
    fn atomic_add_wraps_on_overflow() {
        let mut slm = Slm::new(1, Time::ZERO);
        slm.store(0, u64::MAX);
        assert_eq!(slm.atomic_add(0, 2), u64::MAX);
        assert_eq!(slm.atomic_read(0), 1);
    }

    #[test]
    fn store_resets_counter_word() {
        let mut slm = Slm::new(2, Time::ZERO);
        slm.atomic_add(1, 100);
        slm.store(1, 0);
        assert_eq!(slm.atomic_read(1), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let mut slm = Slm::new(1, Time::ZERO);
        slm.atomic_add(1, 1);
    }

    #[test]
    fn reset_stats_clears_op_count() {
        let mut slm = Slm::new(1, Time::ZERO);
        slm.atomic_add(0, 1);
        slm.reset_stats();
        assert_eq!(slm.atomic_ops(), 0);
    }
}
