//! Process address spaces, paging and shared virtual memory.
//!
//! The LLC is physically indexed, so the attacker must reason about physical
//! addresses. The paper uses two OS/driver mechanisms:
//!
//! * **1 GiB huge pages** on the CPU side, which make the low 30 bits of the
//!   virtual address equal to the low 30 bits of the physical address and
//!   thereby expose the slice-hash inputs to user space (Section III-C);
//! * **OpenCL Shared Virtual Memory (SVM) + zero-copy buffers**, which give
//!   the GPU kernel the *same* virtual → physical mapping as the CPU process
//!   that launched it, so eviction sets found on the CPU remain valid on the
//!   GPU (Section III-C, "GPU LLC Conflict Sets").
//!
//! [`AddressSpace`] models one process; [`AddressSpace::share_with_gpu`]
//! models SVM by handing the GPU the same translations.

use crate::address::{PhysAddr, VirtAddr, HUGE_PAGE_SIZE, SMALL_PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;

/// Page size used when mapping a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// 4 KiB pages with an unpredictable (randomised) physical layout — the
    /// default for ordinary allocations.
    Small,
    /// 1 GiB huge pages: physically contiguous and 1 GiB-aligned, so the low
    /// 30 bits of VA and PA coincide.
    Huge,
}

impl PageKind {
    /// Page size in bytes.
    pub const fn size(self) -> u64 {
        match self {
            PageKind::Small => SMALL_PAGE_SIZE,
            PageKind::Huge => HUGE_PAGE_SIZE,
        }
    }
}

/// Errors returned by address-space operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The requested allocation size was zero.
    EmptyAllocation,
    /// Physical memory is exhausted.
    OutOfPhysicalMemory,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyAllocation => write!(f, "allocation size must be non-zero"),
            MapError::OutOfPhysicalMemory => write!(f, "out of simulated physical memory"),
        }
    }
}

impl std::error::Error for MapError {}

/// A contiguous virtual allocation returned by [`AddressSpace::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedBuffer {
    /// First virtual address of the buffer.
    pub base: VirtAddr,
    /// Size in bytes.
    pub len: u64,
    /// Page kind backing the buffer.
    pub page_kind: PageKind,
}

impl MappedBuffer {
    /// Virtual address at byte `offset` into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len`.
    pub fn at(&self, offset: u64) -> VirtAddr {
        assert!(
            offset < self.len,
            "offset {offset} out of bounds (len {})",
            self.len
        );
        self.base.add(offset)
    }

    /// Iterates over the virtual addresses of every cache line in the buffer.
    pub fn lines(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        (0..self.len / crate::address::CACHE_LINE_SIZE)
            .map(|i| self.base.add(i * crate::address::CACHE_LINE_SIZE))
    }

    /// Number of whole cache lines in the buffer.
    pub fn line_count(&self) -> u64 {
        self.len / crate::address::CACHE_LINE_SIZE
    }
}

/// Allocates physical frames for the whole machine.
#[derive(Debug, Clone)]
pub struct PhysFrameAllocator {
    /// Shuffled pool of free 4 KiB frame numbers.
    free_small_frames: Vec<u64>,
    /// Next free 1 GiB-aligned region (grows upward from above the small pool).
    next_huge_base: u64,
    total_bytes: u64,
}

impl PhysFrameAllocator {
    /// Creates an allocator managing `total_bytes` of physical memory, with a
    /// randomised small-frame pool (seeded for reproducibility).
    pub fn new(total_bytes: u64, seed: u64) -> Self {
        let small_pool_bytes = total_bytes / 2;
        let frames = small_pool_bytes / SMALL_PAGE_SIZE;
        let mut free_small_frames: Vec<u64> = (0..frames).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        free_small_frames.shuffle(&mut rng);
        PhysFrameAllocator {
            free_small_frames,
            next_huge_base: small_pool_bytes.next_multiple_of(HUGE_PAGE_SIZE),
            total_bytes,
        }
    }

    /// 8 GiB machine, matching a typical desktop configuration.
    pub fn default_8gib(seed: u64) -> Self {
        PhysFrameAllocator::new(8 * 1024 * 1024 * 1024, seed)
    }

    /// Allocates one 4 KiB frame.
    pub fn alloc_small(&mut self) -> Result<PhysAddr, MapError> {
        self.free_small_frames
            .pop()
            .map(|f| PhysAddr::new(f * SMALL_PAGE_SIZE))
            .ok_or(MapError::OutOfPhysicalMemory)
    }

    /// Allocates one 1 GiB-aligned huge region.
    pub fn alloc_huge(&mut self) -> Result<PhysAddr, MapError> {
        if self.next_huge_base + HUGE_PAGE_SIZE > self.total_bytes {
            return Err(MapError::OutOfPhysicalMemory);
        }
        let base = self.next_huge_base;
        self.next_huge_base += HUGE_PAGE_SIZE;
        Ok(PhysAddr::new(base))
    }

    /// Total managed physical memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

/// One process's virtual address space (page table).
///
/// When a process launches a GPU kernel with SVM/zero-copy buffers, the GPU
/// uses *this same* address space — modelled by simply reusing the structure
/// for GPU-side translations (see [`AddressSpace::share_with_gpu`]).
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Process identifier (diagnostic only).
    pid: u32,
    /// 4 KiB page mappings: virtual page number → physical frame base.
    small_pages: HashMap<u64, PhysAddr>,
    /// Huge page mappings: virtual huge-page number → physical region base.
    huge_pages: HashMap<u64, PhysAddr>,
    /// Next unused virtual address for small allocations.
    next_small_va: u64,
    /// Next unused virtual address for huge allocations.
    next_huge_va: u64,
    /// Whether the GPU currently shares this address space (SVM).
    gpu_shared: bool,
}

impl AddressSpace {
    /// Creates an empty address space for process `pid`.
    pub fn new(pid: u32) -> Self {
        AddressSpace {
            pid,
            small_pages: HashMap::new(),
            huge_pages: HashMap::new(),
            // Arbitrary, distinct VA arenas for the two page sizes.
            next_small_va: 0x0000_5555_0000_0000,
            next_huge_va: 0x0000_7f00_0000_0000,
            gpu_shared: false,
        }
    }

    /// Process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Allocates and maps a buffer of `len` bytes backed by `kind` pages.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::EmptyAllocation`] for `len == 0` and
    /// [`MapError::OutOfPhysicalMemory`] when the frame allocator is
    /// exhausted.
    pub fn alloc(
        &mut self,
        len: u64,
        kind: PageKind,
        frames: &mut PhysFrameAllocator,
    ) -> Result<MappedBuffer, MapError> {
        if len == 0 {
            return Err(MapError::EmptyAllocation);
        }
        match kind {
            PageKind::Small => {
                let base = VirtAddr::new(self.next_small_va);
                let pages = len.div_ceil(SMALL_PAGE_SIZE);
                for i in 0..pages {
                    let frame = frames.alloc_small()?;
                    let vpn = (base.value() + i * SMALL_PAGE_SIZE) / SMALL_PAGE_SIZE;
                    self.small_pages.insert(vpn, frame);
                }
                self.next_small_va += pages * SMALL_PAGE_SIZE;
                Ok(MappedBuffer {
                    base,
                    len,
                    page_kind: kind,
                })
            }
            PageKind::Huge => {
                let base = VirtAddr::new(self.next_huge_va);
                let pages = len.div_ceil(HUGE_PAGE_SIZE);
                for i in 0..pages {
                    let region = frames.alloc_huge()?;
                    let vhpn = (base.value() + i * HUGE_PAGE_SIZE) / HUGE_PAGE_SIZE;
                    self.huge_pages.insert(vhpn, region);
                }
                self.next_huge_va += pages * HUGE_PAGE_SIZE;
                Ok(MappedBuffer {
                    base,
                    len,
                    page_kind: kind,
                })
            }
        }
    }

    /// Translates a virtual address to its physical address, or `None` when
    /// unmapped.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        let vhpn = va.value() / HUGE_PAGE_SIZE;
        if let Some(region) = self.huge_pages.get(&vhpn) {
            return Some(PhysAddr::new(region.value() + va.value() % HUGE_PAGE_SIZE));
        }
        let vpn = va.value() / SMALL_PAGE_SIZE;
        self.small_pages
            .get(&vpn)
            .map(|frame| PhysAddr::new(frame.value() + va.value() % SMALL_PAGE_SIZE))
    }

    /// Marks the address space as shared with the GPU (OpenCL SVM). After
    /// this call GPU-side translations go through the same page table, so any
    /// eviction set expressed in virtual addresses is valid on both sides.
    pub fn share_with_gpu(&mut self) {
        self.gpu_shared = true;
    }

    /// Whether the GPU shares this address space.
    pub fn is_gpu_shared(&self) -> bool {
        self.gpu_shared
    }

    /// Number of mapped 4 KiB pages.
    pub fn small_page_count(&self) -> usize {
        self.small_pages.len()
    }

    /// Number of mapped 1 GiB pages.
    pub fn huge_page_count(&self) -> usize {
        self.huge_pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::CACHE_LINE_SIZE;

    #[test]
    fn small_alloc_translates_every_page() {
        let mut frames = PhysFrameAllocator::default_8gib(1);
        let mut asid = AddressSpace::new(100);
        let buf = asid
            .alloc(10 * SMALL_PAGE_SIZE, PageKind::Small, &mut frames)
            .unwrap();
        assert_eq!(asid.small_page_count(), 10);
        for i in 0..10 {
            let va = buf.at(i * SMALL_PAGE_SIZE + 7);
            let pa = asid.translate(va).expect("mapped");
            assert_eq!(pa.value() % SMALL_PAGE_SIZE, 7, "page offset preserved");
        }
    }

    #[test]
    fn small_pages_are_not_physically_contiguous() {
        let mut frames = PhysFrameAllocator::default_8gib(2);
        let mut asid = AddressSpace::new(1);
        let buf = asid
            .alloc(4 * SMALL_PAGE_SIZE, PageKind::Small, &mut frames)
            .unwrap();
        let pa: Vec<u64> = (0..4)
            .map(|i| asid.translate(buf.at(i * SMALL_PAGE_SIZE)).unwrap().value())
            .collect();
        let contiguous = pa.windows(2).all(|w| w[1] == w[0] + SMALL_PAGE_SIZE);
        assert!(
            !contiguous,
            "randomised frame pool should not be contiguous: {pa:?}"
        );
    }

    #[test]
    fn huge_page_preserves_low_30_bits() {
        let mut frames = PhysFrameAllocator::default_8gib(3);
        let mut asid = AddressSpace::new(1);
        let buf = asid
            .alloc(HUGE_PAGE_SIZE, PageKind::Huge, &mut frames)
            .unwrap();
        for offset in [0u64, 64, 4096, 1 << 20, HUGE_PAGE_SIZE - 64] {
            let va = buf.at(offset);
            let pa = asid.translate(va).unwrap();
            assert_eq!(
                pa.value() % HUGE_PAGE_SIZE,
                offset,
                "PA low bits must equal VA offset"
            );
            assert!(pa.is_aligned(1), "sanity");
        }
        assert_eq!(asid.huge_page_count(), 1);
    }

    #[test]
    fn unmapped_address_translates_to_none() {
        let asid = AddressSpace::new(1);
        assert_eq!(asid.translate(VirtAddr::new(0x1234)), None);
    }

    #[test]
    fn zero_length_alloc_is_an_error() {
        let mut frames = PhysFrameAllocator::default_8gib(4);
        let mut asid = AddressSpace::new(1);
        let err = asid.alloc(0, PageKind::Small, &mut frames).unwrap_err();
        assert_eq!(err, MapError::EmptyAllocation);
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn huge_allocations_exhaust_physical_memory() {
        let mut frames = PhysFrameAllocator::new(4 * HUGE_PAGE_SIZE, 5);
        let mut asid = AddressSpace::new(1);
        // Half the machine is reserved for the small pool, so only ~2 huge
        // regions fit.
        let mut allocated = 0;
        loop {
            match asid.alloc(HUGE_PAGE_SIZE, PageKind::Huge, &mut frames) {
                Ok(_) => allocated += 1,
                Err(MapError::OutOfPhysicalMemory) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(allocated < 100, "allocator failed to report exhaustion");
        }
        assert!(allocated >= 1);
    }

    #[test]
    fn svm_sharing_flag() {
        let mut asid = AddressSpace::new(7);
        assert!(!asid.is_gpu_shared());
        asid.share_with_gpu();
        assert!(asid.is_gpu_shared());
        assert_eq!(asid.pid(), 7);
    }

    #[test]
    fn buffer_lines_iterator_covers_whole_buffer() {
        let mut frames = PhysFrameAllocator::default_8gib(6);
        let mut asid = AddressSpace::new(1);
        let buf = asid
            .alloc(SMALL_PAGE_SIZE, PageKind::Small, &mut frames)
            .unwrap();
        let lines: Vec<_> = buf.lines().collect();
        assert_eq!(lines.len() as u64, SMALL_PAGE_SIZE / CACHE_LINE_SIZE);
        assert_eq!(lines[0], buf.base);
        assert_eq!(buf.line_count(), lines.len() as u64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn buffer_at_out_of_bounds_panics() {
        let buf = MappedBuffer {
            base: VirtAddr::new(0x1000),
            len: 64,
            page_kind: PageKind::Small,
        };
        let _ = buf.at(64);
    }
}
