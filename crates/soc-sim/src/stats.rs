//! Aggregate simulator statistics.

use crate::clock::Time;

/// Counters accumulated by the [`crate::system::Soc`] across all accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SocStats {
    /// CPU accesses that hit in L1.
    pub cpu_l1_hits: u64,
    /// CPU accesses that hit in L2.
    pub cpu_l2_hits: u64,
    /// CPU accesses that hit in the LLC.
    pub cpu_llc_hits: u64,
    /// CPU accesses served from DRAM.
    pub cpu_dram_accesses: u64,
    /// GPU accesses that hit in the GPU L3.
    pub gpu_l3_hits: u64,
    /// GPU accesses that hit in the LLC.
    pub gpu_llc_hits: u64,
    /// GPU accesses served from DRAM.
    pub gpu_dram_accesses: u64,
    /// Number of `clflush` operations executed.
    pub clflushes: u64,
    /// Lines invalidated in CPU caches by inclusive-LLC back-invalidation.
    pub back_invalidations: u64,
    /// Spurious (noise-injected) LLC evictions.
    pub spurious_evictions: u64,
}

impl SocStats {
    /// Total CPU-initiated accesses.
    pub fn cpu_accesses(&self) -> u64 {
        self.cpu_l1_hits + self.cpu_l2_hits + self.cpu_llc_hits + self.cpu_dram_accesses
    }

    /// Total GPU-initiated accesses.
    pub fn gpu_accesses(&self) -> u64 {
        self.gpu_l3_hits + self.gpu_llc_hits + self.gpu_dram_accesses
    }

    /// Total accesses from both components.
    pub fn total_accesses(&self) -> u64 {
        self.cpu_accesses() + self.gpu_accesses()
    }
}

/// A snapshot of contention-related statistics, useful for assertions in
/// benchmarks and tests about *where* latency went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContentionSnapshot {
    /// Ring transactions observed.
    pub ring_transactions: u64,
    /// Ring transactions that experienced queuing.
    pub ring_contended: u64,
    /// Total ring queuing delay.
    pub ring_queue_delay: Time,
    /// DRAM channel transactions.
    pub dram_transactions: u64,
    /// Total DRAM channel queuing delay.
    pub dram_queue_delay: Time,
}

impl ContentionSnapshot {
    /// Fraction of ring transactions that queued.
    pub fn ring_contention_ratio(&self) -> f64 {
        if self.ring_transactions == 0 {
            0.0
        } else {
            self.ring_contended as f64 / self.ring_transactions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = SocStats {
            cpu_l1_hits: 1,
            cpu_l2_hits: 2,
            cpu_llc_hits: 3,
            cpu_dram_accesses: 4,
            gpu_l3_hits: 5,
            gpu_llc_hits: 6,
            gpu_dram_accesses: 7,
            ..Default::default()
        };
        assert_eq!(s.cpu_accesses(), 10);
        assert_eq!(s.gpu_accesses(), 18);
        assert_eq!(s.total_accesses(), 28);
    }

    #[test]
    fn contention_ratio_handles_zero() {
        let c = ContentionSnapshot::default();
        assert_eq!(c.ring_contention_ratio(), 0.0);
        let c2 = ContentionSnapshot {
            ring_transactions: 10,
            ring_contended: 5,
            ..Default::default()
        };
        assert!((c2.ring_contention_ratio() - 0.5).abs() < 1e-12);
    }
}
