//! Property-based tests of the SoC substrate's core invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use soc_sim::address::{PhysAddr, VirtAddr, CACHE_LINE_SIZE};
use soc_sim::clock::{ClockDomain, Time};
use soc_sim::replacement::{ReplacementPolicy, TreePlruState};
use soc_sim::set_assoc::{CacheGeometry, Indexing, SetAssocCache};
use soc_sim::slice_hash::SliceHash;

proptest! {
    /// line_base never exceeds the address and always lands on a 64 B boundary.
    #[test]
    fn line_base_is_aligned_and_below(addr in any::<u64>()) {
        let a = PhysAddr::new(addr);
        let base = a.line_base();
        prop_assert!(base.value() <= addr);
        prop_assert_eq!(base.value() % CACHE_LINE_SIZE, 0);
        prop_assert!(addr - base.value() < CACHE_LINE_SIZE);
        prop_assert_eq!(base.line_number(), a.line_number());
    }

    /// Bit-range extraction composes with shifting.
    #[test]
    fn bits_extraction_matches_manual_shift(addr in any::<u64>(), lo in 0u32..60, width in 1u32..4) {
        let hi = lo + width;
        let a = VirtAddr::new(addr);
        let expected = (addr >> lo) & ((1u64 << width) - 1);
        prop_assert_eq!(a.bits(lo, hi), expected);
    }

    /// align_down / align_up bracket the original address.
    #[test]
    fn alignment_brackets_address(addr in 0u64..u64::MAX / 2, shift in 0u32..20) {
        let align = 1u64 << shift;
        let a = PhysAddr::new(addr);
        prop_assert!(a.align_down(align).value() <= addr);
        prop_assert!(a.align_up(align).value() >= addr);
        prop_assert!(a.align_up(align).value() - a.align_down(align).value() <= align);
    }

    /// Clock-domain cycle/time conversions roundtrip within one cycle.
    #[test]
    fn clock_roundtrip_is_tight(cycles in 0u64..1_000_000, ghz_tenths in 5u64..60) {
        let clock = ClockDomain::from_ghz("d", ghz_tenths as f64 / 10.0);
        let t = clock.cycles_to_time(cycles);
        let back = clock.time_to_cycles(t);
        prop_assert!((back as i64 - cycles as i64).abs() <= 1);
    }

    /// Time addition/subtraction are inverses and saturating_sub never panics.
    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = Time::from_ps(a);
        let tb = Time::from_ps(b);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(ta.saturating_sub(ta + tb), Time::ZERO);
        prop_assert_eq!(ta.max(tb).as_ps(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_ps(), a.min(b));
    }

    /// The Kaby Lake slice hash is linear over GF(2):
    /// slice(a ^ b) == slice(a) ^ slice(b).
    #[test]
    fn slice_hash_is_gf2_linear(a in any::<u64>(), b in any::<u64>()) {
        let h = SliceHash::kaby_lake_i7_7700k();
        let sa = h.slice_of(PhysAddr::new(a));
        let sb = h.slice_of(PhysAddr::new(b));
        let sab = h.slice_of(PhysAddr::new(a ^ b));
        prop_assert_eq!(sab, sa ^ sb);
    }

    /// Slice selection never depends on the byte-offset bits within a line.
    #[test]
    fn slice_hash_ignores_line_offset(a in any::<u64>(), offset in 0u64..CACHE_LINE_SIZE) {
        let h = SliceHash::kaby_lake_i7_7700k();
        let base = a & !(CACHE_LINE_SIZE - 1);
        prop_assert_eq!(
            h.slice_of(PhysAddr::new(base)),
            h.slice_of(PhysAddr::new(base + offset))
        );
    }

    /// Tree pLRU never evicts the most recently touched way.
    #[test]
    fn plru_never_evicts_mru(ways_log2 in 1u32..5, touches in proptest::collection::vec(any::<u16>(), 1..64)) {
        let ways = 1usize << ways_log2;
        let mut state = TreePlruState::new(ways);
        for t in touches {
            let way = t as usize % ways;
            state.touch(way);
            prop_assert_ne!(state.victim(), way);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A set-associative cache never holds more lines than its capacity, and
    /// every line it reports as resident was actually inserted.
    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        addrs in proptest::collection::vec(0u64..0x10_0000, 1..200),
        ways in 1usize..8,
    ) {
        let geometry = CacheGeometry {
            sets: 16,
            ways,
            policy: ReplacementPolicy::Lru,
            indexing: Indexing::LowOrder,
        };
        let mut cache = SetAssocCache::new(geometry);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut inserted = std::collections::HashSet::new();
        for a in &addrs {
            let line = PhysAddr::new(*a).line_base();
            cache.fill(line, &mut rng);
            inserted.insert(line);
        }
        prop_assert!(cache.occupancy() <= 16 * ways);
        prop_assert!(cache.occupancy() <= inserted.len());
        for set in 0..16 {
            for line in cache.resident_lines(set) {
                prop_assert!(inserted.contains(&line), "resident line was never inserted");
                prop_assert_eq!(cache.set_index(line), set);
            }
        }
    }

    /// After filling a line it is resident until it is invalidated or evicted
    /// by a conflicting fill; invalidation always removes it.
    #[test]
    fn fill_then_invalidate_roundtrip(addr in 0u64..0x1000_0000) {
        let mut cache = SetAssocCache::new(CacheGeometry {
            sets: 64,
            ways: 4,
            policy: ReplacementPolicy::TreePlru,
            indexing: Indexing::LowOrder,
        });
        let mut rng = SmallRng::seed_from_u64(2);
        let line = PhysAddr::new(addr).line_base();
        cache.fill(line, &mut rng);
        prop_assert!(cache.contains(line));
        prop_assert!(cache.invalidate(line));
        prop_assert!(!cache.contains(line));
        prop_assert!(!cache.invalidate(line));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Page-table translations preserve the in-page offset and are stable.
    #[test]
    fn translation_preserves_page_offset(offsets in proptest::collection::vec(0u64..32 * 4096, 1..20)) {
        use soc_sim::page_table::PageKind;
        use soc_sim::prelude::{Soc, SocConfig};
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, 32 * 4096, PageKind::Small).unwrap();
        for off in offsets {
            let va = buf.at(off);
            let pa = space.translate(va).unwrap();
            prop_assert_eq!(pa.value() % 4096, va.value() % 4096);
            prop_assert_eq!(space.translate(va), Some(pa), "translation must be stable");
        }
    }

    /// The LLC routes every address to a valid (slice, set) pair, identically
    /// for every byte of the same line.
    #[test]
    fn llc_set_mapping_is_line_granular(addr in 0u64..0x2_0000_0000u64) {
        use soc_sim::llc::{Llc, LlcConfig};
        let llc = Llc::new(LlcConfig::kaby_lake_i7_7700k());
        let a = PhysAddr::new(addr);
        let id = llc.set_of(a);
        prop_assert!(id.slice < 4);
        prop_assert!(id.set < 2048);
        prop_assert_eq!(llc.set_of(a.line_base()), id);
    }

    /// The Ice Lake-class 8-slice hash distributes line-aligned addresses
    /// uniformly: over any contiguous window of 8192 lines, every one of the
    /// eight slices receives a population close to the ideal 1/8 share.
    #[test]
    fn icelake_8slice_hash_distributes_uniformly(start in 0u64..0x10_0000_0000u64) {
        let hash = SliceHash::icelake_8slice();
        prop_assert_eq!(hash.slice_count(), 8);
        let lines = 8192u64;
        let mut counts = [0usize; 8];
        let base = PhysAddr::new(start).line_base().value();
        for i in 0..lines {
            counts[hash.slice_of(PhysAddr::new(base + i * CACHE_LINE_SIZE))] += 1;
        }
        let ideal = (lines / 8) as isize;
        for (slice, &count) in counts.iter().enumerate() {
            let deviation = (count as isize - ideal).abs();
            // 3/4 .. 5/4 of the ideal share: loose enough for XOR-parity
            // striping patterns, tight enough to catch a degenerate mask.
            prop_assert!(
                deviation <= ideal / 4,
                "slice {} holds {} of {} lines (ideal {})",
                slice, count, lines, ideal
            );
        }
    }

    /// A recorded random access mix replays bit-for-bit: same outcomes, same
    /// latencies, same hit levels (the regression-grade reproducibility the
    /// trace backend exists for).
    #[test]
    fn trace_record_replay_reproduces_outcomes(
        ops in proptest::collection::vec(0u64..0x300_0000, 1..60),
        seed in 0u64..1024,
    ) {
        use soc_sim::prelude::{MemorySystem, Soc, SocConfig, TraceRecorder};
        // Each sample packs (operation, address): the low bits address a
        // line, the value mod 3 picks CPU load / GPU load / clflush.
        let config = SocConfig::kaby_lake_i7_7700k().with_seed(seed);
        let mut rec = TraceRecorder::new(Soc::new(config));
        let mut recorded = Vec::new();
        let mut now = Time::ZERO;
        for &sample in &ops {
            let a = PhysAddr::new(sample & 0xFF_FFC0);
            let out = match sample % 3 {
                0 => rec.cpu_access((sample % 4) as usize, a, now),
                1 => rec.gpu_access(a, now),
                _ => {
                    let _ = rec.clflush(a, now);
                    continue;
                }
            };
            now += out.latency;
            recorded.push(out);
        }
        let (_, trace) = rec.into_parts();
        let mut rep = trace.into_replayer();
        let mut replayed = Vec::new();
        let mut now = Time::ZERO;
        for &sample in &ops {
            let a = PhysAddr::new(sample & 0xFF_FFC0);
            let out = match sample % 3 {
                0 => rep.cpu_access((sample % 4) as usize, a, now),
                1 => rep.gpu_access(a, now),
                _ => {
                    let _ = rep.clflush(a, now);
                    continue;
                }
            };
            now += out.latency;
            replayed.push(out);
        }
        prop_assert_eq!(recorded, replayed);
        prop_assert!(rep.is_exhausted());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Percentile estimates from the log-scale telemetry histogram stay
    /// inside the observed `[min, max]` range, are monotone in `p`, and land
    /// within the factor-of-two band the bucket geometry promises (for
    /// positive samples the bucket midpoint is within `[0.75, 1.5]x` of any
    /// value sharing the bucket).
    #[test]
    fn telemetry_percentiles_are_bounded_monotone_and_log_accurate(
        samples in proptest::collection::vec(1u64..u32::MAX as u64, 1..200),
    ) {
        use soc_sim::telemetry::Registry;
        let registry = Registry::new();
        let hist = registry.histogram("prop.latency");
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(snap.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(snap.max(), *samples.iter().max().unwrap());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut previous = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let estimate = snap.percentile(p);
            prop_assert!(estimate >= snap.min() as f64);
            prop_assert!(estimate <= snap.max() as f64);
            prop_assert!(estimate >= previous, "percentile must be monotone in p");
            previous = estimate;
            // The exact order statistic at the same rank semantics.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1] as f64;
            prop_assert!(
                estimate >= exact / 2.0 && estimate <= exact * 2.0,
                "p{p}: estimate {estimate} outside the factor-2 band of {exact}"
            );
        }
    }

    /// Merging per-registry snapshots is exactly equivalent to recording
    /// every sample into one shared histogram — the property the sweep
    /// relies on when it folds per-point registries into one document —
    /// and the empty snapshot is the merge identity.
    #[test]
    fn telemetry_histogram_merge_equals_single_recording(
        // Bounded so the 240-sample total stays far below u64::MAX: the
        // merge saturates its sum while the live histogram wraps, and the
        // equivalence only holds while neither overflows.
        left in proptest::collection::vec(0u64..u64::MAX / 512, 0..120),
        right in proptest::collection::vec(0u64..u64::MAX / 512, 0..120),
    ) {
        use soc_sim::telemetry::{HistogramSnapshot, Registry};
        let record_all = |values: &[u64]| {
            let registry = Registry::new();
            let hist = registry.histogram("prop.merge");
            for &v in values {
                hist.record(v);
            }
            hist.snapshot()
        };
        let mut merged = record_all(&left);
        merged.merge(&record_all(&right));
        let combined: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        prop_assert_eq!(&merged, &record_all(&combined));

        let mut identity = HistogramSnapshot::empty();
        identity.merge(&merged);
        prop_assert_eq!(&identity, &merged);
        let mut identity_right = merged.clone();
        identity_right.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&identity_right, &merged);
    }
}

/// An identical single-stream workload sees a *higher* DRAM latency on the
/// DDR5 backend (worse first-word latency), while a bursty parallel GPU
/// workload sees a *lower* total latency (halved channel occupancy) — the
/// latency/bandwidth trade [`soc_sim::dram::Ddr5`] models.
#[test]
fn ddr5_orders_against_ddr4_at_the_system_level() {
    use soc_sim::prelude::{BackendRegistry, DramTiming, DramTimingKind, HitLevel, MemorySystem};
    let registry = BackendRegistry::standard();
    let mut ddr4 = registry.get("kabylake-gen9").unwrap().build(1);
    let mut ddr5 = registry.get("kabylake-ddr5").unwrap().build(1);
    assert_eq!(ddr4.config().dram, DramTimingKind::Ddr4);
    assert_eq!(ddr5.config().dram, DramTimingKind::Ddr5);
    assert!(DramTimingKind::Ddr5.base_latency() > DramTimingKind::Ddr4.base_latency());

    // Single cold access: DDR5's longer idle latency dominates. Noise is on
    // (quiet preset) but identical seeds give identical jitter streams.
    let a = PhysAddr::new(0x123_4000);
    let cold4 = ddr4.cpu_access(0, a, Time::ZERO);
    let cold5 = ddr5.cpu_access(0, a, Time::ZERO);
    assert_eq!(cold4.level, HitLevel::Dram);
    assert_eq!(cold5.level, HitLevel::Dram);
    assert!(
        cold5.latency > cold4.latency,
        "cold DRAM access: DDR5 {} must exceed DDR4 {}",
        cold5.latency,
        cold4.latency
    );

    // A 64-line parallel GPU burst of cold lines: every access queues on the
    // memory channel, so DDR5's halved occupancy wins overall.
    let burst: Vec<PhysAddr> = (0..64u64)
        .map(|i| PhysAddr::new(0x4000_0000 + i * CACHE_LINE_SIZE))
        .collect();
    let burst4 = ddr4.gpu_access_parallel(&burst, 16, Time::from_us(10));
    let burst5 = ddr5.gpu_access_parallel(&burst, 16, Time::from_us(10));
    assert!(
        burst5.total_latency < burst4.total_latency,
        "cold burst: DDR5 {} must beat DDR4 {}",
        burst5.total_latency,
        burst4.total_latency
    );
}
