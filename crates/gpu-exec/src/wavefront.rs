//! Wavefront (SIMD thread group) modelling.
//!
//! Threads of a work-group execute in SIMD lock-step groups ("wavefronts",
//! warps in NVIDIA terminology). Two properties matter for the attack:
//!
//! * **Branch divergence serialises execution** within a wavefront, so the
//!   paper starts its counter threads at a wavefront boundary: the timing
//!   threads (IDs 0–15) and the counter threads (IDs ≥ 32) must not share a
//!   wavefront or the counter would stall while the timed loads execute
//!   (Section III-B).
//! * Thread IDs map to wavefronts contiguously: wavefront `k` holds threads
//!   `[k * W, (k + 1) * W)`.

use crate::topology::GpuTopology;
use std::ops::Range;

/// The role a thread plays in the paper's attack kernel (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadRole {
    /// Threads 0..16: perform the timed memory accesses (one per LLC way).
    Access,
    /// Threads in the first wavefront but above the access group: idle
    /// (they only exist to pad the wavefront).
    Idle,
    /// Threads from the second wavefront onwards: increment the SLM counter.
    Counter,
}

/// Partition of a work-group into wavefronts and roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkGroupShape {
    /// Total threads in the work-group.
    pub size: usize,
    /// Wavefront width.
    pub wavefront_width: usize,
    /// Number of access (attack) threads.
    pub access_threads: usize,
}

impl WorkGroupShape {
    /// The paper's configuration: 256-thread work-group, SIMD-32 wavefronts,
    /// 16 access threads (one per LLC way) and 224 counter threads.
    pub fn paper_default(topology: &GpuTopology) -> Self {
        WorkGroupShape {
            size: topology.max_workgroup_size,
            wavefront_width: topology.wavefront_width,
            access_threads: 16,
        }
    }

    /// Creates a shape, validating the constraints the attack relies on.
    ///
    /// # Panics
    ///
    /// Panics if the access threads do not fit in the first wavefront, or if
    /// the work-group has fewer than two wavefronts (no room for counters).
    pub fn new(size: usize, wavefront_width: usize, access_threads: usize) -> Self {
        assert!(
            access_threads <= wavefront_width,
            "access threads must fit in the first wavefront"
        );
        assert!(
            size >= 2 * wavefront_width,
            "need at least two wavefronts: one for access, one for counters"
        );
        WorkGroupShape {
            size,
            wavefront_width,
            access_threads,
        }
    }

    /// Number of wavefronts.
    pub fn wavefront_count(&self) -> usize {
        self.size.div_ceil(self.wavefront_width)
    }

    /// Thread-ID range of wavefront `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn wavefront_threads(&self, k: usize) -> Range<usize> {
        assert!(k < self.wavefront_count(), "wavefront index out of range");
        let start = k * self.wavefront_width;
        start..(start + self.wavefront_width).min(self.size)
    }

    /// Number of counter threads (all threads from the second wavefront on).
    pub fn counter_threads(&self) -> usize {
        self.size - self.wavefront_width
    }

    /// Role of the thread with the given local ID.
    ///
    /// # Panics
    ///
    /// Panics if `thread_id >= size`.
    pub fn role_of(&self, thread_id: usize) -> ThreadRole {
        assert!(thread_id < self.size, "thread id out of range");
        if thread_id < self.access_threads {
            ThreadRole::Access
        } else if thread_id < self.wavefront_width {
            ThreadRole::Idle
        } else {
            ThreadRole::Counter
        }
    }

    /// Returns `true` when the access threads and the counter threads never
    /// share a wavefront — the divergence-safety property the timer needs.
    pub fn counter_is_divergence_safe(&self) -> bool {
        // Counter threads start exactly at the second wavefront boundary.
        self.access_threads <= self.wavefront_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_shape() -> WorkGroupShape {
        WorkGroupShape::paper_default(&GpuTopology::gen9_gt2())
    }

    #[test]
    fn paper_shape_matches_section_iii_b() {
        let s = paper_shape();
        assert_eq!(s.size, 256);
        assert_eq!(s.access_threads, 16);
        assert_eq!(s.counter_threads(), 224);
        assert_eq!(s.wavefront_count(), 8);
        assert!(s.counter_is_divergence_safe());
    }

    #[test]
    fn roles_follow_thread_ids() {
        let s = paper_shape();
        assert_eq!(s.role_of(0), ThreadRole::Access);
        assert_eq!(s.role_of(15), ThreadRole::Access);
        assert_eq!(s.role_of(16), ThreadRole::Idle);
        assert_eq!(s.role_of(31), ThreadRole::Idle);
        assert_eq!(s.role_of(32), ThreadRole::Counter);
        assert_eq!(s.role_of(255), ThreadRole::Counter);
    }

    #[test]
    fn wavefront_ranges_tile_the_workgroup() {
        let s = paper_shape();
        let mut covered = 0;
        for k in 0..s.wavefront_count() {
            let r = s.wavefront_threads(k);
            assert_eq!(r.len(), 32);
            covered += r.len();
        }
        assert_eq!(covered, 256);
        assert_eq!(s.wavefront_threads(1), 32..64);
    }

    #[test]
    #[should_panic(expected = "fit in the first wavefront")]
    fn too_many_access_threads_panics() {
        WorkGroupShape::new(256, 32, 33);
    }

    #[test]
    #[should_panic(expected = "at least two wavefronts")]
    fn single_wavefront_workgroup_panics() {
        WorkGroupShape::new(32, 32, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wavefront_index_out_of_range_panics() {
        paper_shape().wavefront_threads(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_id_out_of_range_panics() {
        paper_shape().role_of(256);
    }
}
