//! iGPU compute topology: EUs, subslices and slices.
//!
//! On Gen9 a *subslice* groups 8 execution units (EUs) and owns a thread
//! dispatcher, a sampler and a port into the L3; three subslices make a
//! *slice*, which adds the L3/SLM complex (Figure 2 of the paper). Work-groups
//! are dispatched to subslices round-robin, which is why the paper can pin its
//! single attack work-group to one subslice and its SLM.

/// Execution unit identifier within a subslice.
pub type EuId = usize;

/// Static description of the GPU compute topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuTopology {
    /// Number of slices.
    pub slices: usize,
    /// Subslices per slice.
    pub subslices_per_slice: usize,
    /// EUs per subslice.
    pub eus_per_subslice: usize,
    /// Hardware threads per EU.
    pub threads_per_eu: usize,
    /// SIMD width of a wavefront for the attack kernel (the paper's kernels
    /// compile to SIMD-32).
    pub wavefront_width: usize,
    /// Maximum work-group size (256 on Gen9 for the paper's kernel).
    pub max_workgroup_size: usize,
}

impl GpuTopology {
    /// Gen9 GT2 (HD Graphics 630, the paper's part): 1 slice, 3 subslices,
    /// 8 EUs each, 7 threads per EU, SIMD-32 wavefronts, 256-thread
    /// work-groups.
    pub fn gen9_gt2() -> Self {
        GpuTopology {
            slices: 1,
            subslices_per_slice: 3,
            eus_per_subslice: 8,
            threads_per_eu: 7,
            wavefront_width: 32,
            max_workgroup_size: 256,
        }
    }

    /// Total number of subslices.
    pub fn subslice_count(&self) -> usize {
        self.slices * self.subslices_per_slice
    }

    /// Total number of EUs.
    pub fn eu_count(&self) -> usize {
        self.subslice_count() * self.eus_per_subslice
    }

    /// Total number of hardware threads.
    pub fn hardware_thread_count(&self) -> usize {
        self.eu_count() * self.threads_per_eu
    }

    /// Number of wavefronts a work-group of `size` threads occupies.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds [`GpuTopology::max_workgroup_size`].
    pub fn wavefronts_per_workgroup(&self, size: usize) -> usize {
        assert!(size > 0, "work-group size must be non-zero");
        assert!(
            size <= self.max_workgroup_size,
            "work-group size {size} exceeds the device maximum {}",
            self.max_workgroup_size
        );
        size.div_ceil(self.wavefront_width)
    }
}

impl Default for GpuTopology {
    fn default() -> Self {
        Self::gen9_gt2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen9_gt2_has_24_eus() {
        let t = GpuTopology::gen9_gt2();
        assert_eq!(t.subslice_count(), 3);
        assert_eq!(t.eu_count(), 24);
        assert_eq!(t.hardware_thread_count(), 168);
    }

    #[test]
    fn wavefront_counting_rounds_up() {
        let t = GpuTopology::gen9_gt2();
        assert_eq!(t.wavefronts_per_workgroup(32), 1);
        assert_eq!(t.wavefronts_per_workgroup(33), 2);
        assert_eq!(t.wavefronts_per_workgroup(256), 8);
        assert_eq!(t.wavefronts_per_workgroup(1), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the device maximum")]
    fn oversized_workgroup_panics() {
        GpuTopology::gen9_gt2().wavefronts_per_workgroup(257);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_workgroup_panics() {
        GpuTopology::gen9_gt2().wavefronts_per_workgroup(0);
    }
}
