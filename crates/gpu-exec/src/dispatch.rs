//! Work-group dispatch.
//!
//! The paper observes experimentally that the global thread dispatcher places
//! consecutive work-groups on subslices in round-robin order, and that within
//! a subslice the wavefronts of a work-group are likewise issued to EUs round
//! robin (Section II-A). The contention channel varies the number of
//! work-groups, so the dispatcher also tracks per-subslice occupancy and the
//! resulting loss of memory-level parallelism when subslices are
//! oversubscribed.

use crate::topology::GpuTopology;

/// A dispatched work-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkGroupPlacement {
    /// Work-group index within the kernel launch.
    pub workgroup: usize,
    /// Subslice the work-group was assigned to.
    pub subslice: usize,
    /// Number of work-groups already resident on that subslice (0 = first).
    pub slot: usize,
}

/// Round-robin work-group dispatcher.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    topology: GpuTopology,
    next_subslice: usize,
    per_subslice: Vec<usize>,
}

impl Dispatcher {
    /// Creates a dispatcher for the given topology.
    pub fn new(topology: GpuTopology) -> Self {
        let subslices = topology.subslice_count();
        Dispatcher {
            topology,
            next_subslice: 0,
            per_subslice: vec![0; subslices],
        }
    }

    /// Topology this dispatcher manages.
    pub fn topology(&self) -> &GpuTopology {
        &self.topology
    }

    /// Dispatches one work-group, returning its placement.
    pub fn dispatch_one(&mut self, workgroup: usize) -> WorkGroupPlacement {
        let subslice = self.next_subslice;
        self.next_subslice = (self.next_subslice + 1) % self.per_subslice.len();
        let slot = self.per_subslice[subslice];
        self.per_subslice[subslice] += 1;
        WorkGroupPlacement {
            workgroup,
            subslice,
            slot,
        }
    }

    /// Dispatches `count` work-groups and returns their placements in launch
    /// order.
    pub fn dispatch(&mut self, count: usize) -> Vec<WorkGroupPlacement> {
        (0..count).map(|wg| self.dispatch_one(wg)).collect()
    }

    /// Number of work-groups currently resident on each subslice.
    pub fn occupancy(&self) -> &[usize] {
        &self.per_subslice
    }

    /// The maximum number of work-groups sharing any single subslice — the
    /// oversubscription factor that throttles per-work-group memory
    /// parallelism in the contention channel's model.
    pub fn max_oversubscription(&self) -> usize {
        self.per_subslice.iter().copied().max().unwrap_or(0).max(1)
    }

    /// Clears all placements (new kernel launch).
    pub fn reset(&mut self) {
        self.next_subslice = 0;
        self.per_subslice.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_round_robin() {
        let mut d = Dispatcher::new(GpuTopology::gen9_gt2());
        let placements = d.dispatch(6);
        let subslices: Vec<usize> = placements.iter().map(|p| p.subslice).collect();
        assert_eq!(subslices, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(placements[3].slot, 1, "second round lands in slot 1");
        assert_eq!(d.occupancy(), &[2, 2, 2]);
    }

    #[test]
    fn single_workgroup_occupies_one_subslice() {
        let mut d = Dispatcher::new(GpuTopology::gen9_gt2());
        d.dispatch(1);
        assert_eq!(d.occupancy(), &[1, 0, 0]);
        assert_eq!(d.max_oversubscription(), 1);
    }

    #[test]
    fn oversubscription_grows_past_subslice_count() {
        let mut d = Dispatcher::new(GpuTopology::gen9_gt2());
        d.dispatch(8);
        assert_eq!(d.max_oversubscription(), 3);
        assert_eq!(d.occupancy().iter().sum::<usize>(), 8);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Dispatcher::new(GpuTopology::gen9_gt2());
        d.dispatch(5);
        d.reset();
        assert_eq!(d.occupancy(), &[0, 0, 0]);
        assert_eq!(d.max_oversubscription(), 1);
        assert_eq!(d.dispatch_one(0).subslice, 0);
    }

    #[test]
    fn empty_dispatcher_reports_unit_oversubscription() {
        let d = Dispatcher::new(GpuTopology::gen9_gt2());
        assert_eq!(d.max_oversubscription(), 1);
        assert_eq!(d.topology().subslice_count(), 3);
    }
}
