//! The GPU-side "process": a launched OpenCL-style kernel.
//!
//! [`GpuKernel`] models the attack kernel after it has been dispatched to the
//! device: it knows its work-group shape, where its work-groups landed
//! (round-robin over subslices), owns the GPU-local notion of time and the
//! custom SLM counter timer, and issues loads to the SoC with the
//! memory-level parallelism its thread configuration allows.

use crate::dispatch::{Dispatcher, WorkGroupPlacement};
use crate::timer::CounterTimer;
use crate::topology::GpuTopology;
use crate::wavefront::WorkGroupShape;
use soc_sim::clock::{ClockDomain, Time};
use soc_sim::page_table::AddressSpace;
use soc_sim::prelude::{AccessOutcome, MemorySystem, ParallelOutcome, PhysAddr, VirtAddr};

/// Errors from GPU-side operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// A virtual address had no mapping in the (SVM-shared) page table.
    UnmappedAddress(VirtAddr),
    /// The kernel was launched without SVM sharing but asked to translate a
    /// virtual address.
    AddressSpaceNotShared,
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::UnmappedAddress(va) => write!(f, "unmapped virtual address {va}"),
            GpuError::AddressSpaceNotShared => {
                write!(f, "address space is not shared with the GPU (missing SVM)")
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Per-subslice limit on outstanding memory requests (models the load/store
/// pipeline depth that caps memory-level parallelism).
const MLP_PER_SUBSLICE: usize = 16;

/// A kernel resident on the GPU.
#[derive(Debug, Clone)]
pub struct GpuKernel {
    topology: GpuTopology,
    shape: WorkGroupShape,
    placements: Vec<WorkGroupPlacement>,
    clock: ClockDomain,
    local_time: Time,
    timer: CounterTimer,
}

impl GpuKernel {
    /// Launches a kernel of `workgroups` work-groups with the given shape on
    /// a Gen9 device clocked at 1.1 GHz.
    ///
    /// # Panics
    ///
    /// Panics if `workgroups` is zero.
    pub fn launch(topology: GpuTopology, shape: WorkGroupShape, workgroups: usize) -> Self {
        assert!(
            workgroups > 0,
            "a kernel launch needs at least one work-group"
        );
        let mut dispatcher = Dispatcher::new(topology);
        let placements = dispatcher.dispatch(workgroups);
        let timer = CounterTimer::new(shape.clone(), Time::from_ns(18));
        GpuKernel {
            topology,
            shape,
            placements,
            clock: ClockDomain::from_ghz("gpu", 1.1),
            local_time: Time::ZERO,
            timer,
        }
    }

    /// Launches the paper's single-work-group attack kernel (256 threads: 16
    /// access + 224 counter).
    pub fn launch_attack_kernel() -> Self {
        let topology = GpuTopology::gen9_gt2();
        let shape = WorkGroupShape::paper_default(&topology);
        GpuKernel::launch(topology, shape, 1)
    }

    /// Device topology.
    pub fn topology(&self) -> &GpuTopology {
        &self.topology
    }

    /// Work-group shape.
    pub fn shape(&self) -> &WorkGroupShape {
        &self.shape
    }

    /// Work-group placements chosen by the dispatcher.
    pub fn placements(&self) -> &[WorkGroupPlacement] {
        &self.placements
    }

    /// Number of work-groups.
    pub fn workgroups(&self) -> usize {
        self.placements.len()
    }

    /// The custom SLM counter timer.
    pub fn timer(&self) -> &CounterTimer {
        &self.timer
    }

    /// GPU clock domain.
    pub fn clock(&self) -> &ClockDomain {
        &self.clock
    }

    /// Current GPU-local time.
    pub fn now(&self) -> Time {
        self.local_time
    }

    /// Advances local time (models compute work or a deliberate delay loop).
    pub fn advance(&mut self, delta: Time) {
        self.local_time += delta;
    }

    /// Moves local time forward to `t` if it is in the future (barrier /
    /// handshake synchronization).
    pub fn synchronize_to(&mut self, t: Time) {
        self.local_time = self.local_time.max(t);
    }

    /// Effective memory-level parallelism of this launch: the access threads
    /// of each work-group can keep `MLP_PER_SUBSLICE` requests in flight per
    /// occupied subslice, and work-groups stacked on the same subslice share
    /// that budget.
    pub fn effective_parallelism(&self) -> usize {
        let mut per_subslice = vec![0usize; self.topology.subslice_count()];
        for p in &self.placements {
            per_subslice[p.subslice] += 1;
        }
        let occupied = per_subslice.iter().filter(|&&c| c > 0).count().max(1);
        let threads = self.shape.access_threads * self.workgroups();
        threads.min(occupied * MLP_PER_SUBSLICE).max(1)
    }

    /// Translates a virtual address through an SVM-shared address space.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::AddressSpaceNotShared`] when the space was never
    /// shared with the GPU, and [`GpuError::UnmappedAddress`] for unmapped
    /// addresses.
    pub fn translate(&self, space: &AddressSpace, va: VirtAddr) -> Result<PhysAddr, GpuError> {
        if !space.is_gpu_shared() {
            return Err(GpuError::AddressSpaceNotShared);
        }
        space.translate(va).ok_or(GpuError::UnmappedAddress(va))
    }

    /// Performs a single load from the GPU, advancing local time.
    pub fn load<M: MemorySystem>(&mut self, soc: &mut M, paddr: PhysAddr) -> AccessOutcome {
        let outcome = soc.gpu_access(paddr, self.local_time);
        self.local_time += outcome.latency;
        outcome
    }

    /// Loads a batch of lines using the launch's effective memory-level
    /// parallelism (the paper probes all 16 ways of an LLC set in parallel
    /// with 16 threads). Advances local time by the batch latency.
    pub fn parallel_load<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        addrs: &[PhysAddr],
    ) -> ParallelOutcome {
        let parallelism = self.effective_parallelism();
        self.parallel_load_with(soc, addrs, parallelism)
    }

    /// Loads a batch of lines with an explicit thread count, for callers that
    /// dedicate more of the work-group's threads to the access phase (e.g.
    /// probing several redundant LLC sets concurrently). The count is capped
    /// at the work-group's total thread budget.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn parallel_load_with<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        addrs: &[PhysAddr],
        parallelism: usize,
    ) -> ParallelOutcome {
        assert!(parallelism > 0, "parallelism must be at least 1");
        let budget = self.shape.size * self.workgroups();
        let outcome = soc.gpu_access_parallel(addrs, parallelism.min(budget), self.local_time);
        self.local_time += outcome.total_latency;
        outcome
    }

    /// Loads a batch of lines and measures the elapsed custom-timer ticks,
    /// as Algorithm 1 does around its timed accesses.
    pub fn timed_parallel_load<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        addrs: &[PhysAddr],
    ) -> (u64, ParallelOutcome) {
        let noise = soc.timer_noise_factor();
        let start_ticks = self.timer.read(self.local_time, noise);
        let outcome = self.parallel_load(soc, addrs);
        let end_ticks = self.timer.read(self.local_time, noise);
        (end_ticks.saturating_sub(start_ticks), outcome)
    }

    /// Loads a single line and measures the elapsed custom-timer ticks.
    pub fn timed_load<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        paddr: PhysAddr,
    ) -> (u64, AccessOutcome) {
        let noise = soc.timer_noise_factor();
        let start_ticks = self.timer.read(self.local_time, noise);
        let outcome = self.load(soc, paddr);
        let end_ticks = self.timer.read(self.local_time, noise);
        (end_ticks.saturating_sub(start_ticks), outcome)
    }

    /// Restarts the custom timer at the current local time.
    pub fn restart_timer(&mut self) {
        let now = self.local_time;
        self.timer.restart(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{HitLevel, PageKind, Soc, SocConfig};

    fn soc() -> Soc {
        Soc::new(SocConfig::kaby_lake_noiseless())
    }

    #[test]
    fn attack_kernel_launch_matches_paper_configuration() {
        let k = GpuKernel::launch_attack_kernel();
        assert_eq!(k.workgroups(), 1);
        assert_eq!(k.shape().access_threads, 16);
        assert_eq!(k.shape().counter_threads(), 224);
        assert_eq!(k.placements()[0].subslice, 0);
        assert_eq!(k.effective_parallelism(), 16);
        assert!(
            k.clock().frequency_ghz() < 2.0,
            "GPU clock is slower than the CPU"
        );
    }

    #[test]
    fn effective_parallelism_grows_with_workgroups_until_saturation() {
        let topology = GpuTopology::gen9_gt2();
        let shape = WorkGroupShape::paper_default(&topology);
        let one = GpuKernel::launch(topology, shape.clone(), 1).effective_parallelism();
        let two = GpuKernel::launch(topology, shape.clone(), 2).effective_parallelism();
        let three = GpuKernel::launch(topology, shape.clone(), 3).effective_parallelism();
        let eight = GpuKernel::launch(topology, shape, 8).effective_parallelism();
        assert!(two > one);
        assert!(three >= two);
        // Past 3 work-groups every subslice is occupied; parallelism saturates.
        assert_eq!(eight, three);
    }

    #[test]
    fn load_advances_gpu_time_and_fills_l3() {
        let mut soc = soc();
        let mut k = GpuKernel::launch_attack_kernel();
        let a = PhysAddr::new(0x7000);
        let cold = k.load(&mut soc, a);
        assert_eq!(cold.level, HitLevel::Dram);
        assert_eq!(k.now(), cold.latency);
        let warm = k.load(&mut soc, a);
        assert_eq!(warm.level, HitLevel::GpuL3);
    }

    #[test]
    fn timed_load_distinguishes_l3_from_dram() {
        let mut soc = soc();
        let mut k = GpuKernel::launch_attack_kernel();
        let a = PhysAddr::new(0x9000);
        let (dram_ticks, _) = k.timed_load(&mut soc, a);
        let (l3_ticks, out) = k.timed_load(&mut soc, a);
        assert_eq!(out.level, HitLevel::GpuL3);
        assert!(
            dram_ticks > l3_ticks,
            "DRAM {dram_ticks} ticks vs L3 {l3_ticks} ticks"
        );
    }

    #[test]
    fn parallel_load_uses_thread_level_parallelism() {
        let mut soc = soc();
        let mut k = GpuKernel::launch_attack_kernel();
        let addrs: Vec<PhysAddr> = (0..16).map(|i| PhysAddr::new(0x20_0000 + i * 64)).collect();
        // Warm everything into the L3.
        k.parallel_load(&mut soc, &addrs);
        let before = k.now();
        let outcome = k.parallel_load(&mut soc, &addrs);
        assert_eq!(outcome.count_at_level(HitLevel::GpuL3), 16);
        // 16 L3 hits in parallel should cost close to one L3 hit, not 16.
        let elapsed = k.now() - before;
        assert!(
            elapsed < Time::from_ns(90 * 4),
            "parallel probe too slow: {elapsed}"
        );
    }

    #[test]
    fn translate_requires_svm_sharing() {
        let mut soc = soc();
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, 4096, PageKind::Small).unwrap();
        let k = GpuKernel::launch_attack_kernel();
        assert_eq!(
            k.translate(&space, buf.base).unwrap_err(),
            GpuError::AddressSpaceNotShared
        );
        space.share_with_gpu();
        let pa = k.translate(&space, buf.base).unwrap();
        assert_eq!(pa, space.translate(buf.base).unwrap());
        let err = k.translate(&space, VirtAddr::new(0x1)).unwrap_err();
        assert!(matches!(err, GpuError::UnmappedAddress(_)));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn timer_restart_zeroes_measurement_origin() {
        let mut k = GpuKernel::launch_attack_kernel();
        k.advance(Time::from_us(100));
        k.restart_timer();
        assert_eq!(k.timer().read(k.now(), 1.0), 0);
        k.advance(Time::from_ns(260));
        assert!(k.timer().read(k.now(), 1.0) >= 90);
    }

    #[test]
    fn synchronize_never_moves_backwards() {
        let mut k = GpuKernel::launch_attack_kernel();
        k.advance(Time::from_us(3));
        k.synchronize_to(Time::from_us(1));
        assert_eq!(k.now(), Time::from_us(3));
        k.synchronize_to(Time::from_us(9));
        assert_eq!(k.now(), Time::from_us(9));
    }

    #[test]
    #[should_panic(expected = "at least one work-group")]
    fn zero_workgroup_launch_panics() {
        let topology = GpuTopology::gen9_gt2();
        let shape = WorkGroupShape::paper_default(&topology);
        let _ = GpuKernel::launch(topology, shape, 0);
    }
}
