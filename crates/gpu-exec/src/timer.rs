//! The paper's custom GPU timer (Section III-B, Algorithm 1).
//!
//! OpenCL on the integrated GPU exposes no user-level high-resolution clock,
//! so the attack builds one: most threads of the work-group (all wavefronts
//! after the first, 224 threads in the paper's configuration) spin on
//! `atomic_add(&counter, 1)` against a word in shared local memory, while the
//! 16 access threads read the counter before and after a memory access. The
//! counter value difference is the "time" measurement.
//!
//! The model captures the two properties the attack depends on:
//!
//! * the counter advances at a rate proportional to the number of counter
//!   threads (more threads → finer resolution, which is why a single counter
//!   wavefront is not enough to separate the cache levels);
//! * because SLM sits on its own data path, the rate is independent of the
//!   memory traffic being timed, but it does wobble with scheduling noise
//!   (modelled by the SoC noise model's timer factor).

use crate::wavefront::WorkGroupShape;
use soc_sim::clock::Time;

/// The software counter timer running inside one work-group.
#[derive(Debug, Clone)]
pub struct CounterTimer {
    shape: WorkGroupShape,
    /// Mean counter increments per nanosecond.
    rate_ticks_per_ns: f64,
    /// Local GPU time at which the counter was (re)started.
    started_at: Time,
}

impl CounterTimer {
    /// Builds a timer for a work-group of the given shape, on a device whose
    /// SLM atomic latency is `slm_atomic_latency`.
    ///
    /// The increment rate model: each counter thread retires one atomic every
    /// `slm_atomic_latency * wavefront_width` (the EU interleaves the other
    /// lanes of its wavefront and the atomics to a single SLM word partially
    /// serialise), so the aggregate rate grows linearly with the number of
    /// counter threads.
    pub fn new(shape: WorkGroupShape, slm_atomic_latency: Time) -> Self {
        let per_thread_period_ns = slm_atomic_latency.as_ns_f64() * shape.wavefront_width as f64;
        let rate = shape.counter_threads() as f64 / per_thread_period_ns;
        CounterTimer {
            shape,
            rate_ticks_per_ns: rate,
            started_at: Time::ZERO,
        }
    }

    /// The work-group shape driving this timer.
    pub fn shape(&self) -> &WorkGroupShape {
        &self.shape
    }

    /// Mean counter increments per nanosecond.
    pub fn rate_ticks_per_ns(&self) -> f64 {
        self.rate_ticks_per_ns
    }

    /// Timer resolution: nanoseconds represented by a single counter tick.
    pub fn resolution_ns(&self) -> f64 {
        1.0 / self.rate_ticks_per_ns
    }

    /// Restarts the counter at local time `now` (models re-zeroing the SLM
    /// word between measurements).
    pub fn restart(&mut self, now: Time) {
        self.started_at = now;
    }

    /// Reads the counter at local time `now`, applying a multiplicative rate
    /// `noise_factor` (1.0 = nominal; sample it from
    /// [`soc_sim::system::Soc::timer_noise_factor`]).
    pub fn read(&self, now: Time, noise_factor: f64) -> u64 {
        let elapsed_ns = now.saturating_sub(self.started_at).as_ns_f64();
        (elapsed_ns * self.rate_ticks_per_ns * noise_factor).round() as u64
    }

    /// Converts an elapsed-tick count back to nanoseconds (nominal rate).
    pub fn ticks_to_ns(&self, ticks: u64) -> f64 {
        ticks as f64 / self.rate_ticks_per_ns
    }

    /// Number of ticks a duration of `duration` would nominally produce.
    pub fn ticks_for(&self, duration: Time, noise_factor: f64) -> u64 {
        (duration.as_ns_f64() * self.rate_ticks_per_ns * noise_factor).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::GpuTopology;

    fn paper_timer() -> CounterTimer {
        let shape = WorkGroupShape::paper_default(&GpuTopology::gen9_gt2());
        CounterTimer::new(shape, Time::from_ns(18))
    }

    #[test]
    fn paper_timer_resolution_is_a_few_ns() {
        let t = paper_timer();
        // 224 counter threads / (18 ns * 32) ~ 0.39 ticks/ns -> ~2.6 ns/tick.
        assert!(t.rate_ticks_per_ns() > 0.3 && t.rate_ticks_per_ns() < 0.5);
        assert!(t.resolution_ns() > 2.0 && t.resolution_ns() < 3.5);
    }

    #[test]
    fn fewer_counter_threads_give_coarser_resolution() {
        // A 64-thread work-group leaves only 32 counter threads (one
        // wavefront) — the configuration the paper found inadequate.
        let small = CounterTimer::new(WorkGroupShape::new(64, 32, 16), Time::from_ns(18));
        let large = paper_timer();
        assert!(small.resolution_ns() > large.resolution_ns() * 5.0);
        // With ~18 ns per tick, a 90 ns L3 hit and a 200 ns LLC hit differ by
        // only ~6 ticks — hard to separate once noise is added.
        assert!(small.resolution_ns() > 15.0);
    }

    #[test]
    fn read_grows_linearly_with_elapsed_time() {
        let mut t = paper_timer();
        t.restart(Time::from_us(1));
        let a = t.read(Time::from_us(1) + Time::from_ns(100), 1.0);
        let b = t.read(Time::from_us(1) + Time::from_ns(200), 1.0);
        assert!(b > a);
        assert!((b as f64 / a as f64 - 2.0).abs() < 0.1);
        // Reading before the start returns zero.
        assert_eq!(t.read(Time::ZERO, 1.0), 0);
    }

    #[test]
    fn ticks_roundtrip_through_ns() {
        let t = paper_timer();
        let ticks = t.ticks_for(Time::from_ns(250), 1.0);
        let ns = t.ticks_to_ns(ticks);
        assert!((ns - 250.0).abs() < t.resolution_ns());
    }

    #[test]
    fn noise_factor_scales_reading() {
        let t = paper_timer();
        let nominal = t.ticks_for(Time::from_us(1), 1.0);
        let fast = t.ticks_for(Time::from_us(1), 1.1);
        let slow = t.ticks_for(Time::from_us(1), 0.9);
        assert!(fast > nominal && nominal > slow);
    }
}
