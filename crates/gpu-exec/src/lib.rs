//! # gpu-exec — integrated-GPU execution model for the Leaky Buddies reproduction
//!
//! Models the OpenCL-visible behaviour of the Gen9 integrated GPU that the
//! paper's attack kernels rely on: the EU/subslice/slice topology, round-robin
//! work-group dispatch, SIMD-32 wavefronts, the custom SLM counter timer
//! (Algorithm 1 of the paper) and memory accesses issued with thread-level
//! parallelism against the shared SoC hierarchy.
//!
//! ```
//! use gpu_exec::prelude::*;
//! use soc_sim::prelude::*;
//!
//! let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
//! let mut kernel = GpuKernel::launch_attack_kernel();
//! let (cold_ticks, _) = kernel.timed_load(&mut soc, PhysAddr::new(0x4000));
//! let (warm_ticks, outcome) = kernel.timed_load(&mut soc, PhysAddr::new(0x4000));
//! assert_eq!(outcome.level, HitLevel::GpuL3);
//! assert!(cold_ticks > warm_ticks);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod dispatch;
pub mod timer;
pub mod topology;
pub mod wavefront;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::device::{GpuError, GpuKernel};
    pub use crate::dispatch::{Dispatcher, WorkGroupPlacement};
    pub use crate::timer::CounterTimer;
    pub use crate::topology::GpuTopology;
    pub use crate::wavefront::{ThreadRole, WorkGroupShape};
}

pub use prelude::*;
