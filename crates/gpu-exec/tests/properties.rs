//! Property-based tests of the GPU execution model.

use gpu_exec::prelude::*;
use proptest::prelude::*;
use soc_sim::clock::Time;

proptest! {
    /// Round-robin dispatch balances work-groups across subslices: the
    /// difference between the most and least loaded subslice is at most one.
    #[test]
    fn dispatch_is_balanced(workgroups in 1usize..64) {
        let mut dispatcher = Dispatcher::new(GpuTopology::gen9_gt2());
        dispatcher.dispatch(workgroups);
        let occupancy = dispatcher.occupancy();
        let max = occupancy.iter().copied().max().unwrap();
        let min = occupancy.iter().copied().min().unwrap();
        prop_assert!(max - min <= 1);
        prop_assert_eq!(occupancy.iter().sum::<usize>(), workgroups);
    }

    /// Every thread of a valid work-group shape has exactly one role, and the
    /// counter threads always start at a wavefront boundary.
    #[test]
    fn thread_roles_partition_the_workgroup(extra_wavefronts in 1usize..7, access in 1usize..=32) {
        let size = 32 * (1 + extra_wavefronts);
        let shape = WorkGroupShape::new(size, 32, access);
        let mut counts = std::collections::HashMap::new();
        for t in 0..size {
            *counts.entry(shape.role_of(t)).or_insert(0usize) += 1;
        }
        prop_assert_eq!(counts.values().sum::<usize>(), size);
        prop_assert_eq!(counts.get(&ThreadRole::Access).copied().unwrap_or(0), access);
        prop_assert_eq!(shape.counter_threads(), size - 32);
        prop_assert!(shape.counter_is_divergence_safe());
    }

    /// The custom timer's reading grows monotonically with elapsed time and
    /// scales linearly with the nominal rate.
    #[test]
    fn timer_reading_is_monotone(a_ns in 0u64..1_000_000, b_ns in 0u64..1_000_000) {
        let shape = WorkGroupShape::paper_default(&GpuTopology::gen9_gt2());
        let timer = CounterTimer::new(shape, Time::from_ns(18));
        let (lo, hi) = (a_ns.min(b_ns), a_ns.max(b_ns));
        prop_assert!(timer.read(Time::from_ns(lo), 1.0) <= timer.read(Time::from_ns(hi), 1.0));
        let ticks = timer.ticks_for(Time::from_ns(hi), 1.0);
        let ns = timer.ticks_to_ns(ticks);
        prop_assert!((ns - hi as f64).abs() <= timer.resolution_ns());
    }

    /// Effective parallelism is positive, never exceeds the total access
    /// threads, and never decreases when more work-groups are launched.
    #[test]
    fn effective_parallelism_is_monotone_in_workgroups(workgroups in 1usize..12) {
        let topology = GpuTopology::gen9_gt2();
        let shape = WorkGroupShape::paper_default(&topology);
        let less = GpuKernel::launch(topology, shape.clone(), workgroups).effective_parallelism();
        let more = GpuKernel::launch(topology, shape.clone(), workgroups + 1).effective_parallelism();
        prop_assert!(less >= 1);
        prop_assert!(less <= shape.access_threads * workgroups);
        prop_assert!(more >= less);
    }
}
