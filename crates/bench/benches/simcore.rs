//! Simulation-core bench: the per-access trait loop versus the batched
//! access path over the same mixed workload, on the paper backend and on
//! the partitioned variant whose conflict tables the batch path leans on.
//!
//! `access_batch` is contractually bit-identical to the per-access
//! reference (see `tests/batched_equivalence.rs`); this bench measures what
//! that contract costs — the headline is accesses/s per arm, and the gap
//! between the arms is the dispatch overhead the sweep's hot loop avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_sim::prelude::{
    access_batch_reference, BackendRegistry, BatchRequest, MemorySystem, PhysAddr, Time,
};
use std::hint::black_box;

/// Requests per measured iteration — enough to dwarf the per-iteration
/// backend clone and stress steady-state cache behaviour.
const BATCH_LEN: usize = 4096;

/// Mixed deterministic workload: CPU loads from two cores, GPU loads and
/// flushes over a 4 MB span (revisits lines, so hits and evictions both
/// occur). A splitmix-style walk keeps it cheap and reproducible.
fn workload() -> Vec<BatchRequest> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..BATCH_LEN)
        .map(|_| {
            let word = next();
            let paddr = PhysAddr::new((word >> 4) % (1 << 22));
            match word % 4 {
                0 | 1 => BatchRequest::CpuLoad {
                    core: ((word >> 2) % 2) as usize,
                    paddr,
                },
                2 => BatchRequest::GpuLoad { paddr },
                _ => BatchRequest::Flush { paddr },
            }
        })
        .collect()
}

fn bench_access_paths(c: &mut Criterion) {
    let registry = BackendRegistry::standard();
    let requests = workload();
    let mut group = c.benchmark_group("simcore_access_path");
    group.sample_size(10);
    for backend in ["kabylake-gen9", "kabylake-gen9-partitioned"] {
        let spec = registry.get(backend).expect("standard backend");
        let pristine = spec.build(7);
        group.bench_with_input(
            BenchmarkId::new("per_access", backend),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let mut soc = pristine.clone();
                    let mut outcomes = Vec::with_capacity(requests.len());
                    black_box(access_batch_reference(
                        &mut soc,
                        black_box(requests),
                        Time::ZERO,
                        &mut outcomes,
                    ))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", backend),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let mut soc = pristine.clone();
                    let mut outcomes = Vec::with_capacity(requests.len());
                    black_box(soc.access_batch(black_box(requests), Time::ZERO, &mut outcomes))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_access_paths);
criterion_main!(benches);
