//! Telemetry overhead bench: the per-operation cost of the counter and
//! histogram primitives with the registry enabled versus disabled, and a
//! full sweep point with and without per-point instrumentation — the
//! numbers behind the "near-zero cost when disabled" claim the hot layers
//! rely on.

use bench::{run_point_configured, ChannelKind, NoiseLevel, SweepPoint};
use covert::prelude::Transceiver;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_sim::prelude::{BackendRegistry, Registry};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitive");
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        let registry = if enabled {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let counter = registry.counter("bench.hits");
        let hist = registry.histogram("bench.latency");
        group.bench_with_input(BenchmarkId::new("counter_add", label), &(), |b, ()| {
            b.iter(|| counter.add(black_box(3)));
        });
        group.bench_with_input(BenchmarkId::new("histogram_record", label), &(), |b, ()| {
            b.iter(|| hist.record(black_box(1234)));
        });
        group.bench_with_input(BenchmarkId::new("span", label), &(), |b, ()| {
            b.iter(|| drop(black_box(hist.span())));
        });
    }
    group.finish();
}

fn bench_sweep_point(c: &mut Criterion) {
    let registry = BackendRegistry::standard();
    let engine = Transceiver::raw();
    let mut point = SweepPoint::paper_default(
        "kabylake-gen9",
        ChannelKind::LlcPrimeProbe,
        NoiseLevel::Quiet,
    );
    point.bits = 48;
    let mut group = c.benchmark_group("telemetry_sweep_point");
    group.sample_size(10);
    for (label, telemetry) in [("instrumented", true), ("disabled", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &telemetry,
            |b, &telemetry| {
                b.iter(|| {
                    black_box(run_point_configured(
                        black_box(&point),
                        &engine,
                        &registry,
                        telemetry,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_sweep_point);
criterion_main!(benches);
