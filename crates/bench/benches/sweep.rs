//! Scenario-sweep bench: prints the full backend x channel x noise grid and
//! times the parallel runner against the serial baseline, so scheduler or
//! engine regressions show up in `cargo bench`.

use bench::{default_grid, SweepRunner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    println!("\n[sweep] backend x channel x noise grid");
    for result in SweepRunner::with_default_threads().run(&default_grid(120)) {
        match result.outcome {
            Ok(outcome) => println!(
                "[sweep] {:<58} {:>9.1} kb/s, error {:>5.2}%",
                result.point.label(),
                outcome.bandwidth_kbps,
                outcome.error_rate * 100.0
            ),
            Err(err) => println!("[sweep] {:<58} unusable: {err}", result.point.label()),
        }
    }

    let mut group = c.benchmark_group("scenario_sweep");
    group.sample_size(3);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                let grid = default_grid(48);
                b.iter(|| black_box(SweepRunner::new(threads).run(black_box(&grid))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
