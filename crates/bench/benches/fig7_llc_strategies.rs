//! Figure 7 bench: LLC-channel bandwidth per L3-eviction strategy and
//! direction.
//!
//! The figure's series are printed once; Criterion then times a short
//! transmission for each strategy so per-bit cost regressions are visible.

use bench::fig7_llc_strategies;
use covert::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    println!("\n[fig7] LLC channel bandwidth per strategy");
    for r in fig7_llc_strategies(200) {
        println!(
            "[fig7] {:<22} {:<12} {:>8.1} kb/s (error {:>5.2}%, paper {:>6.1} kb/s)",
            r.strategy,
            r.direction,
            r.bandwidth_kbps,
            r.error_rate * 100.0,
            r.paper_kbps
        );
    }

    let mut group = c.benchmark_group("fig7_llc_strategy_transmission");
    group.sample_size(10);
    for strategy in [
        L3EvictionStrategy::PreciseL3,
        L3EvictionStrategy::LlcKnowledgeOnly,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let bits = test_pattern(32, 7);
                b.iter(|| {
                    let mut channel =
                        LlcChannel::new(LlcChannelConfig::paper_default().with_strategy(strategy))
                            .expect("channel setup");
                    black_box(channel.transmit(&bits))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
