//! Headline bench: the paper's abstract numbers (best LLC channel vs best
//! contention channel) plus the reverse-engineering pre-requisites.

use bench::{headline, l3_experiment, parallelism_ablation, slice_hash_experiment};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_headline(c: &mut Criterion) {
    println!("\n[headline] best configurations vs paper");
    for r in headline(300) {
        println!(
            "[headline] {:<30} {:>8.1} kb/s (err {:>5.2}%)  paper: {:>6.1} kb/s (err {:>4.2}%)",
            r.channel,
            r.bandwidth_kbps,
            r.error_rate * 100.0,
            r.paper_kbps,
            r.paper_error * 100.0
        );
    }
    let hash = slice_hash_experiment();
    println!(
        "[headline] slice-hash recovery: {} slices, bits match = {}",
        hash.observed_slices, hash.matches
    );
    let l3 = l3_experiment();
    println!(
        "[headline] L3 non-inclusive = {}, index bits match = {}",
        l3.non_inclusive, l3.index_bits_match
    );
    for r in parallelism_ablation(120) {
        println!(
            "[headline] ablation parallel={}: {:>7.1} kb/s, error {:>5.2}%",
            r.parallel,
            r.bandwidth_kbps,
            r.error_rate * 100.0
        );
    }

    let mut group = c.benchmark_group("headline");
    group.sample_size(10);
    group.bench_function("headline_160_bits", |b| {
        b.iter(|| black_box(headline(black_box(160))));
    });
    group.bench_function("slice_hash_recovery", |b| {
        b.iter(|| black_box(slice_hash_experiment()));
    });
    group.finish();
}

criterion_group!(benches, bench_headline);
criterion_main!(benches);
