//! Figure 9 bench: iteration-factor calibration versus GPU buffer size.

use bench::fig9_iteration_factor;
use covert::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    println!("\n[fig9] iteration factor vs GPU buffer size (CPU buffer 512 KB)");
    for r in fig9_iteration_factor() {
        println!(
            "[fig9] GPU buffer {:>5} KB -> IF {:>2} (CPU window {:>7.0} ns, GPU pass {:>7.0} ns)",
            r.gpu_buffer_bytes / 1024,
            r.iteration_factor,
            r.cpu_window_ns,
            r.gpu_pass_ns
        );
    }

    let mut group = c.benchmark_group("fig9_calibration");
    group.sample_size(10);
    for buffer_kb in [512u64, 2048] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{buffer_kb}KB")),
            &buffer_kb,
            |b, &buffer_kb| {
                b.iter(|| {
                    let mut channel = ContentionChannel::new(
                        ContentionChannelConfig::paper_default()
                            .with_gpu_buffer(buffer_kb * 1024)
                            .with_workgroups(1),
                    )
                    .expect("channel setup");
                    black_box(channel.calibrate())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
