//! Figure 4 bench: custom GPU timer characterization.
//!
//! Criterion times one characterization pass; the figure's data (mean ticks
//! per access class) is printed once before the measurement loop.

use bench::fig4_timer_characterization;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let (rows, separable) = fig4_timer_characterization(40);
    println!("\n[fig4] custom timer characterization (separable = {separable})");
    for r in &rows {
        println!(
            "[fig4] {:<8} mean {:>8.1} ticks (~{:>6.1} ns), sd {:>6.2}",
            r.class, r.mean_ticks, r.mean_ns, r.std_dev
        );
    }
    c.bench_function("fig4_timer_characterization_10_samples", |b| {
        b.iter(|| black_box(fig4_timer_characterization(black_box(10))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
