//! Figure 8 bench: error and bandwidth versus the number of redundant LLC
//! sets used per protocol role.

use bench::fig8_llc_sets;
use covert::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    println!("\n[fig8] error/bandwidth vs redundant LLC sets");
    for r in fig8_llc_sets(300) {
        println!(
            "[fig8] {:<12} sets={} {:>8.1} kb/s, error {:>5.2}%",
            r.direction,
            r.sets_per_role,
            r.bandwidth_kbps,
            r.error_rate * 100.0
        );
    }

    let mut group = c.benchmark_group("fig8_llc_sets_transmission");
    group.sample_size(10);
    for sets in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(sets), &sets, |b, &sets| {
            let bits = test_pattern(32, 8);
            b.iter(|| {
                let mut channel =
                    LlcChannel::new(LlcChannelConfig::paper_default().with_sets_per_role(sets))
                        .expect("channel setup");
                black_box(channel.transmit(&bits))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
