//! Figure 10 bench: contention-channel bandwidth and error over the
//! (GPU buffer size, work-group count) parameter space.

use bench::fig10_contention;
use covert::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    println!("\n[fig10] contention channel sweep (95% CI over runs)");
    for r in fig10_contention(250, 4) {
        println!(
            "[fig10] {} MB, {} WGs, IF {:>2}: {:>7.1} ± {:>5.1} kb/s, error {:>5.2} ± {:>4.2}%",
            r.gpu_buffer_bytes / (1024 * 1024),
            r.workgroups,
            r.iteration_factor,
            r.bandwidth_kbps.mean,
            r.bandwidth_kbps.ci95_half_width,
            r.error_rate.mean * 100.0,
            r.error_rate.ci95_half_width * 100.0
        );
    }

    let mut group = c.benchmark_group("fig10_contention_transmission");
    group.sample_size(10);
    for workgroups in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workgroups),
            &workgroups,
            |b, &workgroups| {
                let bits = test_pattern(64, 10);
                b.iter(|| {
                    let mut channel = ContentionChannel::new(
                        ContentionChannelConfig::paper_default().with_workgroups(workgroups),
                    )
                    .expect("channel setup");
                    black_box(channel.transmit(&bits))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
