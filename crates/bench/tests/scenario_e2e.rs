//! End-to-end proof that `scenarios/default.json` IS the committed default
//! grid: every quick point the scenario materializes keys into a row of
//! `bench/baseline.json`, the baseline holds no rows the scenario does not
//! produce, and re-simulating one point per section from scratch lands on
//! the recorded goodput exactly.

use std::path::PathBuf;

use bench::{
    materialize_sections, run_point_configured, scenario_registry, BaselineCell, ResumeCache,
};
use covert::prelude::{Transceiver, TransceiverConfig};
use scenario::parse_scenario;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

#[test]
fn default_scenario_covers_the_committed_baseline_exactly() {
    let text = std::fs::read_to_string(repo_path("scenarios/default.json"))
        .expect("scenarios/default.json is committed");
    let scenario = parse_scenario(&text).expect("default scenario parses");
    let scenarios = [scenario];
    let registry = scenario_registry(&scenarios).expect("default scenario registers");
    let sections = materialize_sections(&scenarios[0], &registry, true, &Default::default())
        .expect("default scenario materializes its quick grid");
    assert_eq!(sections.len(), 3, "default scenario ships three sections");

    let mut cache = ResumeCache::load(&repo_path("bench/baseline.json"))
        .expect("bench/baseline.json loads as a keyed row document");

    // Every materialized point must key into a baseline row…
    let mut covered = 0usize;
    for section in &sections {
        for point in &section.points {
            let key = point.key();
            assert!(
                cache.take(&key).is_some(),
                "scenario point {:?} (key {key}) has no row in bench/baseline.json",
                point.label(),
            );
            covered += 1;
        }
    }
    // …and no baseline row may be left unclaimed: the scenario file and the
    // committed baseline describe exactly the same grid.
    assert!(
        cache.is_empty(),
        "bench/baseline.json holds {} rows the default scenario never materializes",
        cache.len(),
    );
    assert_eq!(
        covered,
        cache.total_rows(),
        "every baseline row was claimed"
    );
}

#[test]
fn default_scenario_points_reproduce_recorded_goodput() {
    let text = std::fs::read_to_string(repo_path("scenarios/default.json"))
        .expect("scenarios/default.json is committed");
    let scenario = parse_scenario(&text).expect("default scenario parses");
    let scenarios = [scenario];
    let registry = scenario_registry(&scenarios).expect("default scenario registers");
    let sections = materialize_sections(&scenarios[0], &registry, true, &Default::default())
        .expect("default scenario materializes its quick grid");

    let mut cache = ResumeCache::load(&repo_path("bench/baseline.json"))
        .expect("bench/baseline.json loads as a keyed row document");

    // One point per section keeps the debug-mode runtime bounded while still
    // exercising the raw and framed engines; the full-grid value check is
    // the release gate (`repro --sweep --check-baseline`).
    for section in &sections {
        let point = section
            .points
            .first()
            .expect("each default section materializes at least one point");
        let recorded = cache
            .take(&point.key())
            .expect("covered by the coverage test above");
        let engine = if section.framed {
            Transceiver::new(TransceiverConfig::paper_default())
        } else {
            Transceiver::raw()
        };
        let fresh = run_point_configured(point, &engine, &registry, false);
        let cell = BaselineCell::from_result(&fresh);
        assert_eq!(
            cell.scenario,
            recorded.cell.scenario,
            "row label drifted for key {}",
            point.key()
        );
        assert_eq!(cell.bits, recorded.cell.bits);
        assert_eq!(cell.seed, recorded.cell.seed);
        assert_eq!(
            cell.goodput_kbps,
            recorded.cell.goodput_kbps,
            "goodput of {:?} no longer matches bench/baseline.json bit-for-bit",
            point.label(),
        );
    }
}
