//! End-to-end `repro --resume`: a second sweep over the same grid reuses
//! every row of the first run's document — byte-identically — and foreign
//! resume files are rejected with a hard exit.
//!
//! Restricted to the trace-replay backend so the sweep serves recorded
//! latencies instead of simulating the hierarchy; the resume plumbing under
//! test is identical for every backend.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

#[test]
fn resume_reuses_every_row_and_rejects_foreign_files() {
    let first = tmp("resume_e2e_first.json");
    let second = tmp("resume_e2e_second.json");

    let fresh = repro()
        .args([
            "--quick",
            "--sweep",
            "--backend",
            "trace-replay",
            "--no-progress",
        ])
        .arg("--out")
        .arg(&first)
        .output()
        .expect("repro runs");
    assert!(fresh.status.success(), "fresh sweep failed: {fresh:?}");

    let resumed = repro()
        .args([
            "--quick",
            "--sweep",
            "--backend",
            "trace-replay",
            "--no-progress",
        ])
        .arg("--resume")
        .arg(&first)
        .arg("--out")
        .arg(&second)
        .output()
        .expect("repro runs");
    assert!(
        resumed.status.success(),
        "resumed sweep failed: {resumed:?}"
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("(resuming:"),
        "missing resume banner in:\n{stdout}"
    );
    assert!(
        stdout.contains("every row resumed"),
        "some rows were re-simulated:\n{stdout}"
    );

    // Not just value-identical: the replayed rows are the recorded bytes.
    let first_doc = std::fs::read(&first).expect("first document");
    let second_doc = std::fs::read(&second).expect("second document");
    assert_eq!(first_doc, second_doc, "resumed document diverged");

    // A non-sweep file must abort the run (exit 2), not silently re-sweep.
    let foreign = tmp("resume_e2e_foreign.json");
    std::fs::write(&foreign, "{\"schema\":\"other/v1\",\"results\":[]}").unwrap();
    let rejected = repro()
        .args([
            "--quick",
            "--sweep",
            "--backend",
            "trace-replay",
            "--no-progress",
        ])
        .arg("--resume")
        .arg(&foreign)
        .output()
        .expect("repro runs");
    assert_eq!(rejected.status.code(), Some(2), "foreign file not rejected");
    let stderr = String::from_utf8_lossy(&rejected.stderr);
    assert!(
        stderr.contains("not a sweep document"),
        "unexpected rejection message:\n{stderr}"
    );
}
