//! End-to-end event timeline: `repro --sweep --trace-timeline` writes a
//! Chrome-trace document that parses through the in-repo JSON parser,
//! names all six layer tracks, and carries real events on the layers the
//! run exercises; `--validate-timeline` accepts it and rejects broken
//! documents. In-process, a phased adaptive point on a real backend
//! records events on every simulated layer — and records nothing at all
//! with the capture off (the default).

use bench::{
    parse_json, validate_timeline, ChannelKind, JsonValue, NoiseLevel, SweepPoint, SweepRunner,
};
use covert::prelude::PolicyKind;
use soc_sim::prelude::EventLayer;
use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

#[test]
fn trace_timeline_round_trips_and_names_every_track() {
    let path = tmp("timeline_e2e.json");

    // Restricted to the trace-replay backend so the sweep serves recorded
    // latencies; the timeline plumbing under test is identical for every
    // backend, and the dedicated duplex exchange simulates the paper
    // platform regardless.
    let run = repro()
        .args([
            "--quick",
            "--sweep",
            "--backend",
            "trace-replay",
            "--no-progress",
        ])
        .arg("--trace-timeline")
        .arg(&path)
        .output()
        .expect("repro runs");
    assert!(run.status.success(), "sweep failed: {run:?}");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        stdout.contains("wrote event timeline"),
        "missing timeline confirmation in:\n{stdout}"
    );

    // The validator binary accepts the artifact and lists all six tracks.
    let validated = repro()
        .arg("--validate-timeline")
        .arg(&path)
        .output()
        .expect("repro runs");
    assert!(
        validated.status.success(),
        "validation failed: {validated:?}"
    );
    let out = String::from_utf8_lossy(&validated.stdout);
    assert!(
        out.contains("tracks: adapt, duplex, link, noise, sim, sweep"),
        "missing tracks in:\n{out}"
    );

    // Library-level round trip over the same bytes.
    let text = std::fs::read_to_string(&path).expect("timeline file");
    let summary = validate_timeline(&text).expect("document validates");
    assert!(summary.points > 1, "sweep points plus the duplex exchange");
    assert!(summary.events > 0);

    // Real (non-metadata) events on every track this run exercises. The
    // replay backend serves recorded latencies, so the sim/noise tracks
    // may legitimately be empty here — the in-process test below covers
    // them on a real backend.
    let doc = parse_json(&text).expect("parses");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    let on_track = |cat: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) != Some("M"))
            .filter(|e| e.get("cat").and_then(JsonValue::as_str) == Some(cat))
            .count()
    };
    for cat in ["link", "adapt", "duplex", "sweep"] {
        assert!(on_track(cat) > 0, "no events on the {cat} track:\n{out}");
    }

    // A structurally broken document must fail validation (exit non-zero).
    let broken = tmp("timeline_e2e_broken.json");
    std::fs::write(&broken, "{\"traceEvents\":[]}").unwrap();
    let rejected = repro()
        .arg("--validate-timeline")
        .arg(&broken)
        .output()
        .expect("repro runs");
    assert!(
        !rejected.status.success(),
        "a trackless document must be rejected"
    );
}

#[test]
fn phased_adaptive_point_records_events_on_every_simulated_layer() {
    let mut point = SweepPoint::paper_default(
        "kabylake-gen9",
        ChannelKind::LlcPrimeProbe,
        NoiseLevel::Phased,
    )
    .with_policy(PolicyKind::Threshold);
    // Several noise phases long: the phased schedule alternates 12 ms calm
    // and burst windows, and this payload spans ~50 ms of airtime, so the
    // run must cross phase boundaries (and record the transitions).
    point.bits = 1536;

    let results = SweepRunner::new(1)
        .with_events(true)
        .run(std::slice::from_ref(&point));
    let outcome = results[0].outcome.as_ref().expect("point runs");
    let log = outcome.events.as_ref().expect("events captured");
    assert_eq!(log.dropped, 0, "ring must not overflow on one point");
    for layer in [
        EventLayer::Sim,
        EventLayer::Noise,
        EventLayer::Link,
        EventLayer::Adapt,
        EventLayer::Sweep,
    ] {
        assert!(
            log.layer(layer).next().is_some(),
            "no {layer:?} events in a phased adaptive point"
        );
    }

    // With the capture off (the default), no log is attached at all.
    let off = SweepRunner::new(1).run(std::slice::from_ref(&point));
    assert!(off[0]
        .outcome
        .as_ref()
        .expect("point runs")
        .events
        .is_none());
}
