//! The parallel scenario-sweep runner.
//!
//! Every figure of the paper is a sweep over some axis — eviction strategy,
//! redundant-set count, trojan buffer size, work-group count — and the
//! unified [`CovertChannel`] abstraction adds two more: the SoC backend and
//! the ambient noise level. A [`SweepPoint`] names one cell of that grid —
//! its backend axis is a **registry key** resolved through
//! [`BackendRegistry`], so grids, JSON rows and the CLI select platforms by
//! name and a new topology needs no sweep-side plumbing. The [`SweepRunner`]
//! fans a list of points across OS threads with `std::thread::scope`, gives
//! every point an isolated backend + channel, and drives it through the
//! shared [`Transceiver`] engine. [`SweepRunner::run_streaming`] surfaces
//! each row the moment its point finishes (completion order), so long grids
//! can be printed, serialized or aborted incrementally.
//!
//! Channel setup (backend construction, eviction-set building, warm-up,
//! calibration) is deterministic in the *cell* axes — backend, channel
//! family, noise, direction/strategy/set-count (or buffer/work-group
//! geometry) and seed — and independent of the code, policy and payload
//! axes. Each worker therefore keeps the last cell's fully calibrated
//! channel as a cell template and clones it per point instead of
//! rebuilding it; grids enumerate cells contiguously, so a single slot
//! per worker captures nearly every reuse. A clone is a value snapshot
//! (caches, RNGs, calibration), so per-point isolation and bit-identical
//! results are preserved by construction.
//!
//! Failures are data: a point whose channel cannot even be set up (the
//! custom timer drowning in noise, buffers overflowing a partitioned LLC,
//! an unknown backend name) records its [`ChannelError`] in the result row
//! instead of aborting the sweep — which is exactly what the mitigation and
//! noise studies need.

use covert::prelude::*;
use soc_sim::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Which channel family a sweep point exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// The LLC Prime+Probe channel (Section III).
    LlcPrimeProbe,
    /// The ring/LLC-port contention channel (Section IV).
    RingContention,
}

impl ChannelKind {
    /// Both channel families, in report order.
    pub const ALL: [ChannelKind; 2] = [ChannelKind::LlcPrimeProbe, ChannelKind::RingContention];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::LlcPrimeProbe => "llc-prime-probe",
            ChannelKind::RingContention => "ring-contention",
        }
    }
}

/// Ambient noise level of a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseLevel {
    /// Noise model disabled (deterministic).
    Noiseless,
    /// The paper's "generally quiet" system.
    Quiet,
    /// A loaded system with co-running activity.
    Noisy,
    /// Time-varying interference: calm stretches alternating with severe
    /// bursts ([`NoiseSchedule::calm_burst`]) — the regime the adaptation
    /// policies exist for.
    Phased,
}

/// Phase length of the [`NoiseLevel::Phased`] schedule (calm and burst are
/// equally long). Sized so even the heaviest link setting's adaptation
/// window (~2.6 ms of airtime on the LLC channel) fits inside a phase —
/// shorter phases average over the regimes instead of exposing them, and
/// whoever reacts to the weather arrives after it has passed.
const PHASED_PHASE: Time = Time::from_us(12_000);

impl NoiseLevel {
    /// All levels, in increasing severity (the phased schedule last: its
    /// bursts are harsher than the steady noisy level).
    pub const ALL: [NoiseLevel; 4] = [
        NoiseLevel::Noiseless,
        NoiseLevel::Quiet,
        NoiseLevel::Noisy,
        NoiseLevel::Phased,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            NoiseLevel::Noiseless => "noiseless",
            NoiseLevel::Quiet => "quiet",
            NoiseLevel::Noisy => "noisy",
            NoiseLevel::Phased => "phased",
        }
    }

    /// The static noise configuration this level applies to the backend
    /// (the quiet base level for [`NoiseLevel::Phased`], whose character
    /// comes from its schedule).
    pub fn config(self) -> NoiseConfig {
        match self {
            NoiseLevel::Noiseless => NoiseConfig::none(),
            NoiseLevel::Quiet | NoiseLevel::Phased => NoiseConfig::quiet_system(),
            NoiseLevel::Noisy => NoiseConfig::noisy_system(),
        }
    }

    /// The time-varying schedule this level attaches, if any: the shared
    /// [`NoiseSchedule::calm_burst`] program, an idle-machine stretch (far
    /// quieter than the steady [`NoiseLevel::Quiet`] preset — the regime
    /// where an uncoded link wins outright) alternating with an equally
    /// long severe interference burst (the regime where only heavy
    /// protection moves any bits at all). No fixed operating point is
    /// right for both halves — the scenario link adaptation exists for.
    pub fn schedule(self) -> Option<NoiseSchedule> {
        match self {
            NoiseLevel::Phased => Some(NoiseSchedule::calm_burst(PHASED_PHASE)),
            _ => None,
        }
    }
}

/// One cell of the scenario grid: backend × channel × noise × link code ×
/// per-channel parameters.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// SoC backend, as a [`BackendRegistry`] key (e.g. `"kabylake-gen9"`).
    /// Unknown keys surface as [`ChannelError::InvalidConfig`] result rows.
    pub backend: String,
    /// Channel family.
    pub channel: ChannelKind,
    /// Ambient noise level.
    pub noise: NoiseLevel,
    /// Link code the transceiver applies to every frame. Non-`None` codes
    /// force the framed engine (raw mode has no frames to code). For an
    /// adaptive point this is the [`FixedPolicy`] baseline's operating
    /// point; the adaptive policies pick their own codes at run time.
    pub code: LinkCodeKind,
    /// Link-control policy. `None` runs the plain engine (the pre-adaptive
    /// paths); `Some(kind)` drives the point through the
    /// [`AdaptiveTransceiver`] with that policy, recording a per-window
    /// [`AdaptationSummary`] on the outcome.
    pub policy: Option<PolicyKind>,
    /// Full parameter set for the link-control policy, for points whose
    /// policy comes from a scenario file rather than a built-in family
    /// label. When set, the controller is built from these parameters
    /// (ladder, thresholds, bandit knobs) instead of the family's paper
    /// defaults, and the parameters join the row identity ([`SweepPoint::key`]
    /// and [`SweepPoint::label`]) so differently-tuned policies never
    /// collide. `None` — every built-in grid — changes nothing.
    pub policy_params: Option<PolicyParams>,
    /// Fingerprint ([`TopologySpec::fingerprint`]) of the backend topology,
    /// for points whose backend is defined by a scenario file rather than a
    /// compiled-in preset. Joins [`SweepPoint::key`] so `--resume` caches
    /// can never reuse a row simulated under an older version of an edited
    /// scenario topology. `None` for registry presets, whose identity is
    /// their name.
    pub backend_fingerprint: Option<u64>,
    /// LLC channel: transmission direction.
    pub direction: Direction,
    /// LLC channel: L3 eviction strategy.
    pub strategy: L3EvictionStrategy,
    /// LLC channel: redundant sets per protocol role.
    pub sets_per_role: usize,
    /// Contention channel: trojan buffer size in bytes.
    pub gpu_buffer_bytes: u64,
    /// Contention channel: work-group count.
    pub workgroups: usize,
    /// Payload bits moved at this point.
    pub bits: usize,
    /// Simulation and payload seed.
    pub seed: u64,
}

impl SweepPoint {
    /// A point with the paper-default parameters for `channel` on `backend`
    /// (a registry key such as `"kabylake-gen9"`).
    pub fn paper_default(
        backend: impl Into<String>,
        channel: ChannelKind,
        noise: NoiseLevel,
    ) -> Self {
        SweepPoint {
            backend: backend.into(),
            channel,
            noise,
            code: LinkCodeKind::None,
            policy: None,
            policy_params: None,
            backend_fingerprint: None,
            direction: Direction::GpuToCpu,
            strategy: L3EvictionStrategy::PreciseL3,
            sets_per_role: 2,
            gpu_buffer_bytes: 2 * 1024 * 1024,
            workgroups: 2,
            bits: 200,
            seed: 7,
        }
    }

    /// Replaces the link code.
    pub fn with_code(mut self, code: LinkCodeKind) -> Self {
        self.code = code;
        self
    }

    /// Replaces the link-control policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a full policy parameter set (scenario-defined policies);
    /// also sets the policy family to match.
    pub fn with_policy_params(mut self, params: PolicyParams) -> Self {
        self.policy = Some(params.kind());
        self.policy_params = Some(params);
        self
    }

    /// Compact label for report rows.
    pub fn label(&self) -> String {
        let mut label = match self.channel {
            ChannelKind::LlcPrimeProbe => format!(
                "{} / {} / {} / {} / {} sets",
                self.backend,
                self.channel.label(),
                self.noise.label(),
                self.strategy.label(),
                self.sets_per_role,
            ),
            ChannelKind::RingContention => format!(
                "{} / {} / {} / {} KB x {} WGs",
                self.backend,
                self.channel.label(),
                self.noise.label(),
                self.gpu_buffer_bytes / 1024,
                self.workgroups,
            ),
        };
        if self.code != LinkCodeKind::None {
            label.push_str(" / ");
            label.push_str(&self.code.label());
        }
        match (&self.policy_params, self.policy) {
            // A parameterized policy prints its full configuration — two
            // differently-tuned thresholds must be distinguishable rows.
            (Some(params), _) => {
                label.push_str(" / ");
                label.push_str(&params.label());
            }
            (None, Some(policy)) => {
                label.push_str(" / ");
                label.push_str(policy.label());
            }
            (None, None) => {}
        }
        label
    }

    /// Stable identity of the row this point produces, as 16 hex digits:
    /// an FNV-1a 64-bit hash over *every* grid axis (including the ones the
    /// row label elides — direction, payload size, seed). `repro --resume`
    /// matches prior rows against a fresh grid by this key, so two points
    /// share a key exactly when they would produce the same row.
    pub fn key(&self) -> String {
        let mut canonical = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.backend,
            self.channel.label(),
            self.noise.label(),
            self.code.label(),
            match self.policy {
                Some(policy) => policy.label(),
                None => "-",
            },
            self.direction.label(),
            self.strategy.label(),
            self.sets_per_role,
            self.gpu_buffer_bytes,
            self.workgroups,
            self.bits,
            self.seed,
        );
        // Scenario-only axes join the canonical string only when present,
        // so every pre-scenario grid keeps its historical keys (and with
        // them its committed baselines and resume caches).
        if let Some(params) = &self.policy_params {
            canonical.push_str("|pp:");
            canonical.push_str(&params.label());
        }
        if let Some(fingerprint) = self.backend_fingerprint {
            canonical.push_str(&format!("|bf:{fingerprint:016x}"));
        }
        // FNV-1a, 64-bit: tiny, dependency-free and stable across runs —
        // unlike `DefaultHasher`, whose output the std docs leave free to
        // change between releases.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }
}

/// Measured outcome of one sweep point.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Channel bandwidth in kb/s (all payload bits over elapsed time).
    pub bandwidth_kbps: f64,
    /// Goodput in kb/s: payload bits of intact frames over elapsed time,
    /// net of retransmissions and coding overhead.
    pub goodput_kbps: f64,
    /// Bit-error rate in `[0, 1]` after link-code decoding (residual BER).
    pub error_rate: f64,
    /// Nominal code rate of the link code (1.0 for the uncoded baseline).
    pub code_rate: f64,
    /// Bits the link-code decoder repaired.
    pub corrected_bits: usize,
    /// Detected-but-uncorrectable decode failures that survived the retry
    /// budget.
    pub residual_errors: usize,
    /// Calibrated symbol time in nanoseconds.
    pub symbol_time_ns: f64,
    /// Calibration separation quality (see [`Calibration::quality`]).
    pub calibration_quality: f64,
    /// Frames the engine moved (1 in raw mode).
    pub frames_sent: usize,
    /// Frame retransmissions the engine performed.
    pub retransmissions: usize,
    /// The channel's self-description after the run (thresholds, iteration
    /// factor, backend summary).
    pub diagnostics: ChannelDiagnostics,
    /// Per-window adaptation history, for points run under a policy.
    pub adaptation: Option<AdaptationSummary>,
    /// Telemetry snapshot of the point's private registry — backend
    /// counters (`llc.*`, `ring.*`, `dram.*`), link counters (`link.*`,
    /// `adapt.*`) and wall-clock phase histograms (`phase.*`). `None` when
    /// the runner was built with [`SweepRunner::with_telemetry`]`(false)`.
    pub metrics: Option<MetricsSnapshot>,
    /// Timeline event log of the point's private [`EventSink`] — noise
    /// phase transitions, link frames and retransmissions, adaptation
    /// windows and probes, plus one whole-point sweep-track span. `None`
    /// unless the runner was built with [`SweepRunner::with_events`]`(true)`
    /// (the default is off: event recording is for `--trace-timeline`
    /// forensics, not routine sweeps). Never serialized into sweep rows,
    /// so baseline and resume documents are unaffected either way.
    pub events: Option<EventLog>,
}

/// One row of a completed sweep: the point and its outcome or failure.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The scenario that ran.
    pub point: SweepPoint,
    /// The measurement, or the error that stopped the scenario.
    pub outcome: Result<SweepOutcome, ChannelError>,
}

/// Executes one sweep point to completion on the calling thread, resolving
/// the backend against [`BackendRegistry::standard`].
///
/// The point's link code overrides the base engine's: a coded point always
/// runs the framed engine (raw mode has no frame boundary for the code to
/// retransmit on), with everything else taken from `engine`.
pub fn run_point(point: &SweepPoint, engine: &Transceiver) -> SweepResult {
    run_point_with_registry(point, engine, &BackendRegistry::standard())
}

/// [`run_point`] against an explicit registry — the path for custom
/// [`BackendSpec`]s added with [`BackendRegistry::register`].
pub fn run_point_with_registry(
    point: &SweepPoint,
    engine: &Transceiver,
    registry: &BackendRegistry,
) -> SweepResult {
    run_point_configured(point, engine, registry, true)
}

/// [`run_point_with_registry`] with the telemetry switch explicit: `true`
/// gives the point a private [`Registry`] (backend, link and phase
/// instruments) whose snapshot lands on [`SweepOutcome::metrics`]; `false`
/// skips instrumentation entirely and leaves `metrics` as `None`.
pub fn run_point_configured(
    point: &SweepPoint,
    engine: &Transceiver,
    registry: &BackendRegistry,
    telemetry: bool,
) -> SweepResult {
    let outcome = run_point_inner(point, engine, registry, telemetry, false);
    SweepResult {
        point: point.clone(),
        outcome,
    }
}

/// The engine configuration a point actually runs with (see [`run_point`]).
pub fn effective_engine(point: &SweepPoint, base: &TransceiverConfig) -> TransceiverConfig {
    let mut config = if point.code != LinkCodeKind::None && !base.framed {
        TransceiverConfig::paper_default()
    } else {
        *base
    };
    config.code = point.code;
    config
}

/// Resolves a point's backend spec and the [`SocConfig`] its channel runs
/// with: the registry topology with the point's noise/schedule/seed applied,
/// or — for a replaying spec — the trace's recorded configuration verbatim.
pub(crate) fn resolve_backend<'r>(
    point: &SweepPoint,
    registry: &'r BackendRegistry,
) -> Result<(&'r BackendSpec, SocConfig), ChannelError> {
    let spec = registry.get(&point.backend).ok_or_else(|| {
        ChannelError::InvalidConfig(format!(
            "unknown backend '{}' (available: {})",
            point.backend,
            registry.names().join(", ")
        ))
    })?;
    if spec.is_replaying() {
        // A replayed run is pinned to its recorded configuration; the
        // point's noise/seed axes would only manufacture divergence.
        return Ok((spec, spec.config()));
    }
    let topology = spec.topology();
    // A degenerate caller-registered topology must surface as this row's
    // error, not as a panic that tears down every worker in the scope.
    topology.validate().map_err(|message| {
        ChannelError::InvalidConfig(format!("backend '{}': {message}", point.backend))
    })?;
    let mut soc_config = topology
        .build_config()
        .with_noise(point.noise.config())
        .with_seed(point.seed);
    if let Some(schedule) = point.noise.schedule() {
        soc_config = soc_config.with_noise_schedule(schedule);
    }
    Ok((spec, soc_config))
}

/// The LLC-channel configuration a sweep point runs with (shared by the
/// measuring and the trace-recording paths, so the two can never drift).
fn llc_channel_config(point: &SweepPoint, soc_config: SocConfig) -> LlcChannelConfig {
    LlcChannelConfig {
        direction: point.direction,
        strategy: point.strategy,
        sets_per_role: point.sets_per_role,
        seed: point.seed,
        soc: soc_config,
        ..LlcChannelConfig::paper_default()
    }
}

/// The contention-channel configuration a sweep point runs with.
fn contention_channel_config(point: &SweepPoint, soc_config: SocConfig) -> ContentionChannelConfig {
    ContentionChannelConfig {
        gpu_buffer_bytes: point.gpu_buffer_bytes,
        workgroups: point.workgroups,
        seed: point.seed,
        soc: soc_config,
        ..ContentionChannelConfig::paper_default()
    }
}

fn run_point_inner(
    point: &SweepPoint,
    engine: &Transceiver,
    registry: &BackendRegistry,
    telemetry: bool,
    events: bool,
) -> Result<SweepOutcome, ChannelError> {
    // Each point gets a *private* registry: points run on arbitrary worker
    // threads, and a shared registry would smear concurrent points'
    // counters together. Aggregation across points is the consumer's job
    // (`MetricsSnapshot::merge`). The event sink is private for the same
    // reason — and so each row's timeline starts at its own time zero.
    let instruments = telemetry.then(Registry::new);
    let sink = events.then(EventSink::new);
    let mut engine = Transceiver::new(effective_engine(point, engine.config()));
    if let Some(reg) = &instruments {
        engine = engine.with_telemetry(reg);
    }
    if let Some(sink) = &sink {
        engine = engine.with_events(sink);
    }
    let engine = &engine;
    let (spec, soc_config) = resolve_backend(point, registry)?;
    let mut soc = spec.instantiate(soc_config.clone());
    if let Some(reg) = &instruments {
        soc.attach_telemetry(reg);
    }
    if let Some(sink) = &sink {
        soc.attach_events(sink);
    }
    let payload = test_pattern(point.bits, point.seed ^ 0x5EED);
    match point.channel {
        ChannelKind::LlcPrimeProbe => {
            let config = llc_channel_config(point, soc_config);
            let mut channel = LlcChannel::with_backend(soc, config)?;
            finish_point(
                &mut channel,
                engine,
                point,
                &payload,
                instruments.as_ref(),
                sink.as_ref(),
            )
        }
        ChannelKind::RingContention => {
            let config = contention_channel_config(point, soc_config);
            let mut channel = ContentionChannel::with_backend(soc, config)?;
            finish_point(
                &mut channel,
                engine,
                point,
                &payload,
                instruments.as_ref(),
                sink.as_ref(),
            )
        }
    }
}

/// Drives any [`CovertChannel`] through the engine (or, for policy-carrying
/// points, the adaptive transceiver) and summarizes the run — the single
/// code path shared by every channel family and backend.
fn finish_point<C: CovertChannel>(
    channel: &mut C,
    engine: &Transceiver,
    point: &SweepPoint,
    payload: &[bool],
    instruments: Option<&Registry>,
    events: Option<&EventSink>,
) -> Result<SweepOutcome, ChannelError> {
    let calibration = channel.calibrate()?;
    let (report, stats) = match point.policy {
        None => engine.transmit_detailed(channel, payload)?,
        Some(kind) => {
            let mut base = *engine.config();
            if !base.framed {
                base = TransceiverConfig::paper_default();
            }
            let mut adaptive = AdaptiveTransceiver::new(AdaptiveConfig {
                window_bits: base.frame_payload_bits.clamp(1, 64),
                base,
            });
            if let Some(reg) = instruments {
                adaptive = adaptive.with_telemetry(reg);
            }
            if let Some(sink) = events {
                adaptive = adaptive.with_events(sink);
            }
            let mut controller = match &point.policy_params {
                Some(params) => params.build(),
                None => kind.build(LinkSetting::new(point.code, 1)),
            };
            adaptive.transmit(channel, controller.as_mut(), payload)?
        }
    };
    // One whole-point span on the sweep track, covering the transmission
    // from the row's time zero: the backdrop the other tracks' events sit
    // on when the timeline is rendered.
    if let Some(sink) = events {
        sink.span(
            EventLayer::Sweep,
            "point",
            Time::ZERO,
            report.elapsed,
            vec![
                ("scenario", point.label().into()),
                ("bits", point.bits.into()),
                ("goodput_kbps", report.goodput_kbps().into()),
            ],
        );
    }
    let coding = report.coding;
    Ok(SweepOutcome {
        bandwidth_kbps: report.bandwidth_kbps(),
        goodput_kbps: report.goodput_kbps(),
        error_rate: report.error_rate(),
        code_rate: coding.map_or(1.0, |c| c.code_rate),
        corrected_bits: stats.corrected_bits,
        residual_errors: coding.map_or(0, |c| c.residual_errors),
        symbol_time_ns: calibration.symbol_time.as_ns_f64(),
        calibration_quality: calibration.quality,
        frames_sent: stats.frames_sent,
        retransmissions: stats.retransmissions,
        diagnostics: channel.diagnostics(),
        adaptation: report.adaptation,
        metrics: instruments.map(Registry::snapshot),
        events: events.map(EventSink::snapshot),
    })
}

/// Runs one point on a recording wrapper around its backend and returns
/// both the measurement and the captured [`Trace`] — the full lifecycle
/// (channel setup, calibration, transmission) is recorded, so the trace
/// replays the identical point in a separate process via
/// [`BackendSpec::replaying`].
///
/// # Errors
///
/// Same failure modes as [`run_point`].
pub fn record_point_trace(
    point: &SweepPoint,
    engine: &Transceiver,
    registry: &BackendRegistry,
) -> Result<(SweepOutcome, Trace), ChannelError> {
    let instruments = Registry::new();
    let engine =
        Transceiver::new(effective_engine(point, engine.config())).with_telemetry(&instruments);
    let engine = &engine;
    let (spec, soc_config) = resolve_backend(point, registry)?;
    let mut soc = TraceRecorder::new(spec.instantiate(soc_config.clone()));
    soc.attach_telemetry(&instruments);
    let payload = test_pattern(point.bits, point.seed ^ 0x5EED);
    match point.channel {
        ChannelKind::LlcPrimeProbe => {
            let config = llc_channel_config(point, soc_config);
            let mut channel = LlcChannel::with_backend(soc, config)?;
            let outcome = finish_point(
                &mut channel,
                engine,
                point,
                &payload,
                Some(&instruments),
                None,
            )?;
            Ok((outcome, channel.backend().trace().clone()))
        }
        ChannelKind::RingContention => {
            let config = contention_channel_config(point, soc_config);
            let mut channel = ContentionChannel::with_backend(soc, config)?;
            let outcome = finish_point(
                &mut channel,
                engine,
                point,
                &payload,
                Some(&instruments),
                None,
            )?;
            Ok((outcome, channel.backend().trace().clone()))
        }
    }
}

/// A constructed, warmed-up and calibrated channel for one grid *cell*,
/// reusable across the code/policy/payload axes that share the cell. The
/// template is cloned per point — every point still runs on its own value
/// snapshot of the backend, eviction sets, RNG state and calibration, so
/// results are bit-identical to rebuilding the channel from scratch.
#[derive(Debug, Clone)]
struct CellTemplate {
    key: String,
    channel: ChannelTemplate,
    /// Snapshot of the telemetry the setup phase produced (backend traffic
    /// during eviction-set construction, warm-up and calibration). Merged
    /// into every derived point's per-point snapshot so rows carry exactly
    /// the metrics a from-scratch run would have accumulated.
    setup_metrics: Option<MetricsSnapshot>,
}

#[derive(Debug, Clone)]
enum ChannelTemplate {
    Llc(Box<LlcChannel<BackendInstance>>),
    Contention(Box<ContentionChannel<BackendInstance>>),
}

/// The axes channel setup depends on. Code, policy and payload length are
/// deliberately absent: they only shape the transmission driven *after*
/// setup, so points differing in nothing else share one template.
fn template_key(point: &SweepPoint) -> String {
    format!(
        "{}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}",
        point.backend,
        point.channel,
        point.noise,
        point.direction,
        point.strategy,
        point.sets_per_role,
        point.gpu_buffer_bytes,
        point.workgroups,
        point.seed,
    )
}

/// Builds and calibrates the channel for a point's cell. Both channel
/// families cache the calibration internally, so [`finish_point`]'s
/// `calibrate()` call on a derived clone returns the stored result without
/// touching the simulation again.
fn build_template(
    point: &SweepPoint,
    registry: &BackendRegistry,
    telemetry: bool,
) -> Result<CellTemplate, ChannelError> {
    let instruments = telemetry.then(Registry::new);
    let (spec, soc_config) = resolve_backend(point, registry)?;
    let mut soc = spec.instantiate(soc_config.clone());
    if let Some(reg) = &instruments {
        soc.attach_telemetry(reg);
    }
    let channel = match point.channel {
        ChannelKind::LlcPrimeProbe => {
            let config = llc_channel_config(point, soc_config);
            let mut channel = LlcChannel::with_backend(soc, config)?;
            CovertChannel::calibrate(&mut channel)?;
            ChannelTemplate::Llc(Box::new(channel))
        }
        ChannelKind::RingContention => {
            let config = contention_channel_config(point, soc_config);
            let mut channel = ContentionChannel::with_backend(soc, config)?;
            CovertChannel::calibrate(&mut channel)?;
            ChannelTemplate::Contention(Box::new(channel))
        }
    };
    Ok(CellTemplate {
        key: template_key(point),
        channel,
        setup_metrics: instruments.as_ref().map(Registry::snapshot),
    })
}

/// Runs one point on a clone of its cell's template. The clone gets a fresh
/// per-point registry (the template's instruments still point at the setup
/// registry); the setup snapshot is merged into the point's snapshot
/// afterwards, which reproduces the single-registry totals exactly —
/// counters add and histogram buckets union, and no instrument on these
/// paths is order-sensitive.
fn run_point_from_template(
    point: &SweepPoint,
    base: &TransceiverConfig,
    cell: &CellTemplate,
    telemetry: bool,
    events: bool,
) -> SweepResult {
    let instruments = telemetry.then(Registry::new);
    let sink = events.then(EventSink::new);
    let mut engine = Transceiver::new(effective_engine(point, base));
    if let Some(reg) = &instruments {
        engine = engine.with_telemetry(reg);
    }
    if let Some(sink) = &sink {
        engine = engine.with_events(sink);
    }
    let payload = test_pattern(point.bits, point.seed ^ 0x5EED);
    let outcome = match &cell.channel {
        ChannelTemplate::Llc(template) => {
            let mut channel = template.clone();
            if let Some(reg) = &instruments {
                channel.backend_mut().attach_telemetry(reg);
            }
            if let Some(sink) = &sink {
                channel.backend_mut().attach_events(sink);
            }
            finish_point(
                &mut *channel,
                &engine,
                point,
                &payload,
                instruments.as_ref(),
                sink.as_ref(),
            )
        }
        ChannelTemplate::Contention(template) => {
            let mut channel = template.clone();
            if let Some(reg) = &instruments {
                channel.backend_mut().attach_telemetry(reg);
            }
            if let Some(sink) = &sink {
                channel.backend_mut().attach_events(sink);
            }
            finish_point(
                &mut *channel,
                &engine,
                point,
                &payload,
                instruments.as_ref(),
                sink.as_ref(),
            )
        }
    };
    let outcome = outcome.map(|mut outcome| {
        if let (Some(setup), Some(metrics)) = (&cell.setup_metrics, outcome.metrics.as_mut()) {
            let mut merged = setup.clone();
            merged.merge(metrics);
            *metrics = merged;
        }
        outcome
    });
    SweepResult {
        point: point.clone(),
        outcome,
    }
}

/// Runs one point through a worker's single-slot template cache: reuse the
/// cached template on a key match, otherwise rebuild it (dropping the stale
/// one first). A cell whose setup fails is not cached — every point of the
/// cell reports the setup error as its own row, exactly as the uncached
/// path would.
fn run_point_cached(
    point: &SweepPoint,
    base: &TransceiverConfig,
    registry: &BackendRegistry,
    telemetry: bool,
    events: bool,
    cache: &mut Option<CellTemplate>,
) -> SweepResult {
    let key = template_key(point);
    if cache.as_ref().is_none_or(|cell| cell.key != key) {
        *cache = None;
        match build_template(point, registry, telemetry) {
            Ok(cell) => *cache = Some(cell),
            Err(err) => {
                return SweepResult {
                    point: point.clone(),
                    outcome: Err(err),
                }
            }
        }
    }
    let cell = cache.as_ref().expect("template cached above");
    run_point_from_template(point, base, cell, telemetry, events)
}

/// Fans sweep points across OS threads.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    engine: TransceiverConfig,
    point_budget: Option<Duration>,
    registry: BackendRegistry,
    telemetry: bool,
    events: bool,
}

impl SweepRunner {
    /// Runner with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            engine: TransceiverConfig::raw(),
            point_budget: None,
            registry: BackendRegistry::standard(),
            telemetry: true,
            events: false,
        }
    }

    /// Runner sized to the machine's available parallelism.
    pub fn with_default_threads() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        SweepRunner::new(threads)
    }

    /// Overrides the engine configuration every point is driven with
    /// (default: raw pass-through, matching the per-figure evaluation).
    pub fn with_engine(mut self, engine: TransceiverConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the backend registry sweep points resolve against
    /// (default: [`BackendRegistry::standard`]) — custom topologies added
    /// with [`BackendRegistry::register`] become selectable by name.
    pub fn with_registry(mut self, registry: BackendRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Caps the wall-clock time of each point. A point that overruns its
    /// budget records [`ChannelError::TimeBudgetExceeded`] in its result row
    /// and the sweep moves on — one pathological grid cell (a huge payload
    /// on a kilobit channel, a drowning calibration loop) cannot stall the
    /// whole grid. The overrunning computation is abandoned to finish on a
    /// detached thread; its result is discarded.
    pub fn with_point_budget(mut self, budget: Duration) -> Self {
        self.point_budget = Some(budget);
        self
    }

    /// Switches per-point telemetry on or off (default: on). With
    /// telemetry off no registry is created at all: every instrument site
    /// compiles down to a skipped branch and [`SweepOutcome::metrics`] is
    /// `None` on every row.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Whether rows will carry a [`SweepOutcome::metrics`] snapshot.
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// Switches per-point timeline event recording on or off (default:
    /// off). With events on, every point gets a private [`EventSink`]
    /// threaded through its backend, engine and (for policy points) the
    /// adaptive transceiver, and the captured [`EventLog`] lands on
    /// [`SweepOutcome::events`]. Recording is purely observational: the
    /// measured rows are bit-identical either way.
    pub fn with_events(mut self, events: bool) -> Self {
        self.events = events;
        self
    }

    /// Whether rows will carry a [`SweepOutcome::events`] log.
    pub fn events(&self) -> bool {
        self.events
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every point, returning results in input order. Each point gets
    /// its own backend and channel, so points are fully independent and the
    /// grid order carries no hidden state.
    pub fn run(&self, points: &[SweepPoint]) -> Vec<SweepResult> {
        self.run_streaming(points, |_, _| {})
    }

    /// Runs every point like [`SweepRunner::run`], additionally invoking
    /// `on_result` with `(grid_index, row)` the moment each point finishes —
    /// in *completion* order, on the calling thread. Long grids can thus be
    /// printed or serialized incrementally instead of buffered whole; the
    /// returned vector is still in input order.
    pub fn run_streaming<F>(&self, points: &[SweepPoint], mut on_result: F) -> Vec<SweepResult>
    where
        F: FnMut(usize, &SweepResult),
    {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<SweepResult>> = vec![None; points.len()];
        std::thread::scope(|scope| {
            let (sender, receiver) = mpsc::channel::<(usize, SweepResult)>();
            for _ in 0..self.threads.min(points.len().max(1)) {
                let sender = sender.clone();
                scope.spawn(|| {
                    let sender = sender;
                    // Single-slot template cache: grids enumerate cells
                    // contiguously, so the previous point's template almost
                    // always serves the next point on the same worker.
                    let mut cache: Option<CellTemplate> = None;
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= points.len() {
                            break;
                        }
                        let result = match self.point_budget {
                            None => run_point_cached(
                                &points[index],
                                &self.engine,
                                &self.registry,
                                self.telemetry,
                                self.events,
                                &mut cache,
                            ),
                            Some(budget) => run_point_with_budget(
                                &points[index],
                                &self.engine,
                                budget,
                                &self.registry,
                                self.telemetry,
                                self.events,
                                &mut cache,
                            ),
                        };
                        // A dropped receiver means the callback side is gone;
                        // workers just finish their current point and stop.
                        if sender.send((index, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            // The workers hold clones; dropping the original lets `recv`
            // terminate once the last worker exits.
            drop(sender);
            while let Ok((index, result)) = receiver.recv() {
                on_result(index, &result);
                slots[index] = Some(result);
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every sweep point produces a result"))
            .collect()
    }
}

/// Runs one point on a detached thread, abandoning it if it exceeds
/// `budget`. Abandonment leaks the worker until it finishes on its own —
/// the simulation has no preemption points — but the sweep itself proceeds
/// and the row records the budget violation as data.
///
/// The template cache lives with the calling worker, not the detached
/// thread: on a cache hit the thread gets a clone and the worker keeps its
/// template even if the point is abandoned; on a miss the whole setup +
/// transmission runs under the budget and the freshly built template is
/// shipped back with the row (and simply lost with it on a timeout).
#[allow(clippy::too_many_arguments)]
fn run_point_with_budget(
    point: &SweepPoint,
    base: &TransceiverConfig,
    budget: Duration,
    registry: &BackendRegistry,
    telemetry: bool,
    events: bool,
    cache: &mut Option<CellTemplate>,
) -> SweepResult {
    let key = template_key(point);
    if cache.as_ref().is_none_or(|cell| cell.key != key) {
        *cache = None;
    }
    let reuse = cache.clone();
    let (sender, receiver) = mpsc::channel();
    let worker_point = point.clone();
    let engine_config = *base;
    let worker_registry = registry.clone();
    std::thread::spawn(move || {
        let outcome = match reuse {
            Some(cell) => (
                run_point_from_template(&worker_point, &engine_config, &cell, telemetry, events),
                None,
            ),
            None => match build_template(&worker_point, &worker_registry, telemetry) {
                Ok(cell) => {
                    let row = run_point_from_template(
                        &worker_point,
                        &engine_config,
                        &cell,
                        telemetry,
                        events,
                    );
                    (row, Some(cell))
                }
                Err(err) => (
                    SweepResult {
                        point: worker_point.clone(),
                        outcome: Err(err),
                    },
                    None,
                ),
            },
        };
        // A receiver dropped after timeout makes this send fail; that is the
        // expected fate of an abandoned point.
        let _ = sender.send(outcome);
    });
    match receiver.recv_timeout(budget) {
        Ok((result, built)) => {
            if built.is_some() {
                *cache = built;
            }
            result
        }
        Err(_) => SweepResult {
            point: point.clone(),
            outcome: Err(ChannelError::TimeBudgetExceeded {
                budget_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
            }),
        },
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

/// The default multi-axis scenario grid: every registry backend × both
/// channels × (quiet, noisy) ambient levels, at the paper-default channel
/// parameters.
pub fn default_grid(bits: usize) -> Vec<SweepPoint> {
    default_grid_for(&BackendRegistry::standard().names(), bits)
}

/// [`default_grid`] restricted to the given registry keys (the
/// `repro --backend <name>` path). Seeds depend only on a point's position
/// within *its backend's* block, so a restricted grid reproduces the same
/// rows the full grid assigns that backend.
pub fn default_grid_for(backends: &[&str], bits: usize) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for backend in backends {
        let mut in_block = 0u64;
        for channel in ChannelKind::ALL {
            for noise in [NoiseLevel::Quiet, NoiseLevel::Noisy] {
                let mut point = SweepPoint::paper_default(*backend, channel, noise);
                point.bits = bits;
                // Distinct seeds *within* a backend's block decorrelate its
                // points; the same grid position deliberately shares its
                // seed *across* backends (common random numbers), so
                // cross-backend deltas are measured under paired noise
                // realizations and a `--backend`-restricted grid reproduces
                // the full grid's rows exactly.
                point.seed = 7 + in_block * 131;
                in_block += 1;
                points.push(point);
            }
        }
    }
    points
}

/// The coded scenario grid: every registry backend × both channels × the
/// given link codes, under the default (quiet) noise preset. All points
/// share one seed per (backend, channel) cell so the code axis is the
/// *only* thing varying within a cell — the raw-vs-coded goodput comparison
/// is apples to apples.
pub fn coded_grid(bits: usize, codes: &[LinkCodeKind]) -> Vec<SweepPoint> {
    coded_grid_for(&BackendRegistry::standard().names(), bits, codes)
}

/// [`coded_grid`] restricted to the given registry keys.
pub fn coded_grid_for(backends: &[&str], bits: usize, codes: &[LinkCodeKind]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for backend in backends {
        let mut cell = 0u64;
        for channel in ChannelKind::ALL {
            cell += 1;
            for &code in codes {
                let mut point = SweepPoint::paper_default(*backend, channel, NoiseLevel::Quiet);
                point.bits = bits;
                point.code = code;
                point.seed = 7 + cell * 131;
                points.push(point);
            }
        }
    }
    points
}

/// The adaptive scenario grid: every registry backend × both channels under
/// the phased quiet→burst noise schedule, with one point per fixed-code
/// baseline (a [`FixedPolicy`] pinned to each code) plus one point per
/// adaptive policy in `policies`. Every point of a (backend, channel) cell
/// shares one seed, so the policy is the *only* thing varying within a cell
/// and the adaptive-vs-fixed goodput comparison runs under paired noise
/// realizations.
///
/// `bits` is the LLC-channel payload; the contention channel moves three
/// times as much. The noise schedule runs on *wall-clock* simulated time,
/// so the slower LLC channel needs fewer bits (its symbols are ~4x longer)
/// for its transmission to span the same number of calm/burst periods — an
/// adaptation comparison over a fraction of one period would just measure
/// phase-alignment luck.
pub fn adaptive_grid(bits: usize, policies: &[PolicyKind]) -> Vec<SweepPoint> {
    adaptive_grid_for(&BackendRegistry::standard().names(), bits, policies)
}

/// [`adaptive_grid`] restricted to the given registry keys.
pub fn adaptive_grid_for(
    backends: &[&str],
    bits: usize,
    policies: &[PolicyKind],
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for backend in backends {
        for (cell, channel) in ChannelKind::ALL.into_iter().enumerate() {
            let cell = cell as u64 + 1;
            let channel_bits = match channel {
                ChannelKind::LlcPrimeProbe => bits,
                ChannelKind::RingContention => bits * 3,
            };
            let base = |policy: PolicyKind, code: LinkCodeKind| {
                let mut point = SweepPoint::paper_default(*backend, channel, NoiseLevel::Phased);
                point.bits = channel_bits;
                point.code = code;
                point.policy = Some(policy);
                point.seed = 7 + cell * 131;
                point
            };
            if policies.contains(&PolicyKind::Fixed) {
                for code in LinkCodeKind::all() {
                    points.push(base(PolicyKind::Fixed, code));
                }
            }
            for &policy in policies {
                if policy != PolicyKind::Fixed {
                    points.push(base(policy, LinkCodeKind::None));
                }
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_axes_extend_keys_only_when_present() {
        // The resume contract: points without scenario axes must keep their
        // historical keys, and attaching parameters or a backend
        // fingerprint must change the key (a re-tuned policy or an edited
        // scenario topology is a different row).
        let base = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Phased,
        )
        .with_policy(PolicyKind::Threshold);
        let defaulted = base
            .clone()
            .with_policy_params(PolicyParams::paper_default(PolicyKind::Threshold));
        assert_ne!(base.key(), defaulted.key());
        let tuned = base.clone().with_policy_params(PolicyParams::Threshold {
            ladder: LinkSetting::ladder(),
            raise_ber: 0.08,
            clear_ber: 0.004,
            patience: 2,
        });
        assert_ne!(defaulted.key(), tuned.key());
        assert_ne!(defaulted.label(), tuned.label());
        let mut fingerprinted = base.clone();
        fingerprinted.backend_fingerprint = Some(TopologySpec::kaby_lake_gen9().fingerprint());
        assert_ne!(base.key(), fingerprinted.key());
        // The fingerprint is resume metadata, not display: labels match.
        assert_eq!(base.label(), fingerprinted.label());
    }

    #[test]
    fn parameterized_policy_points_run_their_custom_controller() {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Phased,
        )
        .with_policy_params(PolicyParams::paper_default(PolicyKind::Threshold));
        point.bits = 448;
        let custom = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let outcome = custom[0].outcome.as_ref().expect("custom policy runs");
        let summary = outcome.adaptation.as_ref().expect("adaptive summary");
        assert!(!summary.trace.windows.is_empty());
        // The paper-default parameter set reproduces the built-in family's
        // rows bit-identically (same constructor calibrations).
        let mut builtin = point.clone();
        builtin.policy_params = None;
        let baseline = SweepRunner::new(1).run(std::slice::from_ref(&builtin));
        let expect = baseline[0].outcome.as_ref().unwrap();
        assert_eq!(outcome.goodput_kbps, expect.goodput_kbps);
        assert_eq!(outcome.error_rate, expect.error_rate);
    }

    #[test]
    fn default_grid_covers_every_registry_backend_and_channel() {
        let registry = BackendRegistry::standard();
        let grid = default_grid(64);
        assert_eq!(grid.len(), registry.len() * ChannelKind::ALL.len() * 2);
        let backends: std::collections::HashSet<_> =
            grid.iter().map(|p| p.backend.clone()).collect();
        let channels: std::collections::HashSet<_> = grid.iter().map(|p| p.channel).collect();
        assert_eq!(backends.len(), registry.len());
        assert_eq!(channels.len(), ChannelKind::ALL.len());
        for name in registry.names() {
            assert!(backends.contains(name), "grid misses {name}");
        }
    }

    #[test]
    fn restricted_grid_reproduces_the_full_grids_rows() {
        let all = default_grid(32);
        let only = default_grid_for(&["icelake-8slice"], 32);
        let from_full: Vec<_> = all
            .iter()
            .filter(|p| p.backend == "icelake-8slice")
            .collect();
        assert_eq!(only.len(), from_full.len());
        for (a, b) in only.iter().zip(from_full) {
            assert_eq!(a.label(), b.label());
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn registered_custom_backend_is_sweepable_by_name() {
        // A caller-registered topology flows through the whole sweep path:
        // grid point by name -> registry resolution -> channel -> result row.
        let registry = BackendRegistry::standard().with_spec(BackendSpec::new(
            "kabylake-12way",
            "paper platform trimmed to a 12-way LLC",
            || TopologySpec::kaby_lake_gen9().with_llc_geometry(2048, 12),
        ));
        let mut point = SweepPoint::paper_default(
            "kabylake-12way",
            ChannelKind::RingContention,
            NoiseLevel::Noiseless,
        );
        point.bits = 48;
        let results = SweepRunner::new(1)
            .with_registry(registry)
            .run(std::slice::from_ref(&point));
        let outcome = results[0].outcome.as_ref().expect("custom backend runs");
        assert!(outcome.error_rate < 0.10, "error {}", outcome.error_rate);
        // The default registry still rejects the name.
        let default_run = SweepRunner::new(1).run(std::slice::from_ref(&point));
        assert!(matches!(
            default_run[0].outcome,
            Err(ChannelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn degenerate_registered_topology_records_an_error_row_not_a_panic() {
        let registry = BackendRegistry::standard().with_spec(BackendSpec::new(
            "broken-geometry",
            "sets-per-slice is not a power of two",
            || TopologySpec::kaby_lake_gen9().with_llc_geometry(1000, 16),
        ));
        let mut point = SweepPoint::paper_default(
            "broken-geometry",
            ChannelKind::RingContention,
            NoiseLevel::Noiseless,
        );
        point.bits = 16;
        let results = SweepRunner::new(2)
            .with_registry(registry)
            .run(std::slice::from_ref(&point));
        match &results[0].outcome {
            Err(ChannelError::InvalidConfig(msg)) => {
                assert!(msg.contains("broken-geometry"), "{msg}");
                assert!(msg.contains("power of two"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn unknown_backend_records_an_error_row_listing_the_registry() {
        let mut point = SweepPoint::paper_default(
            "no-such-soc",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        );
        point.bits = 16;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        match &results[0].outcome {
            Err(ChannelError::InvalidConfig(msg)) => {
                assert!(msg.contains("no-such-soc"), "{msg}");
                assert!(msg.contains("kabylake-gen9"), "{msg}");
                assert!(msg.contains("icelake-8slice"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn streaming_sweep_emits_every_row_incrementally() {
        let grid = default_grid_for(&["kabylake-gen9", "kabylake-ddr5"], 24);
        let mut seen: Vec<usize> = Vec::new();
        let mut streamed_labels = Vec::new();
        let results = SweepRunner::new(3).run_streaming(&grid, |index, row| {
            seen.push(index);
            streamed_labels.push(row.point.label());
        });
        // Every grid index streams exactly once (completion order).
        assert_eq!(seen.len(), grid.len());
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..grid.len()).collect::<Vec<_>>());
        // Streamed rows are the same rows the runner returns.
        for (index, label) in seen.iter().zip(&streamed_labels) {
            assert_eq!(&results[*index].point.label(), label);
        }
    }

    #[test]
    fn parallel_sweep_reproduces_the_serial_results() {
        // The same grid must yield identical rows regardless of worker count
        // or scheduling: every point owns its backend and RNG stream.
        let grid = default_grid(24);
        let serial = SweepRunner::new(1).run(&grid);
        let parallel = SweepRunner::new(4).run(&grid);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.point.label(), b.point.label());
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.bandwidth_kbps, y.bandwidth_kbps, "{}", a.point.label());
                    assert_eq!(x.error_rate, y.error_rate, "{}", a.point.label());
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!(
                    "serial/parallel outcome kind mismatch at {}",
                    a.point.label()
                ),
            }
        }
    }

    #[test]
    fn partitioned_backend_breaks_llc_but_not_contention() {
        let llc = SweepPoint {
            bits: 96,
            ..SweepPoint::paper_default(
                "kabylake-gen9-partitioned",
                ChannelKind::LlcPrimeProbe,
                NoiseLevel::Noiseless,
            )
        };
        let contention = SweepPoint {
            bits: 96,
            channel: ChannelKind::RingContention,
            ..llc.clone()
        };
        let results = SweepRunner::new(2).run(&[llc, contention]);
        let llc_outcome = results[0].outcome.as_ref().expect("LLC point sets up fine");
        let contention_outcome = results[1].outcome.as_ref().expect("contention point runs");
        assert!(
            llc_outcome.error_rate > 0.25,
            "partitioning must degrade Prime+Probe, error {}",
            llc_outcome.error_rate
        );
        assert!(
            contention_outcome.error_rate < 0.05,
            "partitioning alone must not stop the contention channel, error {}",
            contention_outcome.error_rate
        );
    }

    #[test]
    fn infeasible_points_record_errors_instead_of_aborting() {
        // An 8 MB trojan buffer cannot coexist with the spy inside the 8 MB
        // Kaby Lake LLC; the Gen11-class backend absorbs it. One sweep, both
        // outcomes.
        let mut kaby = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Noiseless,
        );
        kaby.gpu_buffer_bytes = 8 * 1024 * 1024;
        kaby.bits = 48;
        let mut gen11 = kaby.clone();
        gen11.backend = "gen11-class".into();
        let results = SweepRunner::new(2).run(&[kaby, gen11]);
        assert!(matches!(
            results[0].outcome,
            Err(ChannelError::InvalidConfig(_))
        ));
        let ok = results[1]
            .outcome
            .as_ref()
            .expect("Gen11-class fits the buffers");
        assert!(ok.error_rate < 0.10);
    }

    #[test]
    fn coded_grid_varies_only_the_code_within_a_cell() {
        let codes = LinkCodeKind::all();
        let grid = coded_grid(64, &codes);
        assert_eq!(
            grid.len(),
            BackendRegistry::standard().len() * ChannelKind::ALL.len() * codes.len()
        );
        for cell in grid.chunks(codes.len()) {
            for point in cell {
                assert_eq!(point.seed, cell[0].seed);
                assert_eq!(point.backend, cell[0].backend);
                assert_eq!(point.noise, NoiseLevel::Quiet);
            }
            let cell_codes: Vec<LinkCodeKind> = cell.iter().map(|p| p.code).collect();
            assert_eq!(cell_codes, codes.to_vec());
        }
    }

    #[test]
    fn coded_points_force_the_framed_engine() {
        let point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Noiseless,
        )
        .with_code(LinkCodeKind::Hamming74);
        let raw = TransceiverConfig::raw();
        let effective = effective_engine(&point, &raw);
        assert!(effective.framed, "a coded point cannot run unframed");
        assert_eq!(effective.code, LinkCodeKind::Hamming74);
        // An explicitly framed base engine is preserved apart from the code.
        let framed = TransceiverConfig {
            frame_payload_bits: 32,
            ..TransceiverConfig::paper_default()
        };
        let effective = effective_engine(&point, &framed);
        assert_eq!(effective.frame_payload_bits, 32);
        assert_eq!(effective.code, LinkCodeKind::Hamming74);
    }

    #[test]
    fn coded_point_reports_coding_outcome() {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        );
        point.bits = 128;
        point.code = LinkCodeKind::rs_default();
        let result = run_point(&point, &Transceiver::raw());
        let outcome = result.outcome.expect("contention channel sets up");
        assert!((outcome.code_rate - 8.0 / 12.0).abs() < 1e-12);
        assert!(outcome.frames_sent >= 2, "128 bits at 64/frame");
        assert!(outcome.goodput_kbps > 0.0);
        assert!(
            outcome.goodput_kbps <= outcome.bandwidth_kbps + 1e-9,
            "goodput can never exceed raw bandwidth"
        );
    }

    #[test]
    fn a_coded_configuration_beats_the_uncoded_baseline_goodput() {
        // The PR's acceptance bar: under the default (quiet) noise preset at
        // least one coded configuration must deliver strictly more goodput
        // than the NoCode baseline of the same cell.
        let codes = LinkCodeKind::all();
        let grid = coded_grid(128, &codes);
        let cell = &grid[..codes.len()]; // KabyLake+Gen9 / LLC / quiet
        assert_eq!(cell[0].code, LinkCodeKind::None);
        let results = SweepRunner::with_default_threads()
            .with_engine(TransceiverConfig::paper_default())
            .run(cell);
        let goodput = |i: usize| {
            results[i]
                .outcome
                .as_ref()
                .expect("quiet-noise cell sets up")
                .goodput_kbps
        };
        let baseline = goodput(0);
        let best_coded = (1..codes.len())
            .map(goodput)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_coded > baseline,
            "best coded goodput {best_coded:.1} kb/s must beat the uncoded {baseline:.1} kb/s"
        );
    }

    #[test]
    fn exhausted_time_budget_is_recorded_not_fatal() {
        let mut slow = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::LlcPrimeProbe,
            NoiseLevel::Quiet,
        );
        slow.bits = 4096;
        let results = SweepRunner::new(1)
            .with_point_budget(Duration::ZERO)
            .run(std::slice::from_ref(&slow));
        assert!(matches!(
            results[0].outcome,
            Err(ChannelError::TimeBudgetExceeded { budget_ms: 0 })
        ));

        // A generous budget leaves results untouched.
        let mut quick = slow.clone();
        quick.bits = 24;
        let budgeted = SweepRunner::new(1)
            .with_point_budget(Duration::from_secs(600))
            .run(std::slice::from_ref(&quick));
        let unbudgeted = SweepRunner::new(1).run(std::slice::from_ref(&quick));
        match (&budgeted[0].outcome, &unbudgeted[0].outcome) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.bandwidth_kbps, b.bandwidth_kbps);
                assert_eq!(a.error_rate, b.error_rate);
            }
            _ => panic!("both runs must succeed"),
        }
    }

    #[test]
    fn sweep_rows_carry_backend_and_link_metrics() {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Noiseless,
        );
        point.bits = 48;
        let results = SweepRunner::new(1)
            .with_engine(TransceiverConfig::paper_default())
            .run(std::slice::from_ref(&point));
        let outcome = results[0].outcome.as_ref().unwrap();
        let metrics = outcome.metrics.as_ref().expect("telemetry defaults on");
        for group in ["llc", "ring", "dram", "link", "phase"] {
            assert!(
                metrics.groups().iter().any(|g| g == group),
                "missing group {group} in {:?}",
                metrics.groups()
            );
        }
        assert_eq!(
            metrics.counter("link.frames_sent"),
            Some(outcome.frames_sent as u64),
            "registry and LinkStats must agree"
        );
        assert!(metrics.counter_total("llc.") > 0);
        assert!(metrics.counter("ring.crossings").unwrap() > 0);
        assert!(metrics.histogram("phase.simulate_ns").unwrap().count() > 0);
    }

    #[test]
    fn adaptive_rows_count_rung_switches_in_the_registry() {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Phased,
        )
        .with_policy(PolicyKind::Threshold);
        point.bits = 448;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let outcome = results[0].outcome.as_ref().unwrap();
        let metrics = outcome.metrics.as_ref().unwrap();
        let summary = outcome.adaptation.as_ref().unwrap();
        assert_eq!(
            metrics.counter("adapt.rung_switches"),
            Some(summary.switches as u64)
        );
        assert_eq!(
            metrics.histogram("phase.adapt_ns").unwrap().count(),
            summary.trace.windows.len() as u64
        );
    }

    #[test]
    fn disabled_telemetry_drops_metrics_but_not_determinism() {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        );
        point.bits = 48;
        let on = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let off = SweepRunner::new(1)
            .with_telemetry(false)
            .run(std::slice::from_ref(&point));
        let with = on[0].outcome.as_ref().unwrap();
        let without = off[0].outcome.as_ref().unwrap();
        assert!(with.metrics.is_some());
        assert!(without.metrics.is_none());
        // Instrumentation is observational: the simulated results are
        // bit-identical either way.
        assert_eq!(with.bandwidth_kbps, without.bandwidth_kbps);
        assert_eq!(with.error_rate, without.error_rate);
        assert_eq!(with.frames_sent, without.frames_sent);
    }

    #[test]
    fn framed_engine_reports_link_stats() {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Noiseless,
        );
        point.bits = 96;
        let results = SweepRunner::new(1)
            .with_engine(TransceiverConfig::paper_default())
            .run(std::slice::from_ref(&point));
        let outcome = results[0].outcome.as_ref().unwrap();
        assert!(
            outcome.frames_sent >= 2,
            "96 bits at 64/frame needs 2 frames"
        );
        assert!(outcome.error_rate < 0.05);
    }
}
