//! `repro` — regenerates every table and figure of the Leaky Buddies
//! evaluation against the simulated SoC and prints them side by side with
//! the values the paper reports.
//!
//! Usage:
//!
//! ```text
//! repro [--fig4] [--fig7] [--fig8] [--fig9] [--fig10] [--headline]
//!       [--slice-hash] [--l3] [--ablation] [--sweep] [--all] [--quick]
//!       [--code <spec>[,<spec>...]] [--policy <name>[,<name>...]]
//!       [--backend <name>] [--out <path>] [--resume <prior.json>]
//!       [--scenario <file>]... [--validate-scenario <file>]...
//!       [--list-backends] [--check-baseline <file>]
//!       [--metrics-out <path>] [--no-progress] [--no-telemetry]
//!       [--validate-metrics <path>]
//!       [--trace-timeline <path>] [--validate-timeline <path>]
//!       [--record-trace <path>] [--replay-trace <path>]
//! ```
//!
//! With no experiment flag, `--all` is assumed. `--quick` shrinks the bit
//! counts for a fast smoke run. Unknown flags and bad values exit 2 (see
//! `--help`).
//!
//! The `--sweep` sections are driven by **scenario files** (the versioned
//! `scenario-v1` schema of the `scenario` crate): named topologies, tuned
//! adaptation policies and sweep-grid sections, all declared as JSON.
//! `--scenario <file>` (repeatable) selects the files to run; with no
//! `--scenario`, the embedded copy of `scenarios/default.json` — the
//! built-in classic/coded/adaptive grid — runs, bit-identical to the
//! pre-scenario behaviour. Scenario topologies register as backends next
//! to the compiled-in presets (visible in `--list-backends`, recordable
//! with `--record-trace`), and their points carry the topology fingerprint
//! in their resume keys, so `--resume` against an edited scenario file
//! re-simulates the affected rows instead of replaying stale ones.
//! `--validate-scenario <file>` (repeatable) parses and materializes each
//! file without running anything, then exits: 0 with a per-file summary,
//! or 1 with the field path of the first error — the CI scenario matrix
//! runs it over every committed file.
//!
//! `--list-backends` prints the backend registry (name, slice count, LLC
//! capacity, DRAM generation), including any `--scenario` topologies, and
//! exits. `--backend <name>` restricts the `--sweep` sections to one
//! registry backend; an unknown name exits 2 after printing the available
//! keys.
//!
//! `--code` selects the link-code axis of `coded` sweep sections that do
//! not pin their own: a comma-separated list of `none`, `crc8`,
//! `hamming74`, `rs`, `rs(n,k)` or `rs(n,k,depth)`, or `all` (the default)
//! for every family. `--policy` selects the link-control policies of
//! `adaptive` sections that do not pin their own (`threshold`, `aimd`,
//! `bandit`, `fixed`, or `all`; the fixed-code baselines always run so the
//! adaptive-vs-fixed comparison is complete); an unknown name exits 2
//! listing the known policies. `--out <path>` streams the sweep rows to
//! disk as JSON, appending each row the moment its sweep point finishes.
//!
//! `--resume <prior.json>` makes the `--sweep` sections incremental: every
//! row of the prior `--sweep --out` document whose point key (an
//! order-independent hash over all grid axes) matches a point of the fresh
//! grid is replayed verbatim — terminal, `--out` file, telemetry aggregate
//! and baseline gate all see it — and only the remaining points are
//! simulated. Unchanged reruns thus finish in seconds; after a config
//! change, exactly the affected cells re-run. A file that is not a sweep
//! document exits 2; rows that recorded failures are always re-run.
//!
//! `--check-baseline <file>` is the CI performance-regression gate: after
//! the `--sweep` sections finish, every fresh cell is compared against the
//! committed baseline document (itself a `--sweep --out` file, normally
//! `bench/baseline.json` recorded with `--quick`) and the run exits 2
//! listing every cell whose goodput fell more than 15 % below its recorded
//! value. Refresh the baseline by re-recording it with the same flags
//! (`repro --quick --sweep --out bench/baseline.json`).
//!
//! The `--sweep` sections report progress (points done/total, completion
//! rate, ETA) to stderr while the grid runs; `--no-progress` silences the
//! reporter for log-oriented runs. Each sweep point also records telemetry —
//! LLC, ring, DRAM, link and adaptation counters plus per-phase timing
//! histograms — into a per-point registry; the aggregated snapshot prints as
//! a "where the time goes" table after the sweep and, with `--metrics-out
//! <path>`, is written as a `metrics-v1` JSON document. `--no-telemetry`
//! turns the per-point registries off (the sweep rows then carry no
//! `metrics` object). `--validate-metrics <path>` re-parses a previously
//! written metrics document through the in-repo JSON parser and exits
//! non-zero unless the schema tag, the counter groups and the per-phase
//! histograms are all present — the CI smoke step runs it over the artifact
//! it just produced.
//!
//! `--trace-timeline <path>` turns on the cross-layer event timeline for
//! the `--sweep` sections: every simulated point records noise-phase
//! transitions, frame verdicts, adaptation decisions and whole-point spans
//! into a per-point event sink, a small dedicated duplex exchange
//! contributes the slot-grant track (sweep points never run the duplex
//! scheduler), and everything is written to `path` as Chrome trace-event
//! JSON — load it in `chrome://tracing` or Perfetto, one process per
//! point, one named track per layer (sim, noise, link, adapt, duplex,
//! sweep). Timeline capture is purely observational: rows, goodput and the
//! baseline gate are bit-identical with it on or off. Resumed rows were
//! not simulated, so they contribute no timeline process.
//! `--validate-timeline <path>` re-parses such a file through the in-repo
//! JSON parser and exits non-zero unless the document is structurally
//! sound and names all six layer tracks — the CI smoke step runs it over
//! the artifact it just produced.
//!
//! `--record-trace <path>` records one LLC-channel point (honouring
//! `--backend`, including scenario topologies) through a trace recorder
//! and serializes the full access trace to `path`; `--replay-trace <path>`
//! loads such a file in a fresh process, registers it as a `trace-file`
//! backend and re-runs the recorded point against the replayer, printing
//! both rows side by side.

use bench::*;
use covert::prelude::{LinkCodeKind, PolicyKind, TransceiverConfig};
use scenario::{Scenario, SectionKind};
use soc_sim::prelude::{BackendRegistry, BackendSpec, MetricsSnapshot, Registry};
use std::path::{Path, PathBuf};

/// The built-in default grid, embedded so `repro --sweep` needs no file on
/// disk: the committed `scenarios/default.json`, byte for byte.
const DEFAULT_SCENARIO_TEXT: &str = include_str!("../../../../scenarios/default.json");

const USAGE: &str = "\
usage: repro [flags]

experiments (default: --all)
  --fig4 --fig7 --fig8 --fig9 --fig10 --headline
  --slice-hash --l3 --ablation --sweep --all
  --quick                 shrink bit counts for a fast smoke run

sweep configuration (require --sweep)
  --scenario <file>       scenario file to run (repeatable; default: the
                          embedded scenarios/default.json)
  --backend <name>        restrict the sweep sections to one backend
  --code <list>           link codes for coded sections without their own
                          (none,crc8,hamming74,rs,rs(n,k)[,..] or all)
  --policy <list>         policies for adaptive sections without their own
                          (fixed,threshold,aimd,bandit or all)
  --out <path>            stream sweep rows to a JSON document
  --resume <prior.json>   reuse matching rows of a prior --out document
  --check-baseline <file> regression gate against a committed baseline
  --metrics-out <path>    write the aggregated telemetry document
  --trace-timeline <path> write a Chrome trace-event timeline
  --no-progress           silence the stderr progress reporter
  --no-telemetry          disable per-point telemetry registries

standalone modes (exit after running)
  --list-backends             print the backend registry (with scenarios)
  --validate-scenario <file>  parse + materialize a scenario file (repeatable)
  --validate-metrics <path>   check a metrics document
  --validate-timeline <path>  check a timeline document
  --record-trace <path>       record one LLC point's access trace
  --replay-trace <path>       replay a recorded trace against the oracle
  --help                      print this text";

/// Every flag, parsed once up front. Flags that select optional axes keep
/// the given/absent distinction (`Option`) so sections that pin their own
/// axes are left alone and the "ignored without --sweep" notes only fire
/// for flags that were actually passed.
struct Args {
    fig4: bool,
    fig7: bool,
    fig8: bool,
    fig9: bool,
    fig10: bool,
    headline: bool,
    slice_hash: bool,
    l3: bool,
    ablation: bool,
    sweep: bool,
    quick: bool,
    codes: Option<Vec<LinkCodeKind>>,
    policies: Option<Vec<PolicyKind>>,
    backend: Option<String>,
    list_backends: bool,
    scenarios: Vec<PathBuf>,
    validate_scenarios: Vec<PathBuf>,
    out: Option<PathBuf>,
    resume: Option<PathBuf>,
    check_baseline: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    no_progress: bool,
    no_telemetry: bool,
    validate_metrics: Option<PathBuf>,
    trace_timeline: Option<PathBuf>,
    validate_timeline: Option<PathBuf>,
    record_trace: Option<PathBuf>,
    replay_trace: Option<PathBuf>,
}

/// Prints an error and exits 2 — the contract for every bad flag or value.
fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Parses a `--code` argument: `all` or a comma-separated list of specs.
fn parse_codes(spec: &str) -> Result<Vec<LinkCodeKind>, String> {
    if spec.trim().eq_ignore_ascii_case("all") {
        return Ok(LinkCodeKind::all().to_vec());
    }
    spec.split(',')
        .map(LinkCodeKind::parse)
        .collect::<Result<Vec<_>, _>>()
}

/// Parses a `--policy` argument: `all` or a comma-separated list of policy
/// names.
fn parse_policies(spec: &str) -> Result<Vec<PolicyKind>, String> {
    if spec.trim().eq_ignore_ascii_case("all") {
        return Ok(PolicyKind::ALL.to_vec());
    }
    spec.split(',')
        .map(PolicyKind::parse)
        .collect::<Result<Vec<_>, _>>()
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            fig4: false,
            fig7: false,
            fig8: false,
            fig9: false,
            fig10: false,
            headline: false,
            slice_hash: false,
            l3: false,
            ablation: false,
            sweep: false,
            quick: false,
            codes: None,
            policies: None,
            backend: None,
            list_backends: false,
            scenarios: Vec::new(),
            validate_scenarios: Vec::new(),
            out: None,
            resume: None,
            check_baseline: None,
            metrics_out: None,
            no_progress: false,
            no_telemetry: false,
            validate_metrics: None,
            trace_timeline: None,
            validate_timeline: None,
            record_trace: None,
            replay_trace: None,
        };
        let mut all = false;
        let mut any_specific = false;
        let mut raw = std::env::args().skip(1);
        // Every flag is handled in exactly one match arm; flags that take
        // a value consume the next argument. Anything unrecognized exits
        // 2 — a typoed flag silently running the full default suite helps
        // nobody.
        while let Some(arg) = raw.next() {
            let mut value = |flag: &str| -> String {
                raw.next()
                    .unwrap_or_else(|| die(&format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                "--all" => all = true,
                "--fig4" => args.fig4 = true,
                "--fig7" => args.fig7 = true,
                "--fig8" => args.fig8 = true,
                "--fig9" => args.fig9 = true,
                "--fig10" => args.fig10 = true,
                "--headline" => args.headline = true,
                "--slice-hash" => args.slice_hash = true,
                "--l3" => args.l3 = true,
                "--ablation" => args.ablation = true,
                "--sweep" => args.sweep = true,
                "--quick" => args.quick = true,
                "--code" => {
                    args.codes =
                        Some(parse_codes(&value("--code")).unwrap_or_else(|err| die(&err)));
                }
                "--policy" => {
                    // The known-policy list is part of the parse error.
                    args.policies =
                        Some(parse_policies(&value("--policy")).unwrap_or_else(|err| die(&err)));
                }
                "--backend" => args.backend = Some(value("--backend")),
                "--list-backends" => args.list_backends = true,
                "--scenario" => args.scenarios.push(PathBuf::from(value("--scenario"))),
                "--validate-scenario" => args
                    .validate_scenarios
                    .push(PathBuf::from(value("--validate-scenario"))),
                "--out" => args.out = Some(PathBuf::from(value("--out"))),
                "--resume" => args.resume = Some(PathBuf::from(value("--resume"))),
                "--check-baseline" => {
                    args.check_baseline = Some(PathBuf::from(value("--check-baseline")))
                }
                "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out"))),
                "--no-progress" => args.no_progress = true,
                "--no-telemetry" => args.no_telemetry = true,
                "--validate-metrics" => {
                    args.validate_metrics = Some(PathBuf::from(value("--validate-metrics")))
                }
                "--trace-timeline" => {
                    args.trace_timeline = Some(PathBuf::from(value("--trace-timeline")))
                }
                "--validate-timeline" => {
                    args.validate_timeline = Some(PathBuf::from(value("--validate-timeline")))
                }
                "--record-trace" => {
                    args.record_trace = Some(PathBuf::from(value("--record-trace")))
                }
                "--replay-trace" => {
                    args.replay_trace = Some(PathBuf::from(value("--replay-trace")))
                }
                other => die(&format!("unknown flag {other:?} (see repro --help)")),
            }
            any_specific |= matches!(
                arg.as_str(),
                "--fig4"
                    | "--fig7"
                    | "--fig8"
                    | "--fig9"
                    | "--fig10"
                    | "--headline"
                    | "--slice-hash"
                    | "--l3"
                    | "--ablation"
                    | "--sweep"
            );
        }
        if all || !any_specific {
            args.fig4 = true;
            args.fig7 = true;
            args.fig8 = true;
            args.fig9 = true;
            args.fig10 = true;
            args.headline = true;
            args.slice_hash = true;
            args.l3 = true;
            args.ablation = true;
            args.sweep = true;
        }
        args
    }

    /// Every sweep-only flag that was given, with what it configures — the
    /// single "ignored without --sweep" path (see `main`'s else branch).
    fn sweep_only_flags(&self) -> Vec<(String, &'static str)> {
        let mut given: Vec<(String, &'static str)> = Vec::new();
        let mut path_flag = |flag: &str, value: &Option<PathBuf>, purpose: &'static str| {
            if let Some(path) = value {
                given.push((format!("{flag} {}", path.display()), purpose));
            }
        };
        path_flag("--out", &self.out, "serializes the --sweep rows");
        path_flag("--resume", &self.resume, "reuses prior --sweep rows");
        path_flag(
            "--check-baseline",
            &self.check_baseline,
            "gates the --sweep results",
        );
        path_flag(
            "--metrics-out",
            &self.metrics_out,
            "aggregates --sweep telemetry",
        );
        path_flag(
            "--trace-timeline",
            &self.trace_timeline,
            "records --sweep events",
        );
        if let Some(name) = &self.backend {
            given.push((
                format!("--backend {name}"),
                "restricts the --sweep sections; the figure experiments model the paper platform",
            ));
        }
        if self.codes.is_some() {
            given.push((
                "--code".to_string(),
                "selects the --sweep link-code axis; the figure experiments run the paper's \
                 fixed configurations",
            ));
        }
        if self.policies.is_some() {
            given.push((
                "--policy".to_string(),
                "selects the --sweep adaptation policies",
            ));
        }
        for path in &self.scenarios {
            given.push((
                format!("--scenario {}", path.display()),
                "declares --sweep sections",
            ));
        }
        given
    }
}

fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Live progress for one sweep section: points done/total, completion rate
/// and a coarse ETA, printed to stderr so stdout stays reserved for the
/// result rows (`repro --sweep > rows.txt` pipelines keep working). Updates
/// are throttled to about one line per second plus a final line, so CI logs
/// stay readable; `--no-progress` silences the reporter entirely.
///
/// With `--resume`, rows replayed from the prior document are counted
/// separately from simulated ones (`replayed/simulated/total`): replayed
/// rows cost microseconds, and folding them into the rate would wreck the
/// ETA of the rows actually being simulated.
struct Progress {
    enabled: bool,
    section: String,
    /// Points this section simulates (excludes replayed rows).
    simulated_total: usize,
    /// Rows replayed verbatim from the `--resume` document.
    replayed: usize,
    done: usize,
    started: std::time::Instant,
    last_print: Option<std::time::Instant>,
}

impl Progress {
    fn start(enabled: bool, section: String, simulated_total: usize, replayed: usize) -> Progress {
        let progress = Progress {
            enabled,
            section,
            simulated_total,
            replayed,
            done: 0,
            started: std::time::Instant::now(),
            last_print: None,
        };
        if enabled {
            eprintln!("[{}] {}", progress.section, progress.tally());
        }
        progress
    }

    /// The `replayed/simulated/total` counts; the replayed part only
    /// appears when `--resume` actually replayed something.
    fn tally(&self) -> String {
        if self.replayed == 0 {
            return format!("{}/{} points", self.done, self.simulated_total);
        }
        format!(
            "{} replayed, {}/{} simulated, {}/{} total",
            self.replayed,
            self.done,
            self.simulated_total,
            self.replayed + self.done,
            self.replayed + self.simulated_total
        )
    }

    fn tick(&mut self) {
        self.done += 1;
        if !self.enabled {
            return;
        }
        let finished = self.done >= self.simulated_total;
        let due = match self.last_print {
            None => true,
            Some(last) => last.elapsed() >= std::time::Duration::from_secs(1),
        };
        if !finished && !due {
            return;
        }
        self.last_print = Some(std::time::Instant::now());
        // Rate and ETA cover simulated rows only (see the struct docs).
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = self.done as f64 / elapsed;
        let eta = self.simulated_total.saturating_sub(self.done) as f64 / rate.max(1e-9);
        eprintln!(
            "[{}] {} ({:.1} rows/s, ETA {:.0}s)",
            self.section,
            self.tally(),
            rate,
            eta
        );
    }
}

/// One row headed for the terminal, the `--out` document, the telemetry
/// aggregate and the baseline gate: freshly measured, or replayed verbatim
/// from the `--resume` document.
enum SweepRow<'r> {
    Fresh(&'r SweepResult),
    Resumed(&'r ResumedRow),
}

/// Splits a sweep grid into the points whose rows the resume cache already
/// holds and the points still to simulate (grid order preserved on both
/// sides).
fn split_resumed(
    grid: Vec<SweepPoint>,
    cache: Option<&mut ResumeCache>,
) -> (Vec<SweepPoint>, Vec<ResumedRow>) {
    let Some(cache) = cache else {
        return (grid, Vec::new());
    };
    let mut fresh = Vec::with_capacity(grid.len());
    let mut reused = Vec::new();
    for point in grid {
        match cache.take(&point.key()) {
            Some(row) => reused.push(row),
            None => fresh.push(point),
        }
    }
    (fresh, reused)
}

/// How a section's result rows print: the three table layouts of the
/// classic, coded and adaptive sweeps. Grid sections borrow whichever
/// layout fits their axes (any policy → adaptive, framed → coded, else
/// classic).
#[derive(Clone, Copy, PartialEq)]
enum RowStyle {
    Classic,
    Coded,
    Adaptive,
}

impl RowStyle {
    fn for_section(section: &MaterializedSection) -> RowStyle {
        if section.points.iter().any(|p| p.policy.is_some()) {
            RowStyle::Adaptive
        } else if section.framed {
            RowStyle::Coded
        } else {
            RowStyle::Classic
        }
    }

    /// Width of the scenario-label column (kept per style so the default
    /// grid's output stays column-identical to the pre-scenario binary).
    fn label_width(self) -> usize {
        match self {
            RowStyle::Classic => 58,
            RowStyle::Coded => 64,
            RowStyle::Adaptive => 68,
        }
    }

    fn print_header(self) {
        match self {
            RowStyle::Classic => println!(
                "{:<58} {:>12} {:>9} {:>12} {:>8}",
                "scenario", "kb/s", "error", "symbol (ns)", "quality"
            ),
            RowStyle::Coded => println!(
                "{:<64} {:>10} {:>10} {:>7} {:>9} {:>9} {:>8}",
                "scenario", "kb/s", "goodput", "rate", "corrected", "residual", "retx"
            ),
            RowStyle::Adaptive => println!(
                "{:<68} {:>10} {:>8} {:>9} {:>16}",
                "scenario", "goodput", "error", "switches", "final setting"
            ),
        }
    }

    fn print_row(self, result: &SweepResult) {
        let label = result.point.label();
        let outcome = match &result.outcome {
            Ok(outcome) => outcome,
            Err(err) => {
                println!(
                    "{:<width$} unusable: {err}",
                    label,
                    width = self.label_width()
                );
                return;
            }
        };
        match self {
            RowStyle::Classic => println!(
                "{:<58} {:>12.1} {:>8.2}% {:>12.0} {:>8.1}",
                label,
                outcome.bandwidth_kbps,
                outcome.error_rate * 100.0,
                outcome.symbol_time_ns,
                outcome.calibration_quality,
            ),
            RowStyle::Coded => println!(
                "{:<64} {:>10.1} {:>10.1} {:>7.2} {:>9} {:>9} {:>8}",
                label,
                outcome.bandwidth_kbps,
                outcome.goodput_kbps,
                outcome.code_rate,
                outcome.corrected_bits,
                outcome.residual_errors,
                outcome.retransmissions,
            ),
            RowStyle::Adaptive => {
                let (switches, final_setting) = match &outcome.adaptation {
                    Some(a) => (
                        a.switches.to_string(),
                        covert::prelude::LinkSetting::new(a.final_code, a.final_symbol_repeat)
                            .label(),
                    ),
                    None => ("-".into(), "-".into()),
                };
                println!(
                    "{:<68} {:>10.1} {:>7.2}% {:>9} {:>16}",
                    label,
                    outcome.goodput_kbps,
                    outcome.error_rate * 100.0,
                    switches,
                    final_setting,
                );
            }
        }
    }
}

/// Section banner title, keyed by kind (the classic/coded/adaptive titles
/// match the pre-scenario binary's).
fn section_title(kind: SectionKind) -> &'static str {
    match kind {
        SectionKind::Classic => "Scenario sweep: backend x channel x noise, in parallel",
        SectionKind::Coded => "Link-code sweep: raw vs coded goodput (framed engine, quiet noise)",
        SectionKind::Adaptive => {
            "Adaptive link control: policies vs fixed codes, phased quiet/burst noise"
        }
        SectionKind::Grid => "Grid sweep: explicit axis cross-product",
    }
}

/// Distinct values of a per-point label, in first-appearance order.
fn distinct_labels(
    points: &[SweepPoint],
    label: impl Fn(&SweepPoint) -> Option<String>,
) -> Vec<String> {
    let mut seen = Vec::new();
    for point in points {
        if let Some(l) = label(point) {
            if !seen.contains(&l) {
                seen.push(l);
            }
        }
    }
    seen
}

/// The point `--record-trace` captures: the LLC channel at paper defaults
/// on the selected backend, short enough to keep the trace file small.
fn trace_point(backend: &str, quick: bool) -> SweepPoint {
    let mut point =
        SweepPoint::paper_default(backend, ChannelKind::LlcPrimeProbe, NoiseLevel::Quiet);
    point.bits = if quick { 24 } else { 64 };
    point
}

fn record_trace_mode(
    path: &std::path::Path,
    backend: Option<&str>,
    quick: bool,
    registry: &BackendRegistry,
) {
    let point = trace_point(backend.unwrap_or("kabylake-gen9"), quick);
    banner("Trace capture");
    println!("recording {}", point.label());
    let engine = covert::prelude::Transceiver::raw();
    match record_point_trace(&point, &engine, registry) {
        Ok((outcome, trace)) => {
            if let Err(err) = write_trace(path, &point, &trace) {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
            println!(
                "recorded: {:.1} kb/s, {:.2}% error, {} events ({} dropped) -> {}",
                outcome.bandwidth_kbps,
                outcome.error_rate * 100.0,
                trace.events().len(),
                trace.dropped(),
                path.display()
            );
            println!("replay with: repro --replay-trace {}", path.display());
        }
        Err(err) => {
            eprintln!("error: trace point failed: {err}");
            std::process::exit(1);
        }
    }
}

/// `--validate-metrics`: re-parses an aggregated telemetry document through
/// the in-repo JSON parser and checks the facts downstream tooling depends
/// on — the schema tag, a positive point count, the counter groups each
/// instrumented layer contributes and a non-empty per-phase breakdown. The
/// CI smoke step runs this over the artifact the quick sweep just wrote.
fn validate_metrics_mode(path: &std::path::Path) {
    banner("Metrics document validation");
    let fail = |message: String| -> ! {
        eprintln!("error: {message}");
        std::process::exit(1);
    };
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(format!("could not read {}: {err}", path.display())));
    let document = parse_json(&body)
        .unwrap_or_else(|err| fail(format!("{} is not valid JSON: {err}", path.display())));
    let schema = document.get("schema").and_then(JsonValue::as_str);
    if schema != Some(METRICS_SCHEMA) {
        fail(format!("schema {schema:?} is not {METRICS_SCHEMA:?}"));
    }
    let points = document
        .get("points")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let snapshot = match document.get("metrics") {
        None => fail("document lacks a metrics object".into()),
        Some(metrics) => parse_metrics_snapshot(metrics).unwrap_or_else(|err| fail(err)),
    };
    if points < 1.0 || snapshot.is_empty() {
        fail(format!(
            "document carries no telemetry (points={points}, metrics={})",
            snapshot.len()
        ));
    }
    let groups = snapshot.groups();
    for required in ["llc", "ring", "dram", "link", "adapt", "phase"] {
        if !groups.iter().any(|g| g == required) {
            fail(format!(
                "metric group '{required}' is missing (have: {})",
                groups.join(", ")
            ));
        }
    }
    if snapshot
        .histogram("phase.simulate_ns")
        .is_none_or(|h| h.count() == 0)
    {
        fail("the phase.simulate_ns histogram is missing or empty".into());
    }
    println!(
        "{} OK: {} metrics over {points} points; groups: {}",
        path.display(),
        snapshot.len(),
        groups.join(", ")
    );
}

/// `--validate-timeline`: re-parses a Chrome-trace timeline document (see
/// `--trace-timeline`) through the in-repo JSON parser and exits non-zero
/// unless it is structurally sound and names all six layer tracks. The CI
/// smoke step runs this over the artifact the quick sweep just wrote.
fn validate_timeline_mode(path: &std::path::Path) {
    banner("Timeline document validation");
    let body = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: could not read {}: {err}", path.display());
        std::process::exit(1);
    });
    match validate_timeline(&body) {
        Ok(summary) => println!(
            "{} OK: {} events over {} timeline point(s); tracks: {}",
            path.display(),
            summary.events,
            summary.points,
            summary.tracks.join(", ")
        ),
        Err(err) => {
            eprintln!("error: {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}

/// `--validate-scenario`: parses and materializes each file without
/// running anything — schema errors carry field paths, materializer errors
/// carry `sweeps[i].axis` paths, and CI runs this over every committed
/// scenario before the smoke sweep. All files are checked even after a
/// failure so one run reports every broken file.
fn validate_scenario_mode(paths: &[PathBuf]) {
    banner("Scenario validation");
    let mut failed = false;
    for path in paths {
        match validate_one_scenario(path) {
            Ok(line) => println!("{line}"),
            Err(err) => {
                eprintln!("error: {err}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn validate_one_scenario(path: &Path) -> Result<String, String> {
    let scenario = load_scenario(path)?;
    let at_file = |err: String| format!("{}: {err}", path.display());
    let registry = scenario_registry(std::slice::from_ref(&scenario)).map_err(at_file)?;
    let overrides = GridOverrides::default();
    let quick = materialize_sections(&scenario, &registry, true, &overrides).map_err(at_file)?;
    let full = materialize_sections(&scenario, &registry, false, &overrides)
        .map_err(|err| format!("{}: {err}", path.display()))?;
    let quick_points: usize = quick.iter().map(|s| s.points.len()).sum();
    let full_points: usize = full.iter().map(|s| s.points.len()).sum();
    Ok(format!(
        "{} OK: scenario '{}' — {} topologies, {} policies, {} sections \
         ({quick_points} quick / {full_points} full points)",
        path.display(),
        scenario.name,
        scenario.topologies.len(),
        scenario.policies.len(),
        scenario.sweeps.len(),
    ))
}

fn replay_trace_mode(path: &std::path::Path, registry: &BackendRegistry) {
    banner("Trace replay");
    let (mut point, trace) = read_trace(path, registry).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(1);
    });
    println!(
        "loaded {} ({} events, {} dropped), recorded on '{}'",
        path.display(),
        trace.events().len(),
        trace.dropped(),
        point.backend
    );
    // The trace becomes a named backend; the recorded point re-runs against
    // it through the ordinary sweep machinery. The replayer is a strict
    // oracle — any divergence from the recorded access sequence aborts with
    // the position of the first mismatch, so a row that prints below is the
    // recorded run, bit for bit.
    let replay_registry = registry.clone().with_spec(BackendSpec::replaying(
        "trace-file",
        "trace loaded from disk",
        trace,
    ));
    point.backend = "trace-file".into();
    let result = run_point_with_registry(
        &point,
        &covert::prelude::Transceiver::raw(),
        &replay_registry,
    );
    match result.outcome {
        Ok(outcome) => println!(
            "replayed: {:.1} kb/s, {:.2}% error, {} frames — no divergence from the recording",
            outcome.bandwidth_kbps,
            outcome.error_rate * 100.0,
            outcome.frames_sent
        ),
        Err(err) => {
            eprintln!("error: replay failed: {err}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = Args::parse();

    if let Some(path) = &args.validate_metrics {
        validate_metrics_mode(path);
        return;
    }
    if let Some(path) = &args.validate_timeline {
        validate_timeline_mode(path);
        return;
    }
    if !args.validate_scenarios.is_empty() {
        validate_scenario_mode(&args.validate_scenarios);
        return;
    }

    // The scenario set every sweep-adjacent mode runs against: the files
    // given with --scenario, or the embedded default grid. Loading happens
    // before --list-backends and the trace modes so scenario topologies
    // are visible there too.
    let scenarios: Vec<Scenario> = if args.scenarios.is_empty() {
        vec![scenario::parse_scenario(DEFAULT_SCENARIO_TEXT)
            .expect("the embedded scenarios/default.json must be valid")]
    } else {
        args.scenarios
            .iter()
            .map(|path| load_scenario(path).unwrap_or_else(|err| die(&err)))
            .collect()
    };
    let registry = scenario_registry(&scenarios).unwrap_or_else(|err| die(&err));
    if let Some(name) = &args.backend {
        if registry.get(name).is_none() {
            die(&format!(
                "unknown backend '{name}'; available: {}",
                registry.names().join(", ")
            ));
        }
    }

    if args.list_backends {
        banner("Backend registry");
        for line in registry.describe() {
            println!("{line}");
        }
        return;
    }
    if let Some(path) = &args.record_trace {
        record_trace_mode(path, args.backend.as_deref(), args.quick, &registry);
        return;
    }
    if let Some(path) = &args.replay_trace {
        replay_trace_mode(path, &registry);
        return;
    }

    let llc_bits = if args.quick { 80 } else { 400 };
    let contention_bits = if args.quick { 120 } else { 500 };
    let runs = if args.quick { 3 } else { 8 };

    if args.slice_hash {
        banner("Equations (1)/(2): LLC slice-hash recovery (timing only)");
        let result = slice_hash_experiment();
        println!("observed slices        : {}", result.observed_slices);
        println!("recovered hash bits    : {:?}", result.recovered_bits);
        println!("ground-truth hash bits : {:?}", result.ground_truth);
        println!("exact match            : {}", result.matches);
    }

    if args.l3 {
        banner("Section III-D: GPU L3 reverse engineering");
        let result = l3_experiment();
        println!(
            "inclusiveness test     : final access {} ticks -> L3 is {}",
            result.inclusiveness_ticks,
            if result.non_inclusive {
                "NON-inclusive (paper: non-inclusive)"
            } else {
                "inclusive"
            }
        );
        println!(
            "placement index bits   : {:?} (expected 6..=15) match={}",
            result.index_bits, result.index_bits_match
        );
    }

    if args.fig4 {
        banner("Figure 4: custom timer characterization");
        let (rows, separable) = fig4_timer_characterization(if args.quick { 12 } else { 40 });
        println!(
            "{:<8} {:>12} {:>10} {:>12}",
            "class", "mean ticks", "std dev", "approx ns"
        );
        for r in rows {
            println!(
                "{:<8} {:>12.1} {:>10.2} {:>12.1}",
                r.class, r.mean_ticks, r.std_dev, r.mean_ns
            );
        }
        println!("three levels separable : {separable} (paper: separable)");
    }

    if args.fig7 {
        banner("Figure 7: LLC channel bandwidth per L3 eviction strategy");
        println!(
            "{:<22} {:<12} {:>14} {:>10} {:>14}",
            "strategy", "direction", "measured kb/s", "error", "paper kb/s"
        );
        for r in fig7_llc_strategies(llc_bits) {
            println!(
                "{:<22} {:<12} {:>14.1} {:>9.2}% {:>14.1}",
                r.strategy,
                r.direction,
                r.bandwidth_kbps,
                r.error_rate * 100.0,
                r.paper_kbps
            );
        }
    }

    if args.fig8 {
        banner("Figure 8: error and bandwidth vs number of redundant LLC sets");
        println!(
            "{:<12} {:>6} {:>14} {:>10}",
            "direction", "sets", "kb/s", "error"
        );
        for r in fig8_llc_sets(llc_bits) {
            println!(
                "{:<12} {:>6} {:>14.1} {:>9.2}%",
                r.direction,
                r.sets_per_role,
                r.bandwidth_kbps,
                r.error_rate * 100.0
            );
        }
        println!("(paper: GPU-to-CPU 7% @ 1 set -> 2% @ 2 sets, 128 -> 120 kb/s)");
    }

    if args.fig9 {
        banner("Figure 9: iteration factor vs GPU buffer size (CPU buffer 512 KB)");
        println!(
            "{:<16} {:>6} {:>16} {:>16}",
            "GPU buffer", "IF", "CPU window (ns)", "GPU pass (ns)"
        );
        for r in fig9_iteration_factor() {
            println!(
                "{:<16} {:>6} {:>16.0} {:>16.0}",
                format!("{} KB", r.gpu_buffer_bytes / 1024),
                r.iteration_factor,
                r.cpu_window_ns,
                r.gpu_pass_ns
            );
        }
        println!("(paper: IF decreases as the GPU buffer grows)");
    }

    if args.fig10 {
        banner("Figure 10: contention channel sweep (bandwidth / error, 95% CI)");
        println!(
            "{:<12} {:>4} {:>4} {:>20} {:>22}",
            "GPU buffer", "WGs", "IF", "kb/s (mean ± CI)", "error % (mean ± CI)"
        );
        for r in fig10_contention(contention_bits, runs) {
            println!(
                "{:<12} {:>4} {:>4} {:>13.1} ± {:>5.1} {:>15.2} ± {:>5.2}",
                format!("{} MB", r.gpu_buffer_bytes / (1024 * 1024)),
                r.workgroups,
                r.iteration_factor,
                r.bandwidth_kbps.mean,
                r.bandwidth_kbps.ci95_half_width,
                r.error_rate.mean * 100.0,
                r.error_rate.ci95_half_width * 100.0
            );
        }
        println!("(paper: 390-402 kb/s, best error 0.82% at 2 MB / 2 work-groups)");
    }

    if args.ablation {
        banner("Ablation (Section III-E): GPU thread-level parallelism");
        for r in parallelism_ablation(if args.quick { 60 } else { 200 }) {
            println!(
                "parallel={:<5} bandwidth {:>8.1} kb/s   error {:>5.2}%",
                r.parallel,
                r.bandwidth_kbps,
                r.error_rate * 100.0
            );
        }
    }

    if args.sweep {
        run_sweep(&args, &scenarios, &registry);
    } else {
        // The single "ignored without --sweep" path: every sweep-only flag
        // that was given gets the same note shape.
        for (flag, purpose) in args.sweep_only_flags() {
            eprintln!("note: {flag} ignored ({purpose}; pass --sweep)");
        }
    }

    if args.headline {
        banner("Headline numbers (abstract / Section V)");
        println!(
            "{:<30} {:>14} {:>10} {:>12} {:>10}",
            "channel", "measured kb/s", "error", "paper kb/s", "paper err"
        );
        for r in headline(if args.quick { 120 } else { 400 }) {
            println!(
                "{:<30} {:>14.1} {:>9.2}% {:>12.1} {:>9.2}%",
                r.channel,
                r.bandwidth_kbps,
                r.error_rate * 100.0,
                r.paper_kbps,
                r.paper_error * 100.0
            );
        }
    }
}

/// The `--sweep` mode: materializes every scenario's sections against the
/// registry and runs them in order, streaming rows to the terminal, the
/// `--out` writer, the telemetry aggregate and the baseline gate.
fn run_sweep(args: &Args, scenarios: &[Scenario], registry: &BackendRegistry) {
    let overrides = GridOverrides {
        backend: args.backend.as_deref(),
        codes: args.codes.as_deref(),
        policies: args.policies.as_deref(),
    };
    let mut sections: Vec<MaterializedSection> = Vec::new();
    for scenario in scenarios {
        sections.extend(
            materialize_sections(scenario, registry, args.quick, &overrides)
                .unwrap_or_else(|err| die(&format!("scenario '{}': {err}", scenario.name))),
        );
    }
    let mut swept_backends: Vec<String> = Vec::new();
    for section in &sections {
        for point in &section.points {
            if !swept_backends.contains(&point.backend) {
                swept_backends.push(point.backend.clone());
            }
        }
    }

    let capture_timeline = args.trace_timeline.is_some();
    let runner = SweepRunner::with_default_threads()
        .with_registry(registry.clone())
        .with_point_budget(std::time::Duration::from_secs(if args.quick {
            60
        } else {
            600
        }))
        .with_telemetry(!args.no_telemetry)
        .with_events(capture_timeline);
    banner("Scenario-driven sweep");
    println!(
        "({} worker threads; scenarios: {}; backends: {})",
        runner.threads(),
        scenarios
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", "),
        swept_backends.join(", ")
    );

    // Rows stream in completion order — both to the terminal and, with
    // --out, to the JSON file — so a long grid is observable while it
    // runs and a killed run keeps every finished row on disk (the JSON
    // footer is only written at the end; see SweepJsonWriter).
    let mut writer = args.out.as_ref().map(|path| {
        SweepJsonWriter::create(path).unwrap_or_else(|err| {
            eprintln!("error: could not create {}: {err}", path.display());
            std::process::exit(1);
        })
    });
    // The baseline loads *before* the sweep runs: a missing or corrupt
    // baseline file should fail in seconds, not after the full grid.
    let baseline = args.check_baseline.as_ref().map(|path| {
        Baseline::load(path).unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(1);
        })
    });
    // The resume document likewise: a file that is not a sweep document
    // is a hard error (exit 2), not a silent full re-run.
    let mut resume = args.resume.as_ref().map(|path| {
        ResumeCache::load(path).unwrap_or_else(|err| {
            eprintln!("error: --resume {err}");
            std::process::exit(2);
        })
    });
    if let Some(cache) = &resume {
        println!(
            "(resuming: {} reusable rows of {} in the prior document)",
            cache.len(),
            cache.total_rows()
        );
    }
    let mut gate_cells: Vec<BaselineCell> = Vec::new();
    let collect_for_gate = baseline.is_some();
    // The main thread carries its own registry for the serialization
    // phase (worker registries never see the JSON writer); its snapshot
    // merges into the per-point telemetry before the profile prints.
    let json_telemetry = if args.no_telemetry {
        Registry::disabled()
    } else {
        Registry::new()
    };
    let json_ns = json_telemetry.histogram("phase.json_ns");
    let mut merged_metrics = MetricsSnapshot::from_entries(std::iter::empty());
    let mut timeline_points: Vec<TimelinePoint> = Vec::new();
    let mut metric_points = 0usize;
    let mut fresh_rows = 0usize;
    let mut resumed_rows = 0usize;
    let sweep_started = std::time::Instant::now();
    let mut stream_row = |row: SweepRow| {
        if let (Some(w), Some(path)) = (writer.as_mut(), args.out.as_ref()) {
            let _json = json_ns.span();
            let pushed = match &row {
                SweepRow::Fresh(result) => w.push(result),
                SweepRow::Resumed(reused) => w.push_raw(&reused.raw),
            };
            if let Err(err) = pushed {
                // A lost result file must fail the run, not just warn —
                // downstream plotting scripts check the exit code.
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        match row {
            SweepRow::Fresh(result) => {
                if collect_for_gate {
                    gate_cells.push(BaselineCell::from_result(result));
                }
                if let Ok(outcome) = &result.outcome {
                    if let Some(metrics) = &outcome.metrics {
                        merged_metrics.merge(metrics);
                        metric_points += 1;
                    }
                    if capture_timeline {
                        if let Some(events) = &outcome.events {
                            timeline_points
                                .push(TimelinePoint::new(result.point.label(), events.clone()));
                        }
                    }
                }
                fresh_rows += 1;
            }
            SweepRow::Resumed(reused) => {
                if collect_for_gate {
                    gate_cells.push(reused.cell.clone());
                }
                if let Some(metrics) = &reused.metrics {
                    if !args.no_telemetry {
                        merged_metrics.merge(metrics);
                        metric_points += 1;
                    }
                }
                resumed_rows += 1;
            }
        }
    };

    let show_progress = !args.no_progress;
    for section in &sections {
        let style = RowStyle::for_section(section);
        banner(section_title(section.kind));
        println!(
            "(scenario '{}', sweeps[{}]: {} section, {} points)",
            section.scenario,
            section.index,
            section.kind.label(),
            section.points.len()
        );
        if section.points.is_empty() {
            continue;
        }
        if style != RowStyle::Classic {
            let codes = distinct_labels(&section.points, |p| Some(p.code.label()));
            println!("(codes: {})", codes.join(", "));
        }
        if style == RowStyle::Adaptive {
            let policies =
                distinct_labels(&section.points, |p| match (&p.policy_params, p.policy) {
                    (Some(params), _) => Some(params.label()),
                    (None, Some(policy)) => Some(policy.label().to_string()),
                    (None, None) => None,
                });
            println!("(policies: {})", policies.join(", "));
        }
        style.print_header();
        let (grid, reused) = split_resumed(section.points.clone(), resume.as_mut());
        for row in &reused {
            println!(
                "{:<width$} (resumed)",
                row.cell.scenario,
                width = style.label_width()
            );
            stream_row(SweepRow::Resumed(row));
        }
        let section_resumed = reused.len();
        let mut progress = Progress::start(
            show_progress,
            format!("{} sweep", section.kind.label()),
            grid.len(),
            section_resumed,
        );
        let section_runner = if section.framed {
            runner
                .clone()
                .with_engine(TransceiverConfig::paper_default())
        } else {
            runner.clone()
        };
        let results = section_runner.run_streaming(&grid, |_, result| {
            style.print_row(result);
            stream_row(SweepRow::Fresh(result));
            progress.tick();
        });
        if section.kind == SectionKind::Adaptive {
            print_adaptive_verdict(&results, section_resumed);
        }
    }

    if let Some(writer) = writer {
        let path = args.out.as_ref().expect("writer implies --out");
        match writer.finish() {
            Ok(rows) => println!("\nwrote {rows} sweep rows to {}", path.display()),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.trace_timeline {
        use covert::prelude::{
            test_pattern, BanditPolicy, Direction, DuplexConfig, DuplexScheduler, LlcChannel,
            LlcChannelConfig, SlotAllocation,
        };
        banner("Event timeline");
        // The sweep grids never run the duplex scheduler, so the duplex
        // track comes from a dedicated small exchange: an LLC channel
        // each way, quality-weighted slot allocation, a bandit
        // controller per direction. The asymmetric backlogs make the
        // allocation shift slots mid-run.
        let sink = soc_sim::prelude::EventSink::new();
        let forward_payload = test_pattern(96, 41);
        let reverse_payload = test_pattern(192, 42);
        let duplex_result = LlcChannel::new(LlcChannelConfig::paper_default().with_seed(41))
            .and_then(|mut forward| {
                let mut reverse = LlcChannel::new(
                    LlcChannelConfig::paper_default()
                        .with_direction(Direction::CpuToGpu)
                        .with_seed(42),
                )?;
                DuplexScheduler::new(
                    DuplexConfig::paper_default().with_allocation(SlotAllocation::QualityWeighted),
                )
                .with_events(&sink)
                .run_adaptive(
                    &mut forward,
                    &mut reverse,
                    &forward_payload,
                    &reverse_payload,
                    &mut BanditPolicy::paper_default(),
                    &mut BanditPolicy::paper_default(),
                )
            });
        match duplex_result {
            Ok(report) => {
                timeline_points.push(TimelinePoint::new(
                    "duplex / llc both ways / quality-weighted slots",
                    sink.snapshot(),
                ));
                println!(
                    "timeline duplex exchange: {} slots, {:.1} kb/s aggregate",
                    report.slots.len(),
                    report.aggregate_goodput_kbps()
                );
            }
            Err(err) => eprintln!("note: timeline duplex exchange failed: {err}"),
        }
        match write_timeline(path, &timeline_points) {
            Ok(()) => {
                let events: usize = timeline_points.iter().map(|p| p.log.len()).sum();
                println!(
                    "wrote event timeline ({} point(s), {events} events) to {}",
                    timeline_points.len(),
                    path.display()
                );
                println!(
                    "(open in chrome://tracing or Perfetto; check with: repro \
                     --validate-timeline {})",
                    path.display()
                );
            }
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
    }
    // The headline throughput: simulated rows over the wall-clock of
    // the sweep sections. Resumed rows are excluded from both sides —
    // they cost microseconds, and folding them in would turn the number
    // into a resume-ratio artifact instead of a simulation-speed gauge.
    let sweep_elapsed = sweep_started.elapsed().as_secs_f64();
    let rows_per_sec = if fresh_rows > 0 {
        Some(fresh_rows as f64 / sweep_elapsed.max(1e-9))
    } else {
        None
    };
    if let Some(rate) = rows_per_sec {
        match resumed_rows {
            0 => println!(
                "sweep throughput: {fresh_rows} rows in {sweep_elapsed:.2}s ({rate:.1} rows/s)"
            ),
            _ => println!(
                "sweep throughput: {fresh_rows} fresh rows in {sweep_elapsed:.2}s \
                 ({rate:.1} rows/s; {resumed_rows} resumed)"
            ),
        }
    } else if resumed_rows > 0 {
        println!("sweep throughput: every row resumed ({resumed_rows} rows, nothing simulated)");
    }
    if let Some(cache) = &resume {
        if !cache.is_empty() {
            eprintln!(
                "note: {} row(s) of the resume file matched no grid point (recorded with \
                 different flags or another scenario?)",
                cache.len()
            );
        }
    }

    merged_metrics.merge(&json_telemetry.snapshot());
    if metric_points > 0 {
        banner("Sweep profile: where the time goes");
        println!(
            "{:<20} {:>10} {:>12} {:>12} {:>12}",
            "phase", "events", "total ms", "mean us", "p99 us"
        );
        for (name, label) in [
            ("phase.simulate_ns", "simulate"),
            ("phase.classify_ns", "classify/decode"),
            ("phase.adapt_ns", "adapt bookkeeping"),
            ("phase.json_ns", "json serialization"),
        ] {
            let Some(hist) = merged_metrics.histogram(name) else {
                continue;
            };
            if hist.count() == 0 {
                continue;
            }
            println!(
                "{:<20} {:>10} {:>12.1} {:>12.1} {:>12.1}",
                label,
                hist.count(),
                hist.sum() as f64 / 1e6,
                hist.mean() / 1e3,
                hist.percentile(99.0) / 1e3,
            );
        }
        println!(
            "(telemetry: {} metrics over {metric_points} points; groups: {})",
            merged_metrics.len(),
            merged_metrics.groups().join(", ")
        );
    }
    if let Some(path) = &args.metrics_out {
        if metric_points == 0 {
            eprintln!(
                "note: --metrics-out {} skipped (telemetry is off or no point finished)",
                path.display()
            );
        } else if let Err(err) =
            write_metrics_json(path, &merged_metrics, metric_points, rows_per_sec)
        {
            eprintln!("error: could not write {}: {err}", path.display());
            std::process::exit(1);
        } else {
            println!(
                "wrote aggregated telemetry ({} metrics, {metric_points} points) to {}",
                merged_metrics.len(),
                path.display()
            );
        }
    }

    if let Some(baseline) = baseline {
        let path = args
            .check_baseline
            .as_ref()
            .expect("baseline implies --check-baseline");
        banner("Baseline regression gate");
        let report = baseline.compare_cells(&gate_cells, DEFAULT_TOLERANCE);
        println!(
            "compared {} cells against {} (tolerance -{:.0}%); {} fresh-only, {} baseline-only",
            report.compared,
            path.display(),
            DEFAULT_TOLERANCE * 100.0,
            report.unmatched_fresh,
            report.unmatched_baseline,
        );
        if report.passed() {
            println!("baseline gate PASSED");
        } else {
            if report.regressions.is_empty() {
                eprintln!(
                    "error: baseline gate compared no cells — grid and baseline are disjoint \
                     (was the baseline recorded with the same --quick/--backend/--scenario \
                     flags?)"
                );
            } else {
                eprintln!(
                    "error: baseline gate FAILED — {} regressed cell(s), worst first:",
                    report.regressions.len()
                );
                for regression in &report.regressions {
                    eprintln!("  {}", regression.describe());
                    // The forensic trail: which metrics of this cell
                    // moved the most against the committed baseline.
                    for line in regression.forensic_lines() {
                        eprintln!("      {line}");
                    }
                }
                eprintln!(
                    "(an intended change? refresh with: repro --quick --sweep --out {})",
                    path.display()
                );
                // In CI, the same report lands in the step summary so
                // nobody has to dig through the raw log.
                if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
                    use std::io::Write as _;
                    let appended = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&summary_path)
                        .and_then(|mut file| file.write_all(report.markdown().as_bytes()));
                    if let Err(err) = appended {
                        eprintln!("note: could not append to {summary_path}: {err}");
                    }
                }
            }
            std::process::exit(2);
        }
    }
}

/// Per-cell verdict of an adaptive section: does the best adaptive policy
/// beat *every* fixed-code configuration of the same (backend, channel)
/// cell? With resumed rows the fresh results are only a partial view, so
/// the verdict is skipped (the prior run already reported it).
fn print_adaptive_verdict(results: &[SweepResult], resumed: usize) {
    if resumed > 0 {
        println!(
            "\n(adaptive-vs-fixed verdict skipped: {resumed} rows resumed; see the prior run)"
        );
        return;
    }
    let mut backends: Vec<&str> = Vec::new();
    for result in results {
        if !backends.contains(&result.point.backend.as_str()) {
            backends.push(&result.point.backend);
        }
    }
    let mut cells_won = 0usize;
    let mut cells_total = 0usize;
    for backend in &backends {
        for channel in ChannelKind::ALL {
            let cell: Vec<_> = results
                .iter()
                .filter(|r| r.point.backend == *backend && r.point.channel == channel)
                .collect();
            let goodput =
                |r: &&SweepResult| r.outcome.as_ref().map(|o| o.goodput_kbps).unwrap_or(0.0);
            let best_fixed = cell
                .iter()
                .filter(|r| r.point.policy == Some(PolicyKind::Fixed))
                .map(goodput)
                .fold(f64::NEG_INFINITY, f64::max);
            let best_adaptive = cell
                .iter()
                .filter(|r| r.point.policy.is_some() && r.point.policy != Some(PolicyKind::Fixed))
                .map(goodput)
                .fold(f64::NEG_INFINITY, f64::max);
            if best_adaptive.is_finite() && best_fixed.is_finite() {
                cells_total += 1;
                if best_adaptive > best_fixed {
                    cells_won += 1;
                }
            }
        }
    }
    if cells_total > 0 {
        println!(
            "\nadaptive beats the best fixed code in {cells_won}/{cells_total} backend x channel \
             cells"
        );
    }
}
