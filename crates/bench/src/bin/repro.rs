//! `repro` — regenerates every table and figure of the Leaky Buddies
//! evaluation against the simulated SoC and prints them side by side with
//! the values the paper reports.
//!
//! Usage:
//!
//! ```text
//! repro [--fig4] [--fig7] [--fig8] [--fig9] [--fig10] [--headline]
//!       [--slice-hash] [--l3] [--ablation] [--sweep] [--all] [--quick]
//!       [--code <spec>[,<spec>...]] [--policy <name>[,<name>...]]
//!       [--backend <name>] [--out <path>] [--resume <prior.json>]
//!       [--list-backends] [--check-baseline <file>]
//!       [--metrics-out <path>] [--no-progress] [--no-telemetry]
//!       [--validate-metrics <path>]
//!       [--trace-timeline <path>] [--validate-timeline <path>]
//!       [--record-trace <path>] [--replay-trace <path>]
//! ```
//!
//! With no experiment flag, `--all` is assumed. `--quick` shrinks the bit
//! counts for a fast smoke run.
//!
//! `--list-backends` prints the backend registry (name, slice count, LLC
//! capacity, DRAM generation) and exits. `--backend <name>` restricts the
//! `--sweep` grids to one registry backend; an unknown name exits non-zero
//! after printing the available keys.
//!
//! `--code` selects the link-code axis of the `--sweep` grid: a
//! comma-separated list of `none`, `crc8`, `hamming74`, `rs`, `rs(n,k)` or
//! `rs(n,k,depth)`, or `all` (the default) for every family. `--policy`
//! selects the link-control policies of the adaptive `--sweep` section
//! (`threshold`, `aimd`, `bandit`, `fixed`, or `all`; the fixed-code
//! baselines always run so the adaptive-vs-fixed comparison is complete);
//! an unknown name exits non-zero listing the known policies. `--out
//! <path>` streams the sweep rows (classic, coded and adaptive) to disk as
//! JSON, appending each row the moment its sweep point finishes.
//!
//! `--resume <prior.json>` makes the `--sweep` sections incremental: every
//! row of the prior `--sweep --out` document whose point key (an
//! order-independent hash over all grid axes) matches a point of the fresh
//! grid is replayed verbatim — terminal, `--out` file, telemetry aggregate
//! and baseline gate all see it — and only the remaining points are
//! simulated. Unchanged reruns thus finish in seconds; after a config
//! change, exactly the affected cells re-run. A file that is not a sweep
//! document exits 2; rows that recorded failures are always re-run.
//!
//! `--check-baseline <file>` is the CI performance-regression gate: after
//! the `--sweep` sections finish, every fresh cell is compared against the
//! committed baseline document (itself a `--sweep --out` file, normally
//! `bench/baseline.json` recorded with `--quick`) and the run exits 2
//! listing every cell whose goodput fell more than 15 % below its recorded
//! value. Refresh the baseline by re-recording it with the same flags
//! (`repro --quick --sweep --out bench/baseline.json`).
//!
//! The `--sweep` sections report progress (points done/total, completion
//! rate, ETA) to stderr while the grid runs; `--no-progress` silences the
//! reporter for log-oriented runs. Each sweep point also records telemetry —
//! LLC, ring, DRAM, link and adaptation counters plus per-phase timing
//! histograms — into a per-point registry; the aggregated snapshot prints as
//! a "where the time goes" table after the sweep and, with `--metrics-out
//! <path>`, is written as a `metrics-v1` JSON document. `--no-telemetry`
//! turns the per-point registries off (the sweep rows then carry no
//! `metrics` object). `--validate-metrics <path>` re-parses a previously
//! written metrics document through the in-repo JSON parser and exits
//! non-zero unless the schema tag, the counter groups and the per-phase
//! histograms are all present — the CI smoke step runs it over the artifact
//! it just produced.
//!
//! `--trace-timeline <path>` turns on the cross-layer event timeline for
//! the `--sweep` sections: every simulated point records noise-phase
//! transitions, frame verdicts, adaptation decisions and whole-point spans
//! into a per-point event sink, a small dedicated duplex exchange
//! contributes the slot-grant track (sweep points never run the duplex
//! scheduler), and everything is written to `path` as Chrome trace-event
//! JSON — load it in `chrome://tracing` or Perfetto, one process per
//! point, one named track per layer (sim, noise, link, adapt, duplex,
//! sweep). Timeline capture is purely observational: rows, goodput and the
//! baseline gate are bit-identical with it on or off. Resumed rows were
//! not simulated, so they contribute no timeline process.
//! `--validate-timeline <path>` re-parses such a file through the in-repo
//! JSON parser and exits non-zero unless the document is structurally
//! sound and names all six layer tracks — the CI smoke step runs it over
//! the artifact it just produced.
//!
//! `--record-trace <path>` records one LLC-channel point (honouring
//! `--backend`) through a trace recorder and serializes the full access
//! trace to `path`; `--replay-trace <path>` loads such a file in a fresh
//! process, registers it as a `trace-file` backend and re-runs the recorded
//! point against the replayer, printing both rows side by side.

use bench::*;
use covert::prelude::{LinkCodeKind, PolicyKind, TransceiverConfig};
use soc_sim::prelude::{BackendRegistry, BackendSpec, MetricsSnapshot, Registry};

struct Options {
    fig4: bool,
    fig7: bool,
    fig8: bool,
    fig9: bool,
    fig10: bool,
    headline: bool,
    slice_hash: bool,
    l3: bool,
    ablation: bool,
    sweep: bool,
    quick: bool,
    codes: Vec<LinkCodeKind>,
    code_given: bool,
    policies: Vec<PolicyKind>,
    policy_given: bool,
    backend: Option<String>,
    list_backends: bool,
    out: Option<std::path::PathBuf>,
    resume: Option<std::path::PathBuf>,
    check_baseline: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
    no_progress: bool,
    no_telemetry: bool,
    validate_metrics: Option<std::path::PathBuf>,
    trace_timeline: Option<std::path::PathBuf>,
    validate_timeline: Option<std::path::PathBuf>,
    record_trace: Option<std::path::PathBuf>,
    replay_trace: Option<std::path::PathBuf>,
}

/// Parses a `--code` argument: `all` or a comma-separated list of specs.
fn parse_codes(spec: &str) -> Result<Vec<LinkCodeKind>, String> {
    if spec.trim().eq_ignore_ascii_case("all") {
        return Ok(LinkCodeKind::all().to_vec());
    }
    spec.split(',')
        .map(LinkCodeKind::parse)
        .collect::<Result<Vec<_>, _>>()
}

/// Parses a `--policy` argument: `all` or a comma-separated list of policy
/// names.
fn parse_policies(spec: &str) -> Result<Vec<PolicyKind>, String> {
    if spec.trim().eq_ignore_ascii_case("all") {
        return Ok(PolicyKind::ALL.to_vec());
    }
    spec.split(',')
        .map(PolicyKind::parse)
        .collect::<Result<Vec<_>, _>>()
}

impl Options {
    fn parse() -> Options {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let has = |flag: &str| args.iter().any(|a| a == flag);
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let any_specific = [
            "--fig4",
            "--fig7",
            "--fig8",
            "--fig9",
            "--fig10",
            "--headline",
            "--slice-hash",
            "--l3",
            "--ablation",
            "--sweep",
        ]
        .iter()
        .any(|f| has(f));
        let all = has("--all") || !any_specific;
        let code_given = has("--code");
        let codes = match value_of("--code") {
            None => LinkCodeKind::all().to_vec(),
            Some(spec) => parse_codes(&spec).unwrap_or_else(|err| {
                eprintln!("error: {err}");
                std::process::exit(2);
            }),
        };
        let policy_given = has("--policy");
        let policies = match value_of("--policy") {
            None => PolicyKind::ALL.to_vec(),
            Some(spec) => parse_policies(&spec).unwrap_or_else(|err| {
                // The known-policy list is part of the parse error.
                eprintln!("error: {err}");
                std::process::exit(2);
            }),
        };
        let backend = value_of("--backend");
        if let Some(name) = &backend {
            let registry = BackendRegistry::standard();
            if registry.get(name).is_none() {
                eprintln!(
                    "error: unknown backend '{name}'; available: {}",
                    registry.names().join(", ")
                );
                std::process::exit(2);
            }
        }
        Options {
            fig4: all || has("--fig4"),
            fig7: all || has("--fig7"),
            fig8: all || has("--fig8"),
            fig9: all || has("--fig9"),
            fig10: all || has("--fig10"),
            headline: all || has("--headline"),
            slice_hash: all || has("--slice-hash"),
            l3: all || has("--l3"),
            ablation: all || has("--ablation"),
            sweep: all || has("--sweep"),
            quick: has("--quick"),
            codes,
            code_given,
            policies,
            policy_given,
            backend,
            list_backends: has("--list-backends"),
            out: value_of("--out").map(std::path::PathBuf::from),
            resume: value_of("--resume").map(std::path::PathBuf::from),
            check_baseline: value_of("--check-baseline").map(std::path::PathBuf::from),
            metrics_out: value_of("--metrics-out").map(std::path::PathBuf::from),
            no_progress: has("--no-progress"),
            no_telemetry: has("--no-telemetry"),
            validate_metrics: value_of("--validate-metrics").map(std::path::PathBuf::from),
            trace_timeline: value_of("--trace-timeline").map(std::path::PathBuf::from),
            validate_timeline: value_of("--validate-timeline").map(std::path::PathBuf::from),
            record_trace: value_of("--record-trace").map(std::path::PathBuf::from),
            replay_trace: value_of("--replay-trace").map(std::path::PathBuf::from),
        }
    }
}

fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Live progress for one sweep section: points done/total, completion rate
/// and a coarse ETA, printed to stderr so stdout stays reserved for the
/// result rows (`repro --sweep > rows.txt` pipelines keep working). Updates
/// are throttled to about one line per second plus a final line, so CI logs
/// stay readable; `--no-progress` silences the reporter entirely.
///
/// With `--resume`, rows replayed from the prior document are counted
/// separately from simulated ones (`replayed/simulated/total`): replayed
/// rows cost microseconds, and folding them into the rate would wreck the
/// ETA of the rows actually being simulated.
struct Progress {
    enabled: bool,
    section: &'static str,
    /// Points this section simulates (excludes replayed rows).
    simulated_total: usize,
    /// Rows replayed verbatim from the `--resume` document.
    replayed: usize,
    done: usize,
    started: std::time::Instant,
    last_print: Option<std::time::Instant>,
}

impl Progress {
    fn start(
        enabled: bool,
        section: &'static str,
        simulated_total: usize,
        replayed: usize,
    ) -> Progress {
        let progress = Progress {
            enabled,
            section,
            simulated_total,
            replayed,
            done: 0,
            started: std::time::Instant::now(),
            last_print: None,
        };
        if enabled {
            eprintln!("[{section}] {}", progress.tally());
        }
        progress
    }

    /// The `replayed/simulated/total` counts; the replayed part only
    /// appears when `--resume` actually replayed something.
    fn tally(&self) -> String {
        if self.replayed == 0 {
            return format!("{}/{} points", self.done, self.simulated_total);
        }
        format!(
            "{} replayed, {}/{} simulated, {}/{} total",
            self.replayed,
            self.done,
            self.simulated_total,
            self.replayed + self.done,
            self.replayed + self.simulated_total
        )
    }

    fn tick(&mut self) {
        self.done += 1;
        if !self.enabled {
            return;
        }
        let finished = self.done >= self.simulated_total;
        let due = match self.last_print {
            None => true,
            Some(last) => last.elapsed() >= std::time::Duration::from_secs(1),
        };
        if !finished && !due {
            return;
        }
        self.last_print = Some(std::time::Instant::now());
        // Rate and ETA cover simulated rows only (see the struct docs).
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = self.done as f64 / elapsed;
        let eta = self.simulated_total.saturating_sub(self.done) as f64 / rate.max(1e-9);
        eprintln!(
            "[{}] {} ({:.1} rows/s, ETA {:.0}s)",
            self.section,
            self.tally(),
            rate,
            eta
        );
    }
}

/// One row headed for the terminal, the `--out` document, the telemetry
/// aggregate and the baseline gate: freshly measured, or replayed verbatim
/// from the `--resume` document.
enum SweepRow<'r> {
    Fresh(&'r SweepResult),
    Resumed(&'r ResumedRow),
}

/// Splits a sweep grid into the points whose rows the resume cache already
/// holds and the points still to simulate (grid order preserved on both
/// sides).
fn split_resumed(
    grid: Vec<SweepPoint>,
    cache: Option<&mut ResumeCache>,
) -> (Vec<SweepPoint>, Vec<ResumedRow>) {
    let Some(cache) = cache else {
        return (grid, Vec::new());
    };
    let mut fresh = Vec::with_capacity(grid.len());
    let mut reused = Vec::new();
    for point in grid {
        match cache.take(&point.key()) {
            Some(row) => reused.push(row),
            None => fresh.push(point),
        }
    }
    (fresh, reused)
}

/// The point `--record-trace` captures: the LLC channel at paper defaults
/// on the selected backend, short enough to keep the trace file small.
fn trace_point(backend: &str, quick: bool) -> SweepPoint {
    let mut point =
        SweepPoint::paper_default(backend, ChannelKind::LlcPrimeProbe, NoiseLevel::Quiet);
    point.bits = if quick { 24 } else { 64 };
    point
}

fn record_trace_mode(path: &std::path::Path, backend: Option<&str>, quick: bool) {
    let registry = BackendRegistry::standard();
    let point = trace_point(backend.unwrap_or("kabylake-gen9"), quick);
    banner("Trace capture");
    println!("recording {}", point.label());
    let engine = covert::prelude::Transceiver::raw();
    match record_point_trace(&point, &engine, &registry) {
        Ok((outcome, trace)) => {
            if let Err(err) = write_trace(path, &point, &trace) {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
            println!(
                "recorded: {:.1} kb/s, {:.2}% error, {} events ({} dropped) -> {}",
                outcome.bandwidth_kbps,
                outcome.error_rate * 100.0,
                trace.events().len(),
                trace.dropped(),
                path.display()
            );
            println!("replay with: repro --replay-trace {}", path.display());
        }
        Err(err) => {
            eprintln!("error: trace point failed: {err}");
            std::process::exit(1);
        }
    }
}

/// `--validate-metrics`: re-parses an aggregated telemetry document through
/// the in-repo JSON parser and checks the facts downstream tooling depends
/// on — the schema tag, a positive point count, the counter groups each
/// instrumented layer contributes and a non-empty per-phase breakdown. The
/// CI smoke step runs this over the artifact the quick sweep just wrote.
fn validate_metrics_mode(path: &std::path::Path) {
    banner("Metrics document validation");
    let fail = |message: String| -> ! {
        eprintln!("error: {message}");
        std::process::exit(1);
    };
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(format!("could not read {}: {err}", path.display())));
    let document = parse_json(&body)
        .unwrap_or_else(|err| fail(format!("{} is not valid JSON: {err}", path.display())));
    let schema = document.get("schema").and_then(JsonValue::as_str);
    if schema != Some(METRICS_SCHEMA) {
        fail(format!("schema {schema:?} is not {METRICS_SCHEMA:?}"));
    }
    let points = document
        .get("points")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let snapshot = match document.get("metrics") {
        None => fail("document lacks a metrics object".into()),
        Some(metrics) => parse_metrics_snapshot(metrics).unwrap_or_else(|err| fail(err)),
    };
    if points < 1.0 || snapshot.is_empty() {
        fail(format!(
            "document carries no telemetry (points={points}, metrics={})",
            snapshot.len()
        ));
    }
    let groups = snapshot.groups();
    for required in ["llc", "ring", "dram", "link", "adapt", "phase"] {
        if !groups.iter().any(|g| g == required) {
            fail(format!(
                "metric group '{required}' is missing (have: {})",
                groups.join(", ")
            ));
        }
    }
    if snapshot
        .histogram("phase.simulate_ns")
        .is_none_or(|h| h.count() == 0)
    {
        fail("the phase.simulate_ns histogram is missing or empty".into());
    }
    println!(
        "{} OK: {} metrics over {points} points; groups: {}",
        path.display(),
        snapshot.len(),
        groups.join(", ")
    );
}

/// `--validate-timeline`: re-parses a Chrome-trace timeline document (see
/// `--trace-timeline`) through the in-repo JSON parser and exits non-zero
/// unless it is structurally sound and names all six layer tracks. The CI
/// smoke step runs this over the artifact the quick sweep just wrote.
fn validate_timeline_mode(path: &std::path::Path) {
    banner("Timeline document validation");
    let body = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: could not read {}: {err}", path.display());
        std::process::exit(1);
    });
    match validate_timeline(&body) {
        Ok(summary) => println!(
            "{} OK: {} events over {} timeline point(s); tracks: {}",
            path.display(),
            summary.events,
            summary.points,
            summary.tracks.join(", ")
        ),
        Err(err) => {
            eprintln!("error: {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}

fn replay_trace_mode(path: &std::path::Path) {
    let registry = BackendRegistry::standard();
    banner("Trace replay");
    let (mut point, trace) = read_trace(path, &registry).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(1);
    });
    println!(
        "loaded {} ({} events, {} dropped), recorded on '{}'",
        path.display(),
        trace.events().len(),
        trace.dropped(),
        point.backend
    );
    // The trace becomes a named backend; the recorded point re-runs against
    // it through the ordinary sweep machinery. The replayer is a strict
    // oracle — any divergence from the recorded access sequence aborts with
    // the position of the first mismatch, so a row that prints below is the
    // recorded run, bit for bit.
    let replay_registry = registry.with_spec(BackendSpec::replaying(
        "trace-file",
        "trace loaded from disk",
        trace,
    ));
    point.backend = "trace-file".into();
    let result = run_point_with_registry(
        &point,
        &covert::prelude::Transceiver::raw(),
        &replay_registry,
    );
    match result.outcome {
        Ok(outcome) => println!(
            "replayed: {:.1} kb/s, {:.2}% error, {} frames — no divergence from the recording",
            outcome.bandwidth_kbps,
            outcome.error_rate * 100.0,
            outcome.frames_sent
        ),
        Err(err) => {
            eprintln!("error: replay failed: {err}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let opts = Options::parse();

    if opts.list_backends {
        banner("Backend registry");
        for line in BackendRegistry::standard().describe() {
            println!("{line}");
        }
        return;
    }

    if let Some(path) = &opts.validate_metrics {
        validate_metrics_mode(path);
        return;
    }
    if let Some(path) = &opts.validate_timeline {
        validate_timeline_mode(path);
        return;
    }
    if let Some(path) = &opts.record_trace {
        record_trace_mode(path, opts.backend.as_deref(), opts.quick);
        return;
    }
    if let Some(path) = &opts.replay_trace {
        replay_trace_mode(path);
        return;
    }

    let llc_bits = if opts.quick { 80 } else { 400 };
    let contention_bits = if opts.quick { 120 } else { 500 };
    let runs = if opts.quick { 3 } else { 8 };

    if opts.slice_hash {
        banner("Equations (1)/(2): LLC slice-hash recovery (timing only)");
        let result = slice_hash_experiment();
        println!("observed slices        : {}", result.observed_slices);
        println!("recovered hash bits    : {:?}", result.recovered_bits);
        println!("ground-truth hash bits : {:?}", result.ground_truth);
        println!("exact match            : {}", result.matches);
    }

    if opts.l3 {
        banner("Section III-D: GPU L3 reverse engineering");
        let result = l3_experiment();
        println!(
            "inclusiveness test     : final access {} ticks -> L3 is {}",
            result.inclusiveness_ticks,
            if result.non_inclusive {
                "NON-inclusive (paper: non-inclusive)"
            } else {
                "inclusive"
            }
        );
        println!(
            "placement index bits   : {:?} (expected 6..=15) match={}",
            result.index_bits, result.index_bits_match
        );
    }

    if opts.fig4 {
        banner("Figure 4: custom timer characterization");
        let (rows, separable) = fig4_timer_characterization(if opts.quick { 12 } else { 40 });
        println!(
            "{:<8} {:>12} {:>10} {:>12}",
            "class", "mean ticks", "std dev", "approx ns"
        );
        for r in rows {
            println!(
                "{:<8} {:>12.1} {:>10.2} {:>12.1}",
                r.class, r.mean_ticks, r.std_dev, r.mean_ns
            );
        }
        println!("three levels separable : {separable} (paper: separable)");
    }

    if opts.fig7 {
        banner("Figure 7: LLC channel bandwidth per L3 eviction strategy");
        println!(
            "{:<22} {:<12} {:>14} {:>10} {:>14}",
            "strategy", "direction", "measured kb/s", "error", "paper kb/s"
        );
        for r in fig7_llc_strategies(llc_bits) {
            println!(
                "{:<22} {:<12} {:>14.1} {:>9.2}% {:>14.1}",
                r.strategy,
                r.direction,
                r.bandwidth_kbps,
                r.error_rate * 100.0,
                r.paper_kbps
            );
        }
    }

    if opts.fig8 {
        banner("Figure 8: error and bandwidth vs number of redundant LLC sets");
        println!(
            "{:<12} {:>6} {:>14} {:>10}",
            "direction", "sets", "kb/s", "error"
        );
        for r in fig8_llc_sets(llc_bits) {
            println!(
                "{:<12} {:>6} {:>14.1} {:>9.2}%",
                r.direction,
                r.sets_per_role,
                r.bandwidth_kbps,
                r.error_rate * 100.0
            );
        }
        println!("(paper: GPU-to-CPU 7% @ 1 set -> 2% @ 2 sets, 128 -> 120 kb/s)");
    }

    if opts.fig9 {
        banner("Figure 9: iteration factor vs GPU buffer size (CPU buffer 512 KB)");
        println!(
            "{:<16} {:>6} {:>16} {:>16}",
            "GPU buffer", "IF", "CPU window (ns)", "GPU pass (ns)"
        );
        for r in fig9_iteration_factor() {
            println!(
                "{:<16} {:>6} {:>16.0} {:>16.0}",
                format!("{} KB", r.gpu_buffer_bytes / 1024),
                r.iteration_factor,
                r.cpu_window_ns,
                r.gpu_pass_ns
            );
        }
        println!("(paper: IF decreases as the GPU buffer grows)");
    }

    if opts.fig10 {
        banner("Figure 10: contention channel sweep (bandwidth / error, 95% CI)");
        println!(
            "{:<12} {:>4} {:>4} {:>20} {:>22}",
            "GPU buffer", "WGs", "IF", "kb/s (mean ± CI)", "error % (mean ± CI)"
        );
        for r in fig10_contention(contention_bits, runs) {
            println!(
                "{:<12} {:>4} {:>4} {:>13.1} ± {:>5.1} {:>15.2} ± {:>5.2}",
                format!("{} MB", r.gpu_buffer_bytes / (1024 * 1024)),
                r.workgroups,
                r.iteration_factor,
                r.bandwidth_kbps.mean,
                r.bandwidth_kbps.ci95_half_width,
                r.error_rate.mean * 100.0,
                r.error_rate.ci95_half_width * 100.0
            );
        }
        println!("(paper: 390-402 kb/s, best error 0.82% at 2 MB / 2 work-groups)");
    }

    if opts.ablation {
        banner("Ablation (Section III-E): GPU thread-level parallelism");
        for r in parallelism_ablation(if opts.quick { 60 } else { 200 }) {
            println!(
                "parallel={:<5} bandwidth {:>8.1} kb/s   error {:>5.2}%",
                r.parallel,
                r.bandwidth_kbps,
                r.error_rate * 100.0
            );
        }
    }

    if opts.sweep {
        let registry = BackendRegistry::standard();
        let backends: Vec<&str> = match &opts.backend {
            Some(name) => vec![name.as_str()],
            None => registry.names(),
        };
        banner("Scenario sweep: backend x channel x noise, in parallel");
        let capture_timeline = opts.trace_timeline.is_some();
        let runner = SweepRunner::with_default_threads()
            .with_point_budget(std::time::Duration::from_secs(if opts.quick {
                60
            } else {
                600
            }))
            .with_telemetry(!opts.no_telemetry)
            .with_events(capture_timeline);
        println!(
            "({} worker threads; backends: {})",
            runner.threads(),
            backends.join(", ")
        );
        // Rows stream in completion order — both to the terminal and, with
        // --out, to the JSON file — so a long grid is observable while it
        // runs and a killed run keeps every finished row on disk (the JSON
        // footer is only written at the end; see SweepJsonWriter).
        let mut writer = opts.out.as_ref().map(|path| {
            SweepJsonWriter::create(path).unwrap_or_else(|err| {
                eprintln!("error: could not create {}: {err}", path.display());
                std::process::exit(1);
            })
        });
        // The baseline loads *before* the sweep runs: a missing or corrupt
        // baseline file should fail in seconds, not after the full grid.
        let baseline = opts.check_baseline.as_ref().map(|path| {
            Baseline::load(path).unwrap_or_else(|err| {
                eprintln!("error: {err}");
                std::process::exit(1);
            })
        });
        // The resume document likewise: a file that is not a sweep document
        // is a hard error (exit 2), not a silent full re-run.
        let mut resume = opts.resume.as_ref().map(|path| {
            ResumeCache::load(path).unwrap_or_else(|err| {
                eprintln!("error: --resume {err}");
                std::process::exit(2);
            })
        });
        if let Some(cache) = &resume {
            println!(
                "(resuming: {} reusable rows of {} in the prior document)",
                cache.len(),
                cache.total_rows()
            );
        }
        let mut gate_cells: Vec<BaselineCell> = Vec::new();
        let collect_for_gate = baseline.is_some();
        // The main thread carries its own registry for the serialization
        // phase (worker registries never see the JSON writer); its snapshot
        // merges into the per-point telemetry before the profile prints.
        let json_telemetry = if opts.no_telemetry {
            Registry::disabled()
        } else {
            Registry::new()
        };
        let json_ns = json_telemetry.histogram("phase.json_ns");
        let mut merged_metrics = MetricsSnapshot::from_entries(std::iter::empty());
        let mut timeline_points: Vec<TimelinePoint> = Vec::new();
        let mut metric_points = 0usize;
        let mut fresh_rows = 0usize;
        let mut resumed_rows = 0usize;
        let sweep_started = std::time::Instant::now();
        let mut stream_row = |row: SweepRow| {
            if let (Some(w), Some(path)) = (writer.as_mut(), opts.out.as_ref()) {
                let _json = json_ns.span();
                let pushed = match &row {
                    SweepRow::Fresh(result) => w.push(result),
                    SweepRow::Resumed(reused) => w.push_raw(&reused.raw),
                };
                if let Err(err) = pushed {
                    // A lost result file must fail the run, not just warn —
                    // downstream plotting scripts check the exit code.
                    eprintln!("error: could not write {}: {err}", path.display());
                    std::process::exit(1);
                }
            }
            match row {
                SweepRow::Fresh(result) => {
                    if collect_for_gate {
                        gate_cells.push(BaselineCell::from_result(result));
                    }
                    if let Ok(outcome) = &result.outcome {
                        if let Some(metrics) = &outcome.metrics {
                            merged_metrics.merge(metrics);
                            metric_points += 1;
                        }
                        if capture_timeline {
                            if let Some(events) = &outcome.events {
                                timeline_points
                                    .push(TimelinePoint::new(result.point.label(), events.clone()));
                            }
                        }
                    }
                    fresh_rows += 1;
                }
                SweepRow::Resumed(reused) => {
                    if collect_for_gate {
                        gate_cells.push(reused.cell.clone());
                    }
                    if let Some(metrics) = &reused.metrics {
                        if !opts.no_telemetry {
                            merged_metrics.merge(metrics);
                            metric_points += 1;
                        }
                    }
                    resumed_rows += 1;
                }
            }
        };
        println!(
            "{:<58} {:>12} {:>9} {:>12} {:>8}",
            "scenario", "kb/s", "error", "symbol (ns)", "quality"
        );
        let show_progress = !opts.no_progress;
        let classic_grid = default_grid_for(&backends, if opts.quick { 64 } else { 200 });
        let (classic_grid, reused) = split_resumed(classic_grid, resume.as_mut());
        for row in &reused {
            println!("{:<58} (resumed)", row.cell.scenario);
            stream_row(SweepRow::Resumed(row));
        }
        let mut progress = Progress::start(
            show_progress,
            "classic sweep",
            classic_grid.len(),
            reused.len(),
        );
        runner.run_streaming(&classic_grid, |_, result| {
            match &result.outcome {
                Ok(outcome) => println!(
                    "{:<58} {:>12.1} {:>8.2}% {:>12.0} {:>8.1}",
                    result.point.label(),
                    outcome.bandwidth_kbps,
                    outcome.error_rate * 100.0,
                    outcome.symbol_time_ns,
                    outcome.calibration_quality,
                ),
                Err(err) => println!("{:<58} unusable: {err}", result.point.label()),
            }
            stream_row(SweepRow::Fresh(result));
            progress.tick();
        });

        banner("Link-code sweep: raw vs coded goodput (framed engine, quiet noise)");
        println!(
            "(codes: {})",
            opts.codes
                .iter()
                .map(|c| c.label())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "{:<64} {:>10} {:>10} {:>7} {:>9} {:>9} {:>8}",
            "scenario", "kb/s", "goodput", "rate", "corrected", "residual", "retx"
        );
        let coded_grid = coded_grid_for(&backends, if opts.quick { 128 } else { 320 }, &opts.codes);
        let (coded_grid, reused) = split_resumed(coded_grid, resume.as_mut());
        for row in &reused {
            println!("{:<64} (resumed)", row.cell.scenario);
            stream_row(SweepRow::Resumed(row));
        }
        let mut progress =
            Progress::start(show_progress, "coded sweep", coded_grid.len(), reused.len());
        runner
            .clone()
            .with_engine(TransceiverConfig::paper_default())
            .run_streaming(&coded_grid, |_, result| {
                match &result.outcome {
                    Ok(outcome) => println!(
                        "{:<64} {:>10.1} {:>10.1} {:>7.2} {:>9} {:>9} {:>8}",
                        result.point.label(),
                        outcome.bandwidth_kbps,
                        outcome.goodput_kbps,
                        outcome.code_rate,
                        outcome.corrected_bits,
                        outcome.residual_errors,
                        outcome.retransmissions,
                    ),
                    Err(err) => println!("{:<64} unusable: {err}", result.point.label()),
                }
                stream_row(SweepRow::Fresh(result));
                progress.tick();
            });

        banner("Adaptive link control: policies vs fixed codes, phased quiet/burst noise");
        // The fixed-code baselines always run — the comparison is the point
        // of the section — plus whatever adaptive policies were selected.
        let mut grid_policies = vec![PolicyKind::Fixed];
        grid_policies.extend(
            opts.policies
                .iter()
                .copied()
                .filter(|p| *p != PolicyKind::Fixed),
        );
        println!(
            "(policies: {})",
            grid_policies
                .iter()
                .map(|p| p.label())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "{:<68} {:>10} {:>8} {:>9} {:>16}",
            "scenario", "goodput", "error", "switches", "final setting"
        );
        let adaptive_grid = adaptive_grid_for(
            &backends,
            if opts.quick { 448 } else { 1792 },
            &grid_policies,
        );
        let (adaptive_grid, reused) = split_resumed(adaptive_grid, resume.as_mut());
        for row in &reused {
            println!("{:<68} (resumed)", row.cell.scenario);
            stream_row(SweepRow::Resumed(row));
        }
        let adaptive_resumed = reused.len();
        let mut progress = Progress::start(
            show_progress,
            "adaptive sweep",
            adaptive_grid.len(),
            adaptive_resumed,
        );
        let adaptive_results = runner
            .clone()
            .with_engine(TransceiverConfig::paper_default())
            .run_streaming(&adaptive_grid, |_, result| {
                match &result.outcome {
                    Ok(outcome) => {
                        let (switches, final_setting) = match &outcome.adaptation {
                            Some(a) => (
                                a.switches.to_string(),
                                covert::prelude::LinkSetting::new(
                                    a.final_code,
                                    a.final_symbol_repeat,
                                )
                                .label(),
                            ),
                            None => ("-".into(), "-".into()),
                        };
                        println!(
                            "{:<68} {:>10.1} {:>7.2}% {:>9} {:>16}",
                            result.point.label(),
                            outcome.goodput_kbps,
                            outcome.error_rate * 100.0,
                            switches,
                            final_setting,
                        );
                    }
                    Err(err) => println!("{:<68} unusable: {err}", result.point.label()),
                }
                stream_row(SweepRow::Fresh(result));
                progress.tick();
            });
        // Per-cell verdict: does the best adaptive policy beat *every*
        // fixed-code configuration of the same (backend, channel) cell?
        // With resumed rows the fresh results are only a partial view, so
        // the verdict is skipped (the prior run already reported it).
        let mut cells_won = 0usize;
        let mut cells_total = 0usize;
        for backend in &backends {
            for channel in ChannelKind::ALL {
                let cell: Vec<_> = adaptive_results
                    .iter()
                    .filter(|r| r.point.backend == *backend && r.point.channel == channel)
                    .collect();
                let goodput =
                    |r: &&SweepResult| r.outcome.as_ref().map(|o| o.goodput_kbps).unwrap_or(0.0);
                let best_fixed = cell
                    .iter()
                    .filter(|r| r.point.policy == Some(PolicyKind::Fixed))
                    .map(goodput)
                    .fold(f64::NEG_INFINITY, f64::max);
                let best_adaptive = cell
                    .iter()
                    .filter(|r| {
                        r.point.policy.is_some() && r.point.policy != Some(PolicyKind::Fixed)
                    })
                    .map(goodput)
                    .fold(f64::NEG_INFINITY, f64::max);
                if best_adaptive.is_finite() && best_fixed.is_finite() {
                    cells_total += 1;
                    if best_adaptive > best_fixed {
                        cells_won += 1;
                    }
                }
            }
        }
        if adaptive_resumed > 0 {
            println!(
                "\n(adaptive-vs-fixed verdict skipped: {adaptive_resumed} rows resumed; see the prior run)"
            );
        } else if cells_total > 0 {
            println!(
                "\nadaptive beats the best fixed code in {cells_won}/{cells_total} backend x channel cells"
            );
        }

        if let Some(writer) = writer {
            let path = opts.out.as_ref().expect("writer implies --out");
            match writer.finish() {
                Ok(rows) => println!("\nwrote {rows} sweep rows to {}", path.display()),
                Err(err) => {
                    eprintln!("error: could not write {}: {err}", path.display());
                    std::process::exit(1);
                }
            }
        }

        if let Some(path) = &opts.trace_timeline {
            use covert::prelude::{
                test_pattern, BanditPolicy, Direction, DuplexConfig, DuplexScheduler, LlcChannel,
                LlcChannelConfig, SlotAllocation,
            };
            banner("Event timeline");
            // The sweep grids never run the duplex scheduler, so the duplex
            // track comes from a dedicated small exchange: an LLC channel
            // each way, quality-weighted slot allocation, a bandit
            // controller per direction. The asymmetric backlogs make the
            // allocation shift slots mid-run.
            let sink = soc_sim::prelude::EventSink::new();
            let forward_payload = test_pattern(96, 41);
            let reverse_payload = test_pattern(192, 42);
            let duplex_result = LlcChannel::new(LlcChannelConfig::paper_default().with_seed(41))
                .and_then(|mut forward| {
                    let mut reverse = LlcChannel::new(
                        LlcChannelConfig::paper_default()
                            .with_direction(Direction::CpuToGpu)
                            .with_seed(42),
                    )?;
                    DuplexScheduler::new(
                        DuplexConfig::paper_default()
                            .with_allocation(SlotAllocation::QualityWeighted),
                    )
                    .with_events(&sink)
                    .run_adaptive(
                        &mut forward,
                        &mut reverse,
                        &forward_payload,
                        &reverse_payload,
                        &mut BanditPolicy::paper_default(),
                        &mut BanditPolicy::paper_default(),
                    )
                });
            match duplex_result {
                Ok(report) => {
                    timeline_points.push(TimelinePoint::new(
                        "duplex / llc both ways / quality-weighted slots",
                        sink.snapshot(),
                    ));
                    println!(
                        "timeline duplex exchange: {} slots, {:.1} kb/s aggregate",
                        report.slots.len(),
                        report.aggregate_goodput_kbps()
                    );
                }
                Err(err) => eprintln!("note: timeline duplex exchange failed: {err}"),
            }
            match write_timeline(path, &timeline_points) {
                Ok(()) => {
                    let events: usize = timeline_points.iter().map(|p| p.log.len()).sum();
                    println!(
                        "wrote event timeline ({} point(s), {events} events) to {}",
                        timeline_points.len(),
                        path.display()
                    );
                    println!(
                        "(open in chrome://tracing or Perfetto; check with: repro \
                         --validate-timeline {})",
                        path.display()
                    );
                }
                Err(err) => {
                    eprintln!("error: could not write {}: {err}", path.display());
                    std::process::exit(1);
                }
            }
        }
        // The headline throughput: simulated rows over the wall-clock of
        // the sweep sections. Resumed rows are excluded from both sides —
        // they cost microseconds, and folding them in would turn the number
        // into a resume-ratio artifact instead of a simulation-speed gauge.
        let sweep_elapsed = sweep_started.elapsed().as_secs_f64();
        let rows_per_sec = if fresh_rows > 0 {
            Some(fresh_rows as f64 / sweep_elapsed.max(1e-9))
        } else {
            None
        };
        if let Some(rate) = rows_per_sec {
            match resumed_rows {
                0 => println!(
                    "sweep throughput: {fresh_rows} rows in {sweep_elapsed:.2}s ({rate:.1} rows/s)"
                ),
                _ => println!(
                    "sweep throughput: {fresh_rows} fresh rows in {sweep_elapsed:.2}s \
                     ({rate:.1} rows/s; {resumed_rows} resumed)"
                ),
            }
        } else if resumed_rows > 0 {
            println!(
                "sweep throughput: every row resumed ({resumed_rows} rows, nothing simulated)"
            );
        }
        if let Some(cache) = &resume {
            if !cache.is_empty() {
                eprintln!(
                    "note: {} row(s) of the resume file matched no grid point (recorded with \
                     different flags?)",
                    cache.len()
                );
            }
        }

        merged_metrics.merge(&json_telemetry.snapshot());
        if metric_points > 0 {
            banner("Sweep profile: where the time goes");
            println!(
                "{:<20} {:>10} {:>12} {:>12} {:>12}",
                "phase", "events", "total ms", "mean us", "p99 us"
            );
            for (name, label) in [
                ("phase.simulate_ns", "simulate"),
                ("phase.classify_ns", "classify/decode"),
                ("phase.adapt_ns", "adapt bookkeeping"),
                ("phase.json_ns", "json serialization"),
            ] {
                let Some(hist) = merged_metrics.histogram(name) else {
                    continue;
                };
                if hist.count() == 0 {
                    continue;
                }
                println!(
                    "{:<20} {:>10} {:>12.1} {:>12.1} {:>12.1}",
                    label,
                    hist.count(),
                    hist.sum() as f64 / 1e6,
                    hist.mean() / 1e3,
                    hist.percentile(99.0) / 1e3,
                );
            }
            println!(
                "(telemetry: {} metrics over {metric_points} points; groups: {})",
                merged_metrics.len(),
                merged_metrics.groups().join(", ")
            );
        }
        if let Some(path) = &opts.metrics_out {
            if metric_points == 0 {
                eprintln!(
                    "note: --metrics-out {} skipped (telemetry is off or no point finished)",
                    path.display()
                );
            } else if let Err(err) =
                write_metrics_json(path, &merged_metrics, metric_points, rows_per_sec)
            {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            } else {
                println!(
                    "wrote aggregated telemetry ({} metrics, {metric_points} points) to {}",
                    merged_metrics.len(),
                    path.display()
                );
            }
        }

        if let Some(baseline) = baseline {
            let path = opts
                .check_baseline
                .as_ref()
                .expect("baseline implies --check-baseline");
            banner("Baseline regression gate");
            let report = baseline.compare_cells(&gate_cells, DEFAULT_TOLERANCE);
            println!(
                "compared {} cells against {} (tolerance -{:.0}%); {} fresh-only, {} baseline-only",
                report.compared,
                path.display(),
                DEFAULT_TOLERANCE * 100.0,
                report.unmatched_fresh,
                report.unmatched_baseline,
            );
            if report.passed() {
                println!("baseline gate PASSED");
            } else {
                if report.regressions.is_empty() {
                    eprintln!(
                        "error: baseline gate compared no cells — grid and baseline are disjoint \
                         (was the baseline recorded with the same --quick/--backend flags?)"
                    );
                } else {
                    eprintln!(
                        "error: baseline gate FAILED — {} regressed cell(s), worst first:",
                        report.regressions.len()
                    );
                    for regression in &report.regressions {
                        eprintln!("  {}", regression.describe());
                        // The forensic trail: which metrics of this cell
                        // moved the most against the committed baseline.
                        for line in regression.forensic_lines() {
                            eprintln!("      {line}");
                        }
                    }
                    eprintln!(
                        "(an intended change? refresh with: repro --quick --sweep --out {})",
                        path.display()
                    );
                    // In CI, the same report lands in the step summary so
                    // nobody has to dig through the raw log.
                    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
                        use std::io::Write as _;
                        let appended = std::fs::OpenOptions::new()
                            .create(true)
                            .append(true)
                            .open(&summary_path)
                            .and_then(|mut file| file.write_all(report.markdown().as_bytes()));
                        if let Err(err) = appended {
                            eprintln!("note: could not append to {summary_path}: {err}");
                        }
                    }
                }
                std::process::exit(2);
            }
        }
    } else {
        if let Some(path) = &opts.out {
            eprintln!(
                "note: --out {} ignored (it serializes --sweep results; pass --sweep)",
                path.display()
            );
        }
        if let Some(name) = &opts.backend {
            eprintln!(
                "note: --backend {name} ignored (it restricts the --sweep grids; the figure \
                 experiments model the paper platform; pass --sweep)"
            );
        }
        if let Some(path) = &opts.resume {
            eprintln!(
                "note: --resume {} ignored (it reuses --sweep rows; pass --sweep)",
                path.display()
            );
        }
        if opts.code_given {
            eprintln!(
                "note: --code ignored (it selects the --sweep link-code axis; the figure \
                 experiments run the paper's fixed configurations; pass --sweep)"
            );
        }
        if opts.policy_given {
            eprintln!(
                "note: --policy ignored (it selects the --sweep adaptation policies; pass --sweep)"
            );
        }
        if let Some(path) = &opts.check_baseline {
            eprintln!(
                "note: --check-baseline {} ignored (it gates the --sweep results; pass --sweep)",
                path.display()
            );
        }
        if let Some(path) = &opts.metrics_out {
            eprintln!(
                "note: --metrics-out {} ignored (it aggregates --sweep telemetry; pass --sweep)",
                path.display()
            );
        }
        if let Some(path) = &opts.trace_timeline {
            eprintln!(
                "note: --trace-timeline {} ignored (it records --sweep events; pass --sweep)",
                path.display()
            );
        }
    }

    if opts.headline {
        banner("Headline numbers (abstract / Section V)");
        println!(
            "{:<30} {:>14} {:>10} {:>12} {:>10}",
            "channel", "measured kb/s", "error", "paper kb/s", "paper err"
        );
        for r in headline(if opts.quick { 120 } else { 400 }) {
            println!(
                "{:<30} {:>14.1} {:>9.2}% {:>12.1} {:>9.2}%",
                r.channel,
                r.bandwidth_kbps,
                r.error_rate * 100.0,
                r.paper_kbps,
                r.paper_error * 100.0
            );
        }
    }
}
