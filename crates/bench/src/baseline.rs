//! The CI performance-regression gate.
//!
//! A committed sweep document (`bench/baseline.json`, written by
//! `repro --quick --sweep --out …`) records the per-cell goodput the
//! current code is known to deliver. [`Baseline::parse`] reads such a
//! document back through [`crate::json::parse_json`], and
//! [`Baseline::compare`] checks a fresh run of the same grid against it
//! cell by cell: a cell whose goodput fell more than the tolerance below
//! its recorded value is a regression, and `repro --check-baseline <file>`
//! exits non-zero listing every one. The simulator is deterministic per
//! seed, so on an unchanged tree the comparison reproduces the baseline
//! bit for bit — the tolerance only absorbs deliberate, reviewed behavior
//! changes small enough not to matter (and cross-platform float drift,
//! should the CI image change).
//!
//! Cells are matched on `(scenario, bits, seed)`: the scenario label
//! encodes every grid axis (backend, channel, noise, code, policy, channel
//! parameters) but collides *across* sweep sections — see
//! [`BaselineCell`].

use crate::json::{parse_json, parse_metrics_snapshot, JsonValue};
use crate::sweep::SweepResult;
use soc_sim::prelude::{MetricValue, MetricsSnapshot};
use std::path::Path;

/// Default relative tolerance of the gate: a cell regresses when its fresh
/// goodput drops below `(1 - 0.15)` of the recorded value.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// Metric movers reported per regressed cell (see [`rank_movers`]).
pub const MOVERS_TOP_N: usize = 5;

/// One recorded cell of the baseline document.
///
/// Cells are matched on `(scenario, bits, seed)`: the scenario label alone
/// is not unique across the sweep *sections* — the coded grid's `NoCode`
/// row labels identically to the classic grid's row for the same backend ×
/// channel × noise cell and differs only in payload size and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCell {
    /// The row's scenario label.
    pub scenario: String,
    /// Payload bits of the recorded point.
    pub bits: u64,
    /// Seed of the recorded point.
    pub seed: u64,
    /// Recorded goodput in kb/s, or `None` for a row that recorded a
    /// failure (failed cells are compared by failure, not by goodput).
    pub goodput_kbps: Option<f64>,
    /// The row's telemetry snapshot, when it carried one. Powers the
    /// forensic per-metric diff of a regressed cell; everything else about
    /// the gate ignores it.
    pub metrics: Option<MetricsSnapshot>,
}

impl BaselineCell {
    /// The comparable cell of a fresh sweep row — also how resumed rows
    /// (which exist only as prior-document JSON, not as [`SweepResult`]s)
    /// enter the gate.
    pub fn from_result(result: &SweepResult) -> BaselineCell {
        let outcome = result.outcome.as_ref().ok();
        BaselineCell {
            scenario: result.point.label(),
            bits: result.point.bits as u64,
            seed: result.point.seed,
            goodput_kbps: outcome.map(|o| o.goodput_kbps),
            metrics: outcome.and_then(|o| o.metrics.clone()),
        }
    }
}

/// One metric whose value moved between the baseline and the fresh run of
/// a regressed cell (see [`rank_movers`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricMover {
    /// Metric name, e.g. `link.retransmissions`.
    pub name: String,
    /// The baseline's value (0 when the baseline lacked the metric).
    pub baseline: f64,
    /// The fresh run's value (0 when the fresh run lacked the metric).
    pub fresh: f64,
    /// Relative change in percent, or `None` when the baseline value was
    /// zero (a metric appearing from nothing has no finite percent).
    pub percent: Option<f64>,
}

impl MetricMover {
    /// Human-readable report line, e.g.
    /// `link.retransmissions +210.0 % (29 -> 90)`.
    pub fn describe(&self) -> String {
        let (base, fresh) = (fmt_value(self.baseline), fmt_value(self.fresh));
        match self.percent {
            Some(percent) => format!("{} {percent:+.1} % ({base} -> {fresh})", self.name),
            None => format!("{} new ({base} -> {fresh})", self.name),
        }
    }
}

/// Formats a metric value compactly: integers without a fraction, the rest
/// with three decimals.
fn fmt_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value:.0}")
    } else {
        format!("{value:.3}")
    }
}

/// The scalar reading of one captured metric: a counter's total, a gauge's
/// value, a histogram's sample count.
fn scalar(value: &MetricValue) -> f64 {
    match value {
        MetricValue::Counter(v) => *v as f64,
        MetricValue::Gauge(v) => *v,
        MetricValue::Histogram(h) => h.count() as f64,
    }
}

/// Diffs two telemetry snapshots and returns the `top` biggest movers,
/// sorted by magnitude of relative change — metrics that appeared from a
/// zero baseline (infinite relative change) rank first, by absolute fresh
/// value. Unchanged metrics are dropped. Counters and gauges diff by
/// value; histograms by sample count.
pub fn rank_movers(
    baseline: &MetricsSnapshot,
    fresh: &MetricsSnapshot,
    top: usize,
) -> Vec<MetricMover> {
    let mut movers: Vec<MetricMover> = Vec::new();
    let mut diff = |name: &str, base: f64, new: f64| {
        if base == new {
            return;
        }
        movers.push(MetricMover {
            name: name.to_string(),
            baseline: base,
            fresh: new,
            percent: (base != 0.0).then(|| (new - base) / base.abs() * 100.0),
        });
    };
    for (name, value) in fresh.iter() {
        let base = baseline.get(name).map_or(0.0, scalar);
        diff(name, base, scalar(value));
    }
    for (name, value) in baseline.iter() {
        if fresh.get(name).is_none() {
            diff(name, scalar(value), 0.0);
        }
    }
    movers.sort_by(|a, b| {
        let rank = |m: &MetricMover| m.percent.map_or(f64::INFINITY, f64::abs);
        rank(b)
            .total_cmp(&rank(a))
            .then_with(|| b.fresh.abs().total_cmp(&a.fresh.abs()))
            .then_with(|| a.name.cmp(&b.name))
    });
    movers.truncate(top);
    movers
}

/// A parsed baseline document.
#[derive(Debug, Clone)]
pub struct Baseline {
    cells: Vec<BaselineCell>,
}

/// One cell the comparison flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario label of the regressed cell.
    pub scenario: String,
    /// Goodput the baseline recorded (recorded-failure cells are never
    /// flagged, so this is always a real measurement).
    pub baseline_kbps: f64,
    /// Goodput the fresh run delivered (`None`: the fresh run failed).
    pub fresh_kbps: Option<f64>,
    /// The relative tolerance the comparison ran with.
    pub tolerance: f64,
    /// Relative goodput change in percent (always negative for a
    /// regression); `None` when the fresh run failed outright or the
    /// baseline goodput was zero.
    pub percent_delta: Option<f64>,
    /// The [`MOVERS_TOP_N`] biggest per-metric movers between the two
    /// runs of this cell — the forensic "what else changed" trail. Empty
    /// when either side lacks telemetry.
    pub movers: Vec<MetricMover>,
}

impl Regression {
    /// Human-readable report line, with the relative drop when known.
    pub fn describe(&self) -> String {
        let delta = self
            .percent_delta
            .map(|p| format!(" [{p:+.1} %]"))
            .unwrap_or_default();
        match self.fresh_kbps {
            Some(fresh) => format!(
                "{}: goodput {fresh:.1} kb/s fell below {:.1} kb/s ({:.1} kb/s recorded){delta}",
                self.scenario,
                self.baseline_kbps * (1.0 - self.tolerance),
                self.baseline_kbps
            ),
            None => format!(
                "{}: fresh run failed (baseline recorded {:.1} kb/s)",
                self.scenario, self.baseline_kbps
            ),
        }
    }

    /// One report line per metric mover, biggest first (see
    /// [`rank_movers`]).
    pub fn forensic_lines(&self) -> Vec<String> {
        self.movers.iter().map(MetricMover::describe).collect()
    }

    /// How severely this cell regressed, for sorting: the magnitude of the
    /// relative drop, with outright failures ranked above everything.
    fn severity(&self) -> f64 {
        match self.fresh_kbps {
            None => f64::INFINITY,
            Some(_) => self.percent_delta.map_or(0.0, f64::abs),
        }
    }
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Cells present in both the baseline and the fresh run.
    pub compared: usize,
    /// Fresh cells with no baseline counterpart (new grid cells — not a
    /// failure, but the baseline wants refreshing).
    pub unmatched_fresh: usize,
    /// Baseline cells the fresh run never produced (e.g. a `--backend`
    /// restriction, or a removed grid cell).
    pub unmatched_baseline: usize,
    /// Every regressed cell, sorted by severity: outright failures first,
    /// then by magnitude of the relative goodput drop.
    pub regressions: Vec<Regression>,
}

impl BaselineReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.compared > 0
    }

    /// The failure report as GitHub-flavored markdown — the block `repro`
    /// appends to the CI step summary when the gate fails.
    pub fn markdown(&self) -> String {
        let mut out = format!(
            "### Perf gate: {} regressed cell(s) of {} compared\n\n",
            self.regressions.len(),
            self.compared
        );
        for regression in &self.regressions {
            out.push_str(&format!("- **{}**\n", regression.describe()));
            for line in regression.forensic_lines() {
                out.push_str(&format!("  - `{line}`\n"));
            }
        }
        out
    }
}

impl Baseline {
    /// Parses a sweep JSON document (the `repro --sweep --out` format).
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable JSON or a document without the
    /// expected `results` array shape.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let document = parse_json(text)?;
        let results = document
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "baseline document has no 'results' array".to_string())?;
        let mut cells = Vec::with_capacity(results.len());
        for (index, row) in results.iter().enumerate() {
            let scenario = row
                .get("scenario")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("row {index} has no 'scenario' string"))?
                .to_string();
            let ok = row.get("ok").and_then(JsonValue::as_bool).unwrap_or(false);
            let goodput_kbps = if ok {
                Some(
                    row.get("goodput_kbps")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("row {index} ({scenario}) has no goodput"))?,
                )
            } else {
                None
            };
            let number = |key: &str| -> Result<u64, String> {
                row.get(key)
                    .and_then(JsonValue::as_f64)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("row {index} ({scenario}) has no '{key}'"))
            };
            let bits = number("bits")?;
            let seed = number("seed")?;
            let metrics = match row.get("metrics") {
                None => None,
                Some(metrics) => Some(
                    parse_metrics_snapshot(metrics)
                        .map_err(|err| format!("row {index} ({scenario}): {err}"))?,
                ),
            };
            cells.push(BaselineCell {
                scenario,
                bits,
                seed,
                goodput_kbps,
                metrics,
            });
        }
        Ok(Baseline { cells })
    }

    /// Reads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// Filesystem errors and parse errors, as a message.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("could not read {}: {err}", path.display()))?;
        Baseline::parse(&text)
    }

    /// The recorded cells.
    pub fn cells(&self) -> &[BaselineCell] {
        &self.cells
    }

    /// Compares a fresh sweep against the baseline with the given relative
    /// tolerance (see [`DEFAULT_TOLERANCE`]).
    ///
    /// A cell regresses when its fresh goodput falls below
    /// `(1 - tolerance) * recorded`, or when a cell the baseline recorded
    /// as succeeding fails outright. Improvements never flag. Cells only
    /// one side knows are counted but not compared — a baseline recorded
    /// as failing also stays uncompared (the failure may be a time-budget
    /// artifact of the recording machine; flagging *new* failures is the
    /// gate's job).
    pub fn compare(&self, fresh: &[SweepResult], tolerance: f64) -> BaselineReport {
        let cells: Vec<BaselineCell> = fresh.iter().map(BaselineCell::from_result).collect();
        self.compare_cells(&cells, tolerance)
    }

    /// [`Baseline::compare`] over pre-extracted cells — the form `repro
    /// --resume` uses, where part of the fresh run exists only as reused
    /// prior-document rows.
    pub fn compare_cells(&self, fresh: &[BaselineCell], tolerance: f64) -> BaselineReport {
        let fresh_cells: Vec<(&str, u64, u64, Option<f64>)> = fresh
            .iter()
            .map(|c| (c.scenario.as_str(), c.bits, c.seed, c.goodput_kbps))
            .collect();
        let mut compared = 0;
        let mut regressions = Vec::new();
        let mut unmatched_baseline = 0;
        // Tracked per fresh cell (not as a count subtracted from the
        // total) so a malformed baseline with duplicate keys cannot
        // underflow the unmatched-fresh tally.
        let mut fresh_matched = vec![false; fresh_cells.len()];
        for cell in &self.cells {
            let Some(index) = fresh_cells.iter().position(|(scenario, bits, seed, _)| {
                *scenario == cell.scenario && *bits == cell.bits && *seed == cell.seed
            }) else {
                unmatched_baseline += 1;
                continue;
            };
            fresh_matched[index] = true;
            let fresh_goodput = fresh_cells[index].3;
            let Some(base) = cell.goodput_kbps else {
                continue; // Recorded failure: nothing to hold the fresh run to.
            };
            compared += 1;
            let regressed = match fresh_goodput {
                Some(fresh_goodput) => fresh_goodput < base * (1.0 - tolerance),
                None => true,
            };
            if regressed {
                let percent_delta = fresh_goodput
                    .filter(|_| base != 0.0)
                    .map(|fresh| (fresh - base) / base.abs() * 100.0);
                let movers = match (&cell.metrics, &fresh[index].metrics) {
                    (Some(recorded), Some(measured)) => {
                        rank_movers(recorded, measured, MOVERS_TOP_N)
                    }
                    _ => Vec::new(),
                };
                regressions.push(Regression {
                    scenario: cell.scenario.clone(),
                    baseline_kbps: base,
                    fresh_kbps: fresh_goodput,
                    tolerance,
                    percent_delta,
                    movers,
                });
            }
        }
        regressions.sort_by(|a, b| {
            b.severity()
                .total_cmp(&a.severity())
                .then_with(|| a.scenario.cmp(&b.scenario))
        });
        BaselineReport {
            compared,
            unmatched_fresh: fresh_matched.iter().filter(|m| !**m).count(),
            unmatched_baseline,
            regressions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::sweep_results_to_json;
    use crate::sweep::{default_grid_for, SweepRunner};

    fn small_run() -> Vec<SweepResult> {
        SweepRunner::new(2).run(&default_grid_for(&["kabylake-gen9"], 24))
    }

    #[test]
    fn fresh_run_passes_against_its_own_baseline() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        assert_eq!(baseline.cells().len(), results.len());
        let report = baseline.compare(&results, DEFAULT_TOLERANCE);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.compared, results.len());
        assert_eq!(report.unmatched_fresh, 0);
        assert_eq!(report.unmatched_baseline, 0);
    }

    #[test]
    fn dropped_goodput_is_flagged_with_the_cell_named() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut slower = results.clone();
        let victim = slower
            .iter_mut()
            .find(|r| r.outcome.is_ok())
            .expect("some cell succeeds");
        let scenario = victim.point.label();
        let outcome = victim.outcome.as_mut().unwrap();
        outcome.goodput_kbps *= 0.5;
        let report = baseline.compare(&slower, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].scenario, scenario);
        assert!(report.regressions[0].describe().contains(&scenario));
    }

    #[test]
    fn tolerance_absorbs_small_drift_but_not_large() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut drifted = results.clone();
        for r in &mut drifted {
            if let Ok(outcome) = r.outcome.as_mut() {
                outcome.goodput_kbps *= 0.90; // within ±15 %
            }
        }
        assert!(baseline.compare(&drifted, DEFAULT_TOLERANCE).passed());
        for r in &mut drifted {
            if let Ok(outcome) = r.outcome.as_mut() {
                outcome.goodput_kbps *= 0.90; // 0.81 cumulative: outside
            }
        }
        let report = baseline.compare(&drifted, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        // Every cell with *positive* recorded goodput regresses; a cell
        // whose baseline is 0.0 kb/s cannot fall below its tolerance band.
        let positive = baseline
            .cells()
            .iter()
            .filter(|c| c.goodput_kbps.is_some_and(|g| g > 0.0))
            .count();
        assert!(positive > 0);
        assert_eq!(report.regressions.len(), positive);
    }

    #[test]
    fn restricted_fresh_run_compares_the_intersection() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let partial = &results[..2];
        let report = baseline.compare(partial, DEFAULT_TOLERANCE);
        assert!(report.passed());
        assert_eq!(report.compared, 2);
        assert_eq!(report.unmatched_baseline, results.len() - 2);
    }

    #[test]
    fn empty_intersection_does_not_pass() {
        let baseline = Baseline::parse(&sweep_results_to_json(&[])).expect("parses");
        let report = baseline.compare(&small_run(), DEFAULT_TOLERANCE);
        assert!(
            !report.passed(),
            "a gate that compared nothing must not pass"
        );
        assert_eq!(report.compared, 0);
    }

    #[test]
    fn recorded_failure_rows_are_not_held_against_the_fresh_run() {
        let mut results = small_run();
        let json_with_failure = {
            let victim = &mut results[0];
            victim.outcome = Err(covert::prelude::ChannelError::InvalidConfig(
                "synthetic".into(),
            ));
            sweep_results_to_json(&results)
        };
        let baseline = Baseline::parse(&json_with_failure).expect("parses");
        // Fresh run where that cell now *succeeds*: fine either way.
        let fresh = small_run();
        let report = baseline.compare(&fresh, DEFAULT_TOLERANCE);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.compared, fresh.len() - 1);
    }

    #[test]
    fn rank_movers_sorts_by_relative_change_with_new_metrics_first() {
        let baseline = MetricsSnapshot::from_entries([
            ("link.retransmissions".to_string(), MetricValue::Counter(29)),
            ("link.frames_sent".to_string(), MetricValue::Counter(100)),
            ("adapt.rung".to_string(), MetricValue::Gauge(4.0)),
            ("sim.steady".to_string(), MetricValue::Counter(7)),
        ]);
        let fresh = MetricsSnapshot::from_entries([
            ("link.retransmissions".to_string(), MetricValue::Counter(90)),
            ("link.frames_sent".to_string(), MetricValue::Counter(100)),
            ("adapt.rung".to_string(), MetricValue::Gauge(2.0)),
            ("sim.steady".to_string(), MetricValue::Counter(7)),
            ("link.sync_failures".to_string(), MetricValue::Counter(12)),
        ]);
        let movers = rank_movers(&baseline, &fresh, 5);
        let names: Vec<&str> = movers.iter().map(|m| m.name.as_str()).collect();
        // New-from-zero first, then by |percent|: +210.3 % beats -50 %.
        assert_eq!(
            names,
            ["link.sync_failures", "link.retransmissions", "adapt.rung"]
        );
        assert_eq!(movers[0].percent, None);
        assert!(movers[0].describe().contains("new (0 -> 12)"));
        let retrans = &movers[1];
        assert!((retrans.percent.unwrap() - 210.344).abs() < 0.01);
        assert!(
            retrans.describe().contains("+210.3 % (29 -> 90)"),
            "{}",
            retrans.describe()
        );
        assert!(movers[2].describe().contains("-50.0 % (4 -> 2)"));
        // Unchanged metrics never appear; top-N truncates.
        assert_eq!(rank_movers(&baseline, &fresh, 1).len(), 1);
    }

    #[test]
    fn regressed_cells_carry_ranked_movers_and_sort_by_severity() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut slower = results.clone();
        let mut victims = Vec::new();
        for (index, drop) in slower
            .iter_mut()
            .filter(|r| {
                r.outcome
                    .as_ref()
                    .is_ok_and(|o| o.goodput_kbps > 0.0 && o.metrics.is_some())
            })
            .zip([0.5, 0.7])
        {
            victims.push((index.point.label(), drop));
            let outcome = index.outcome.as_mut().unwrap();
            outcome.goodput_kbps *= drop;
            // Perturb several counters so the forensic diff has movers.
            let perturbed: Vec<(String, MetricValue)> = outcome
                .metrics
                .as_ref()
                .unwrap()
                .iter()
                .map(|(name, value)| {
                    let value = match value {
                        MetricValue::Counter(v) => MetricValue::Counter(v * 3 + 1),
                        other => other.clone(),
                    };
                    (name.to_string(), value)
                })
                .collect();
            outcome.metrics = Some(MetricsSnapshot::from_entries(perturbed));
        }
        assert_eq!(victims.len(), 2, "need two comparable cells");
        let report = baseline.compare(&slower, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions.len(), 2);
        // Sorted by severity: the -50 % cell outranks the -30 % cell.
        assert_eq!(report.regressions[0].scenario, victims[0].0);
        let worst = &report.regressions[0];
        assert!((worst.percent_delta.unwrap() + 50.0).abs() < 1e-6);
        assert!(
            worst.describe().contains("[-50.0 %]"),
            "{}",
            worst.describe()
        );
        assert!(
            worst.movers.len() >= 3,
            "expected ≥3 ranked movers, got {:?}",
            worst.forensic_lines()
        );
        let markdown = report.markdown();
        assert!(markdown.contains("### Perf gate: 2 regressed cell(s)"));
        assert!(markdown.contains(&worst.movers[0].name));
    }

    #[test]
    fn fresh_failure_of_a_recorded_success_is_a_regression() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut broken = results.clone();
        broken[0].outcome = Err(covert::prelude::ChannelError::InvalidConfig(
            "synthetic".into(),
        ));
        let report = baseline.compare(&broken, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0]
            .describe()
            .contains("fresh run failed"));
    }
}
