//! The CI performance-regression gate.
//!
//! A committed sweep document (`bench/baseline.json`, written by
//! `repro --quick --sweep --out …`) records the per-cell goodput the
//! current code is known to deliver. [`Baseline::parse`] reads such a
//! document back through [`crate::json::parse_json`], and
//! [`Baseline::compare`] checks a fresh run of the same grid against it
//! cell by cell: a cell whose goodput fell more than the tolerance below
//! its recorded value is a regression, and `repro --check-baseline <file>`
//! exits non-zero listing every one. The simulator is deterministic per
//! seed, so on an unchanged tree the comparison reproduces the baseline
//! bit for bit — the tolerance only absorbs deliberate, reviewed behavior
//! changes small enough not to matter (and cross-platform float drift,
//! should the CI image change).
//!
//! Cells are matched on `(scenario, bits, seed)`: the scenario label
//! encodes every grid axis (backend, channel, noise, code, policy, channel
//! parameters) but collides *across* sweep sections — see
//! [`BaselineCell`].

use crate::json::{parse_json, JsonValue};
use crate::sweep::SweepResult;
use std::path::Path;

/// Default relative tolerance of the gate: a cell regresses when its fresh
/// goodput drops below `(1 - 0.15)` of the recorded value.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One recorded cell of the baseline document.
///
/// Cells are matched on `(scenario, bits, seed)`: the scenario label alone
/// is not unique across the sweep *sections* — the coded grid's `NoCode`
/// row labels identically to the classic grid's row for the same backend ×
/// channel × noise cell and differs only in payload size and seed.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCell {
    /// The row's scenario label.
    pub scenario: String,
    /// Payload bits of the recorded point.
    pub bits: u64,
    /// Seed of the recorded point.
    pub seed: u64,
    /// Recorded goodput in kb/s, or `None` for a row that recorded a
    /// failure (failed cells are compared by failure, not by goodput).
    pub goodput_kbps: Option<f64>,
}

impl BaselineCell {
    /// The comparable cell of a fresh sweep row — also how resumed rows
    /// (which exist only as prior-document JSON, not as [`SweepResult`]s)
    /// enter the gate.
    pub fn from_result(result: &SweepResult) -> BaselineCell {
        BaselineCell {
            scenario: result.point.label(),
            bits: result.point.bits as u64,
            seed: result.point.seed,
            goodput_kbps: result.outcome.as_ref().ok().map(|o| o.goodput_kbps),
        }
    }
}

/// A parsed baseline document.
#[derive(Debug, Clone)]
pub struct Baseline {
    cells: Vec<BaselineCell>,
}

/// One cell the comparison flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario label of the regressed cell.
    pub scenario: String,
    /// Goodput the baseline recorded (recorded-failure cells are never
    /// flagged, so this is always a real measurement).
    pub baseline_kbps: f64,
    /// Goodput the fresh run delivered (`None`: the fresh run failed).
    pub fresh_kbps: Option<f64>,
    /// The relative tolerance the comparison ran with.
    pub tolerance: f64,
}

impl Regression {
    /// Human-readable report line.
    pub fn describe(&self) -> String {
        match self.fresh_kbps {
            Some(fresh) => format!(
                "{}: goodput {fresh:.1} kb/s fell below {:.1} kb/s ({:.1} kb/s recorded)",
                self.scenario,
                self.baseline_kbps * (1.0 - self.tolerance),
                self.baseline_kbps
            ),
            None => format!(
                "{}: fresh run failed (baseline recorded {:.1} kb/s)",
                self.scenario, self.baseline_kbps
            ),
        }
    }
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Cells present in both the baseline and the fresh run.
    pub compared: usize,
    /// Fresh cells with no baseline counterpart (new grid cells — not a
    /// failure, but the baseline wants refreshing).
    pub unmatched_fresh: usize,
    /// Baseline cells the fresh run never produced (e.g. a `--backend`
    /// restriction, or a removed grid cell).
    pub unmatched_baseline: usize,
    /// Every regressed cell, in grid order.
    pub regressions: Vec<Regression>,
}

impl BaselineReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.compared > 0
    }
}

impl Baseline {
    /// Parses a sweep JSON document (the `repro --sweep --out` format).
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable JSON or a document without the
    /// expected `results` array shape.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let document = parse_json(text)?;
        let results = document
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "baseline document has no 'results' array".to_string())?;
        let mut cells = Vec::with_capacity(results.len());
        for (index, row) in results.iter().enumerate() {
            let scenario = row
                .get("scenario")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("row {index} has no 'scenario' string"))?
                .to_string();
            let ok = row.get("ok").and_then(JsonValue::as_bool).unwrap_or(false);
            let goodput_kbps = if ok {
                Some(
                    row.get("goodput_kbps")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("row {index} ({scenario}) has no goodput"))?,
                )
            } else {
                None
            };
            let number = |key: &str| -> Result<u64, String> {
                row.get(key)
                    .and_then(JsonValue::as_f64)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("row {index} ({scenario}) has no '{key}'"))
            };
            let bits = number("bits")?;
            let seed = number("seed")?;
            cells.push(BaselineCell {
                scenario,
                bits,
                seed,
                goodput_kbps,
            });
        }
        Ok(Baseline { cells })
    }

    /// Reads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// Filesystem errors and parse errors, as a message.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("could not read {}: {err}", path.display()))?;
        Baseline::parse(&text)
    }

    /// The recorded cells.
    pub fn cells(&self) -> &[BaselineCell] {
        &self.cells
    }

    /// Compares a fresh sweep against the baseline with the given relative
    /// tolerance (see [`DEFAULT_TOLERANCE`]).
    ///
    /// A cell regresses when its fresh goodput falls below
    /// `(1 - tolerance) * recorded`, or when a cell the baseline recorded
    /// as succeeding fails outright. Improvements never flag. Cells only
    /// one side knows are counted but not compared — a baseline recorded
    /// as failing also stays uncompared (the failure may be a time-budget
    /// artifact of the recording machine; flagging *new* failures is the
    /// gate's job).
    pub fn compare(&self, fresh: &[SweepResult], tolerance: f64) -> BaselineReport {
        let cells: Vec<BaselineCell> = fresh.iter().map(BaselineCell::from_result).collect();
        self.compare_cells(&cells, tolerance)
    }

    /// [`Baseline::compare`] over pre-extracted cells — the form `repro
    /// --resume` uses, where part of the fresh run exists only as reused
    /// prior-document rows.
    pub fn compare_cells(&self, fresh: &[BaselineCell], tolerance: f64) -> BaselineReport {
        let fresh_cells: Vec<(&str, u64, u64, Option<f64>)> = fresh
            .iter()
            .map(|c| (c.scenario.as_str(), c.bits, c.seed, c.goodput_kbps))
            .collect();
        let mut compared = 0;
        let mut regressions = Vec::new();
        let mut unmatched_baseline = 0;
        // Tracked per fresh cell (not as a count subtracted from the
        // total) so a malformed baseline with duplicate keys cannot
        // underflow the unmatched-fresh tally.
        let mut fresh_matched = vec![false; fresh_cells.len()];
        for cell in &self.cells {
            let Some(index) = fresh_cells.iter().position(|(scenario, bits, seed, _)| {
                *scenario == cell.scenario && *bits == cell.bits && *seed == cell.seed
            }) else {
                unmatched_baseline += 1;
                continue;
            };
            fresh_matched[index] = true;
            let fresh_goodput = fresh_cells[index].3;
            let Some(base) = cell.goodput_kbps else {
                continue; // Recorded failure: nothing to hold the fresh run to.
            };
            compared += 1;
            let regressed = match fresh_goodput {
                Some(fresh_goodput) => fresh_goodput < base * (1.0 - tolerance),
                None => true,
            };
            if regressed {
                regressions.push(Regression {
                    scenario: cell.scenario.clone(),
                    baseline_kbps: base,
                    fresh_kbps: fresh_goodput,
                    tolerance,
                });
            }
        }
        BaselineReport {
            compared,
            unmatched_fresh: fresh_matched.iter().filter(|m| !**m).count(),
            unmatched_baseline,
            regressions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::sweep_results_to_json;
    use crate::sweep::{default_grid_for, SweepRunner};

    fn small_run() -> Vec<SweepResult> {
        SweepRunner::new(2).run(&default_grid_for(&["kabylake-gen9"], 24))
    }

    #[test]
    fn fresh_run_passes_against_its_own_baseline() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        assert_eq!(baseline.cells().len(), results.len());
        let report = baseline.compare(&results, DEFAULT_TOLERANCE);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.compared, results.len());
        assert_eq!(report.unmatched_fresh, 0);
        assert_eq!(report.unmatched_baseline, 0);
    }

    #[test]
    fn dropped_goodput_is_flagged_with_the_cell_named() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut slower = results.clone();
        let victim = slower
            .iter_mut()
            .find(|r| r.outcome.is_ok())
            .expect("some cell succeeds");
        let scenario = victim.point.label();
        let outcome = victim.outcome.as_mut().unwrap();
        outcome.goodput_kbps *= 0.5;
        let report = baseline.compare(&slower, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].scenario, scenario);
        assert!(report.regressions[0].describe().contains(&scenario));
    }

    #[test]
    fn tolerance_absorbs_small_drift_but_not_large() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut drifted = results.clone();
        for r in &mut drifted {
            if let Ok(outcome) = r.outcome.as_mut() {
                outcome.goodput_kbps *= 0.90; // within ±15 %
            }
        }
        assert!(baseline.compare(&drifted, DEFAULT_TOLERANCE).passed());
        for r in &mut drifted {
            if let Ok(outcome) = r.outcome.as_mut() {
                outcome.goodput_kbps *= 0.90; // 0.81 cumulative: outside
            }
        }
        let report = baseline.compare(&drifted, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        // Every cell with *positive* recorded goodput regresses; a cell
        // whose baseline is 0.0 kb/s cannot fall below its tolerance band.
        let positive = baseline
            .cells()
            .iter()
            .filter(|c| c.goodput_kbps.is_some_and(|g| g > 0.0))
            .count();
        assert!(positive > 0);
        assert_eq!(report.regressions.len(), positive);
    }

    #[test]
    fn restricted_fresh_run_compares_the_intersection() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let partial = &results[..2];
        let report = baseline.compare(partial, DEFAULT_TOLERANCE);
        assert!(report.passed());
        assert_eq!(report.compared, 2);
        assert_eq!(report.unmatched_baseline, results.len() - 2);
    }

    #[test]
    fn empty_intersection_does_not_pass() {
        let baseline = Baseline::parse(&sweep_results_to_json(&[])).expect("parses");
        let report = baseline.compare(&small_run(), DEFAULT_TOLERANCE);
        assert!(
            !report.passed(),
            "a gate that compared nothing must not pass"
        );
        assert_eq!(report.compared, 0);
    }

    #[test]
    fn recorded_failure_rows_are_not_held_against_the_fresh_run() {
        let mut results = small_run();
        let json_with_failure = {
            let victim = &mut results[0];
            victim.outcome = Err(covert::prelude::ChannelError::InvalidConfig(
                "synthetic".into(),
            ));
            sweep_results_to_json(&results)
        };
        let baseline = Baseline::parse(&json_with_failure).expect("parses");
        // Fresh run where that cell now *succeeds*: fine either way.
        let fresh = small_run();
        let report = baseline.compare(&fresh, DEFAULT_TOLERANCE);
        assert!(report.passed(), "{:?}", report.regressions);
        assert_eq!(report.compared, fresh.len() - 1);
    }

    #[test]
    fn fresh_failure_of_a_recorded_success_is_a_regression() {
        let results = small_run();
        let baseline = Baseline::parse(&sweep_results_to_json(&results)).expect("parses");
        let mut broken = results.clone();
        broken[0].outcome = Err(covert::prelude::ChannelError::InvalidConfig(
            "synthetic".into(),
        ));
        let report = baseline.compare(&broken, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0]
            .describe()
            .contains("fresh run failed"));
    }
}
