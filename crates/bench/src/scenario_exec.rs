//! Materializing scenario files into backend registries and sweep grids.
//!
//! The [`scenario`] crate owns the *schema* — parsing a `scenario-v1`
//! document into named [`TopologySpec`]s, policy parameter sets and sweep
//! sections with field-path-precise errors. This module owns the
//! *execution* side: registering the scenario's topologies into a
//! [`BackendRegistry`] (so sweep points can name them like any compiled-in
//! preset) and expanding each sweep section into the [`SweepPoint`]s the
//! [`SweepRunner`](crate::sweep::SweepRunner) executes.
//!
//! Bit-identity is the central contract. A `classic`, `coded` or `adaptive`
//! section with no axis overrides expands to exactly the rows of the
//! built-in generators ([`default_grid_for`], [`coded_grid_for`],
//! [`adaptive_grid_for`](crate::sweep::adaptive_grid_for)) — same order,
//! same seeds, same
//! [`SweepPoint::key`]s — which is how `scenarios/default.json` reproduces
//! `bench/baseline.json` without a single committed-baseline change.
//!
//! Points that run on a scenario-defined topology carry its
//! [`TopologySpec::fingerprint`] in [`SweepPoint::backend_fingerprint`], so
//! their resume keys change whenever the scenario file's topology does:
//! `--resume` against an edited scenario re-simulates the affected rows
//! instead of replaying stale ones.
//!
//! [`TopologySpec`]: soc_sim::prelude::TopologySpec
//! [`TopologySpec::fingerprint`]: soc_sim::prelude::TopologySpec::fingerprint

use crate::sweep::{coded_grid_for, default_grid_for, ChannelKind, NoiseLevel, SweepPoint};
use covert::prelude::{LinkCodeKind, PolicyKind};
use scenario::{parse_scenario, NamedPolicy, Scenario, SectionKind, SweepSection};
use soc_sim::prelude::{BackendRegistry, BackendSpec};
use std::path::Path;

/// Reads and parses a scenario file, prefixing every error with the path.
///
/// # Errors
///
/// Filesystem errors and [`parse_scenario`] errors (field-path-precise), as
/// a message naming the file.
pub fn load_scenario(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("could not read {}: {err}", path.display()))?;
    parse_scenario(&text).map_err(|err| format!("{}: {err}", path.display()))
}

/// Builds the backend registry a set of loaded scenarios runs against: the
/// standard presets plus one [`BackendSpec`] per scenario topology.
///
/// # Errors
///
/// A scenario topology whose name collides with a built-in backend or with
/// a topology of another loaded scenario is an error — silently shadowing a
/// preset would make `--resume` keys and baseline rows ambiguous.
pub fn scenario_registry(scenarios: &[Scenario]) -> Result<BackendRegistry, String> {
    let mut registry = BackendRegistry::standard();
    let builtin: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let mut registered: Vec<(String, String)> = Vec::new();
    for scenario in scenarios {
        for topology in &scenario.topologies {
            if builtin.contains(&topology.name) {
                return Err(format!(
                    "scenario '{}': topology '{}' collides with the built-in backend of the \
                     same name",
                    scenario.name, topology.name
                ));
            }
            if let Some((_, owner)) = registered.iter().find(|(n, _)| *n == topology.name) {
                return Err(format!(
                    "scenario '{}': topology '{}' is already defined by scenario '{owner}'",
                    scenario.name, topology.name
                ));
            }
            registered.push((topology.name.clone(), scenario.name.clone()));
            registry.register(BackendSpec::from_topology(
                topology.name.clone(),
                topology.summary.clone(),
                topology.spec.clone(),
            ));
        }
    }
    Ok(registry)
}

/// CLI-level restrictions applied on top of a scenario's own axes
/// (`repro --backend/--code/--policy`). Each override only touches sections
/// that left the corresponding axis at its default — a section that pins
/// its own codes or policies says exactly what it means, and a global flag
/// silently rewriting it would make the committed scenario files lie.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridOverrides<'a> {
    /// Restrict every section to this one backend (sections that exclude
    /// it expand to nothing).
    pub backend: Option<&'a str>,
    /// Link codes for `coded` sections without a `codes` axis.
    pub codes: Option<&'a [LinkCodeKind]>,
    /// Policies for `adaptive` sections without a `policies` axis (the
    /// fixed-code baselines always run).
    pub policies: Option<&'a [PolicyKind]>,
}

/// One sweep section expanded into runnable points.
#[derive(Debug, Clone)]
pub struct MaterializedSection {
    /// Name of the scenario the section came from.
    pub scenario: String,
    /// Index of the section within its scenario's `sweeps` array.
    pub index: usize,
    /// What the section materializes into.
    pub kind: SectionKind,
    /// Whether the section runs the framed engine
    /// ([`TransceiverConfig::paper_default`](covert::prelude::TransceiverConfig::paper_default))
    /// or the raw one.
    pub framed: bool,
    /// The expanded grid, in deterministic section order.
    pub points: Vec<SweepPoint>,
}

/// A policy axis entry of an adaptive or grid section: a built-in family at
/// its paper defaults, or a scenario-defined parameter set.
enum SectionPolicy<'a> {
    Builtin(PolicyKind),
    Named(&'a NamedPolicy),
}

/// Default payload bits per section kind, `(quick, full)` — the values the
/// pre-scenario `repro` hard-coded for its three sweep sections.
fn default_bits(kind: SectionKind) -> (usize, usize) {
    match kind {
        SectionKind::Classic | SectionKind::Grid => (64, 200),
        SectionKind::Coded => (128, 320),
        SectionKind::Adaptive => (448, 1792),
    }
}

fn parse_channel(label: &str, path: &str) -> Result<ChannelKind, String> {
    ChannelKind::ALL
        .into_iter()
        .find(|c| c.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = ChannelKind::ALL.iter().map(|c| c.label()).collect();
            format!(
                "{path}: unknown channel {label:?} (known: {})",
                known.join(", ")
            )
        })
}

fn parse_noise_level(label: &str, path: &str) -> Result<NoiseLevel, String> {
    NoiseLevel::ALL
        .into_iter()
        .find(|n| n.label() == label)
        .ok_or_else(|| {
            let known: Vec<&str> = NoiseLevel::ALL.iter().map(|n| n.label()).collect();
            format!(
                "{path}: unknown noise level {label:?} (known: {})",
                known.join(", ")
            )
        })
}

/// Resolves a section's backend axis against the registry: the explicit
/// list (every name validated) or every registered backend, then the
/// `--backend` restriction.
fn section_backends(
    section: &SweepSection,
    registry: &BackendRegistry,
    overrides: &GridOverrides,
    path: &str,
) -> Result<Vec<String>, String> {
    let mut backends: Vec<String> = match &section.backends {
        Some(names) => {
            for (i, name) in names.iter().enumerate() {
                if registry.get(name).is_none() {
                    return Err(format!(
                        "{path}.backends[{i}]: unknown backend {name:?} (available: {})",
                        registry.names().join(", ")
                    ));
                }
            }
            names.clone()
        }
        None => registry.names().iter().map(|n| n.to_string()).collect(),
    };
    if let Some(only) = overrides.backend {
        backends.retain(|b| b == only);
    }
    Ok(backends)
}

/// Resolves a section's policy axis: built-in family labels stay families
/// (paper-default parameters), scenario-defined names carry their full
/// parameter set. Name existence was validated at parse time.
fn section_policies<'a>(
    names: &[String],
    scenario: &'a Scenario,
    path: &str,
) -> Result<Vec<SectionPolicy<'a>>, String> {
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            if let Some(kind) = PolicyKind::ALL.iter().find(|k| k.label() == name.as_str()) {
                return Ok(SectionPolicy::Builtin(*kind));
            }
            scenario
                .policy(name)
                .map(SectionPolicy::Named)
                .ok_or_else(|| format!("{path}.policies[{i}]: unknown policy {name:?}"))
        })
        .collect()
}

/// The adaptive expansion, generalized over scenario-defined policies.
/// With built-in policies and the default code list this reproduces
/// [`adaptive_grid_for`] exactly (same order, same seeds) — the fixed-code
/// baselines expand first within each (backend, channel) cell, then every
/// non-fixed policy in axis order.
fn adaptive_points(
    backends: &[String],
    bits: usize,
    codes: &[LinkCodeKind],
    policies: &[SectionPolicy],
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for backend in backends {
        for (cell, channel) in ChannelKind::ALL.into_iter().enumerate() {
            let cell = cell as u64 + 1;
            let channel_bits = match channel {
                ChannelKind::LlcPrimeProbe => bits,
                ChannelKind::RingContention => bits * 3,
            };
            let base = |code: LinkCodeKind| {
                let mut point =
                    SweepPoint::paper_default(backend.clone(), channel, NoiseLevel::Phased);
                point.bits = channel_bits;
                point.code = code;
                point.seed = 7 + cell * 131;
                point
            };
            if policies
                .iter()
                .any(|p| matches!(p, SectionPolicy::Builtin(PolicyKind::Fixed)))
            {
                for &code in codes {
                    let mut point = base(code);
                    point.policy = Some(PolicyKind::Fixed);
                    points.push(point);
                }
            }
            for policy in policies {
                match policy {
                    SectionPolicy::Builtin(PolicyKind::Fixed) => {} // expanded above
                    SectionPolicy::Builtin(kind) => {
                        let mut point = base(LinkCodeKind::None);
                        point.policy = Some(*kind);
                        points.push(point);
                    }
                    SectionPolicy::Named(named) => {
                        points.push(
                            base(LinkCodeKind::None).with_policy_params(named.params.clone()),
                        );
                    }
                }
            }
        }
    }
    points
}

/// The explicit `grid` cross-product: backend × channel × noise × code ×
/// policy × seed, in that loop order.
fn grid_points(
    section: &SweepSection,
    scenario: &Scenario,
    backends: &[String],
    bits: usize,
    path: &str,
) -> Result<Vec<SweepPoint>, String> {
    let channels: Vec<ChannelKind> = match &section.channels {
        Some(labels) => labels
            .iter()
            .enumerate()
            .map(|(i, l)| parse_channel(l, &format!("{path}.channels[{i}]")))
            .collect::<Result<_, _>>()?,
        None => ChannelKind::ALL.to_vec(),
    };
    let noise: Vec<NoiseLevel> = match &section.noise {
        Some(labels) => labels
            .iter()
            .enumerate()
            .map(|(i, l)| parse_noise_level(l, &format!("{path}.noise[{i}]")))
            .collect::<Result<_, _>>()?,
        None => vec![NoiseLevel::Quiet, NoiseLevel::Noisy],
    };
    let codes: &[LinkCodeKind] = match &section.codes {
        Some(codes) => codes,
        None => &[LinkCodeKind::None],
    };
    let policies: Vec<Option<SectionPolicy>> = match &section.policies {
        Some(names) => section_policies(names, scenario, path)?
            .into_iter()
            .map(Some)
            .collect(),
        None => vec![None],
    };
    let seeds: &[u64] = match &section.seeds {
        Some(seeds) => seeds,
        None => &[7],
    };
    let mut points = Vec::new();
    for backend in backends {
        for &channel in &channels {
            for &level in &noise {
                for &code in codes {
                    for policy in &policies {
                        for &seed in seeds {
                            let mut point =
                                SweepPoint::paper_default(backend.clone(), channel, level);
                            point.bits = bits;
                            point.code = code;
                            point.seed = seed;
                            match policy {
                                None => {}
                                Some(SectionPolicy::Builtin(kind)) => point.policy = Some(*kind),
                                Some(SectionPolicy::Named(named)) => {
                                    point = point.with_policy_params(named.params.clone());
                                }
                            }
                            points.push(point);
                        }
                    }
                }
            }
        }
    }
    Ok(points)
}

/// Expands every sweep section of a scenario into runnable points against
/// `registry` (normally [`scenario_registry`]'s output).
///
/// Points whose backend is a scenario-defined topology are stamped with its
/// [`TopologySpec::fingerprint`](soc_sim::prelude::TopologySpec::fingerprint)
/// (see the module docs); registry presets are left unstamped, preserving
/// every historical point key.
///
/// # Errors
///
/// Unknown backend names, channel labels or noise labels, with the
/// `sweeps[i].axis` path of the offending field.
pub fn materialize_sections(
    scenario: &Scenario,
    registry: &BackendRegistry,
    quick: bool,
    overrides: &GridOverrides,
) -> Result<Vec<MaterializedSection>, String> {
    let mut sections = Vec::with_capacity(scenario.sweeps.len());
    for (index, section) in scenario.sweeps.iter().enumerate() {
        let path = format!("sweeps[{index}]");
        let backends = section_backends(section, registry, overrides, &path)?;
        let backend_refs: Vec<&str> = backends.iter().map(String::as_str).collect();
        let (quick_bits, full_bits) = match section.bits {
            Some(bits) => (bits.quick, bits.full),
            None => default_bits(section.kind),
        };
        let bits = if quick { quick_bits } else { full_bits };
        let mut points = match section.kind {
            SectionKind::Classic => default_grid_for(&backend_refs, bits),
            SectionKind::Coded => {
                let codes: Vec<LinkCodeKind> = match (&section.codes, overrides.codes) {
                    (Some(codes), _) => codes.clone(),
                    (None, Some(codes)) => codes.to_vec(),
                    (None, None) => LinkCodeKind::all().to_vec(),
                };
                coded_grid_for(&backend_refs, bits, &codes)
            }
            SectionKind::Adaptive => {
                let codes: Vec<LinkCodeKind> = section
                    .codes
                    .clone()
                    .unwrap_or_else(|| LinkCodeKind::all().to_vec());
                let policies: Vec<SectionPolicy> = match &section.policies {
                    Some(names) => section_policies(names, scenario, &path)?,
                    None => {
                        // The fixed-code baselines always run — the
                        // adaptive-vs-fixed comparison is the point of the
                        // section — plus the selected (default: all)
                        // adaptive families.
                        let selected = overrides.policies.unwrap_or(&PolicyKind::ALL);
                        let mut kinds = vec![PolicyKind::Fixed];
                        kinds.extend(selected.iter().copied().filter(|p| *p != PolicyKind::Fixed));
                        kinds.into_iter().map(SectionPolicy::Builtin).collect()
                    }
                };
                adaptive_points(&backends, bits, &codes, &policies)
            }
            SectionKind::Grid => grid_points(section, scenario, &backends, bits, &path)?,
        };
        for point in &mut points {
            point.backend_fingerprint = registry
                .get(&point.backend)
                .and_then(BackendSpec::topology_fingerprint);
        }
        let framed = match section.kind {
            SectionKind::Classic => false,
            SectionKind::Coded | SectionKind::Adaptive => true,
            SectionKind::Grid => match section.engine.as_deref() {
                Some("framed") => true,
                Some(_) => false,
                None => section.codes.is_some() || section.policies.is_some(),
            },
        };
        sections.push(MaterializedSection {
            scenario: scenario.name.clone(),
            index,
            kind: section.kind,
            framed,
            points,
        });
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{adaptive_grid_for, coded_grid_for, default_grid_for};

    const MINIMAL_DEFAULT: &str = r#"{
        "schema": "leaky-buddies/scenario-v1",
        "name": "default",
        "sweeps": [{"kind": "classic"}, {"kind": "coded"}, {"kind": "adaptive"}]
    }"#;

    fn keys(points: &[SweepPoint]) -> Vec<String> {
        points.iter().map(SweepPoint::key).collect()
    }

    #[test]
    fn bare_sections_reproduce_the_builtin_generators_bit_for_bit() {
        let scenario = parse_scenario(MINIMAL_DEFAULT).expect("parses");
        let registry = scenario_registry(std::slice::from_ref(&scenario)).expect("registry");
        let backends = registry.names();
        for quick in [true, false] {
            let sections =
                materialize_sections(&scenario, &registry, quick, &GridOverrides::default())
                    .expect("materializes");
            assert_eq!(sections.len(), 3);
            let (classic, coded, adaptive) = if quick {
                (64, 128, 448)
            } else {
                (200, 320, 1792)
            };
            assert_eq!(
                keys(&sections[0].points),
                keys(&default_grid_for(&backends, classic))
            );
            assert!(!sections[0].framed);
            assert_eq!(
                keys(&sections[1].points),
                keys(&coded_grid_for(&backends, coded, &LinkCodeKind::all()))
            );
            assert!(sections[1].framed);
            assert_eq!(
                keys(&sections[2].points),
                keys(&adaptive_grid_for(&backends, adaptive, &PolicyKind::ALL))
            );
            assert!(sections[2].framed);
        }
    }

    #[test]
    fn overrides_mirror_the_cli_flags() {
        let scenario = parse_scenario(MINIMAL_DEFAULT).expect("parses");
        let registry = scenario_registry(std::slice::from_ref(&scenario)).expect("registry");
        let codes = [LinkCodeKind::Crc8];
        let policies = [PolicyKind::Bandit];
        let overrides = GridOverrides {
            backend: Some("kabylake-gen9"),
            codes: Some(&codes),
            policies: Some(&policies),
        };
        let sections =
            materialize_sections(&scenario, &registry, true, &overrides).expect("materializes");
        assert_eq!(
            keys(&sections[0].points),
            keys(&default_grid_for(&["kabylake-gen9"], 64))
        );
        assert_eq!(
            keys(&sections[1].points),
            keys(&coded_grid_for(&["kabylake-gen9"], 128, &codes))
        );
        assert_eq!(
            keys(&sections[2].points),
            keys(&adaptive_grid_for(
                &["kabylake-gen9"],
                448,
                &[PolicyKind::Fixed, PolicyKind::Bandit]
            ))
        );
    }

    #[test]
    fn scenario_topologies_register_and_fingerprint_their_points() {
        let text = r#"{
            "schema": "leaky-buddies/scenario-v1",
            "name": "custom",
            "topologies": [
                {"name": "wide-llc", "summary": "12-way LLC", "llc": {"ways": 12}}
            ],
            "sweeps": [{"kind": "classic", "backends": ["wide-llc", "kabylake-gen9"]}]
        }"#;
        let scenario = parse_scenario(text).expect("parses");
        let registry = scenario_registry(std::slice::from_ref(&scenario)).expect("registry");
        assert!(registry.get("wide-llc").is_some());
        let sections = materialize_sections(&scenario, &registry, true, &GridOverrides::default())
            .expect("materializes");
        let points = &sections[0].points;
        assert_eq!(points.len(), 8);
        let expected = scenario.topologies[0].spec.fingerprint();
        for point in points {
            match point.backend.as_str() {
                "wide-llc" => assert_eq!(point.backend_fingerprint, Some(expected)),
                _ => assert_eq!(point.backend_fingerprint, None, "presets stay unstamped"),
            }
        }
        // An edited topology must change the fingerprints (and with them
        // every resume key) of the points that run on it.
        let edited = text.replace("\"ways\": 12", "\"ways\": 16");
        let scenario2 = parse_scenario(&edited).expect("parses");
        let registry2 = scenario_registry(std::slice::from_ref(&scenario2)).expect("registry");
        let sections2 =
            materialize_sections(&scenario2, &registry2, true, &GridOverrides::default())
                .expect("materializes");
        let (a, b) = (&sections[0].points[0], &sections2[0].points[0]);
        assert_eq!(a.backend, "wide-llc");
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn topology_name_collisions_are_rejected() {
        let shadowing = r#"{
            "schema": "leaky-buddies/scenario-v1",
            "name": "bad",
            "topologies": [{"name": "kabylake-gen9", "summary": "shadow"}],
            "sweeps": []
        }"#;
        let scenario = parse_scenario(shadowing).expect("parses");
        let err = scenario_registry(std::slice::from_ref(&scenario)).unwrap_err();
        assert!(err.contains("collides with the built-in backend"), "{err}");

        let one = r#"{
            "schema": "leaky-buddies/scenario-v1",
            "name": "one",
            "topologies": [{"name": "shared", "summary": "a"}],
            "sweeps": []
        }"#;
        let two = one.replace("\"one\"", "\"two\"");
        let scenarios = [
            parse_scenario(one).expect("parses"),
            parse_scenario(&two).expect("parses"),
        ];
        let err = scenario_registry(&scenarios).unwrap_err();
        assert!(err.contains("already defined by scenario 'one'"), "{err}");
    }

    #[test]
    fn grid_sections_cross_their_axes_and_validate_labels() {
        let text = r#"{
            "schema": "leaky-buddies/scenario-v1",
            "name": "grid",
            "policies": [
                {"name": "eager", "kind": "threshold", "raise_ber": 0.08}
            ],
            "sweeps": [{
                "kind": "grid",
                "backends": ["kabylake-gen9"],
                "channels": ["ring-contention"],
                "noise": ["quiet", "phased"],
                "codes": ["crc8"],
                "policies": ["eager", "threshold"],
                "seeds": [7, 11],
                "bits": {"quick": 32, "full": 96}
            }]
        }"#;
        let scenario = parse_scenario(text).expect("parses");
        let registry = scenario_registry(std::slice::from_ref(&scenario)).expect("registry");
        let sections = materialize_sections(&scenario, &registry, true, &GridOverrides::default())
            .expect("materializes");
        let points = &sections[0].points;
        // 1 backend x 1 channel x 2 noise x 1 code x 2 policies x 2 seeds.
        assert_eq!(points.len(), 8);
        assert!(sections[0].framed, "codes/policies imply the framed engine");
        assert!(points.iter().all(|p| p.bits == 32));
        assert!(points.iter().all(|p| p.code == LinkCodeKind::Crc8));
        let tuned = points.iter().filter(|p| p.policy_params.is_some()).count();
        assert_eq!(tuned, 4, "the scenario-defined policy carries parameters");
        assert_eq!(points[0].seed, 7);
        assert_eq!(points[1].seed, 11);

        let bad = text.replace("\"ring-contention\"", "\"ring\"");
        let scenario = parse_scenario(&bad).expect("parses");
        let err = materialize_sections(&scenario, &registry, true, &GridOverrides::default())
            .unwrap_err();
        assert!(err.starts_with("sweeps[0].channels[0]:"), "{err}");
        assert!(err.contains("ring-contention"), "{err}");

        let bad = text.replace("\"phased\"", "\"storm\"");
        let scenario = parse_scenario(&bad).expect("parses");
        let err = materialize_sections(&scenario, &registry, true, &GridOverrides::default())
            .unwrap_err();
        assert!(err.starts_with("sweeps[0].noise[1]:"), "{err}");

        let bad = text.replace("[\"kabylake-gen9\"]", "[\"pentium-3\"]");
        let scenario = parse_scenario(&bad).expect("parses");
        let err = materialize_sections(&scenario, &registry, true, &GridOverrides::default())
            .unwrap_err();
        assert!(err.starts_with("sweeps[0].backends[0]:"), "{err}");
        assert!(err.contains("available:"), "{err}");
    }
}
