//! Chrome-trace export of cross-layer event timelines.
//!
//! Sweep points (and ad-hoc duplex exchanges) captured with
//! [`crate::SweepRunner::with_events`] each yield an [`EventLog`]. This
//! module renders a set of those logs as a single [Chrome trace-event
//! JSON] document that loads
//! directly into `chrome://tracing` or Perfetto:
//!
//! - every captured point becomes one *process* (`pid`), named after its
//!   sweep scenario label;
//! - every [`EventLayer`] becomes one *thread* (track) inside that process
//!   (`tid` = [`EventLayer::track_id`]); all six tracks are declared via
//!   `thread_name` metadata even when a layer recorded nothing, so traces
//!   are structurally uniform and trivially validatable;
//! - events with a duration render as complete events (`ph:"X"`), the rest
//!   as thread-scoped instants (`ph:"i"`), with timestamps in microseconds
//!   of simulated time and typed fields carried in `args`.
//!
//! The writer emits plain JSON through the same primitives as the sweep
//! writer, so [`crate::json::parse_json`] round-trips its output —
//! [`validate_timeline`] leans on that for the CI smoke check.
//!
//! [Chrome trace-event JSON]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use soc_sim::events::{Event, EventLayer, EventLog, FieldValue};
use soc_sim::prelude::Time;

use crate::json::{escape, number, parse_json};

/// One process row of an exported timeline: a display label plus the
/// event log captured for that point.
#[derive(Debug, Clone)]
pub struct TimelinePoint {
    /// Process name shown by the trace viewer (typically the sweep
    /// scenario label, e.g. `llc-cov/rung3/s7`).
    pub label: String,
    /// The events captured for this point.
    pub log: EventLog,
}

impl TimelinePoint {
    /// Bundles a label with a captured log.
    pub fn new(label: impl Into<String>, log: EventLog) -> Self {
        TimelinePoint {
            label: label.into(),
            log,
        }
    }
}

/// Simulated [`Time`] in Chrome-trace microseconds.
fn ts_us(at: Time) -> f64 {
    at.as_ps() as f64 / 1e6
}

/// Renders one typed field value as a JSON literal.
fn field_json(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(v) => format!("{v}"),
        FieldValue::F64(v) => number(*v),
        FieldValue::Str(v) => format!("\"{}\"", escape(v)),
    }
}

/// Renders an event's fields as a Chrome-trace `args` object.
fn args_json(fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (index, (key, value)) in fields.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(key), field_json(value));
    }
    out.push('}');
    out
}

/// Renders one recorded event as a trace-event object.
fn event_json(pid: u64, event: &Event) -> String {
    let tid = event.layer.track_id();
    let cat = event.layer.track_name();
    let name = escape(event.name);
    let ts = number(ts_us(event.at));
    let args = args_json(&event.fields);
    match event.duration {
        Some(duration) => format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
             \"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
            dur = number(ts_us(duration)),
        ),
        None => format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}"
        ),
    }
}

/// Renders a `process_name` / `thread_name` metadata event.
fn metadata_json(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> String {
    let tid = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
    format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},{tid}\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

/// Serializes captured points as a Chrome trace-event JSON document.
///
/// Points become processes in input order (`pid` starts at 1); within each
/// point, events are sorted by timestamp (stable, so same-instant events
/// keep their recording order). A point whose ring overflowed gets a
/// synthetic `ring_dropped` instant on the sweep track so truncation is
/// visible in the viewer rather than silent.
pub fn chrome_trace_json(points: &[TimelinePoint]) -> String {
    let mut entries: Vec<String> = Vec::new();
    for (index, point) in points.iter().enumerate() {
        let pid = index as u64 + 1;
        entries.push(metadata_json("process_name", pid, None, &point.label));
        for layer in EventLayer::ALL {
            entries.push(metadata_json(
                "thread_name",
                pid,
                Some(layer.track_id()),
                layer.track_name(),
            ));
        }
        let mut ordered: Vec<&Event> = point.log.events.iter().collect();
        ordered.sort_by_key(|event| event.at);
        entries.extend(ordered.into_iter().map(|event| event_json(pid, event)));
        if point.log.dropped > 0 {
            entries.push(format!(
                "{{\"name\":\"ring_dropped\",\"cat\":\"sweep\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":0,\"pid\":{pid},\"tid\":{tid},\"args\":{{\"dropped\":{dropped}}}}}",
                tid = EventLayer::Sweep.track_id(),
                dropped = point.log.dropped,
            ));
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (index, entry) in entries.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(entry);
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace_json`] output to `path`.
pub fn write_timeline(path: &Path, points: &[TimelinePoint]) -> io::Result<()> {
    fs::write(path, chrome_trace_json(points))
}

/// What [`validate_timeline`] found in a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Distinct processes (captured points).
    pub points: usize,
    /// Non-metadata events across all points.
    pub events: usize,
    /// Distinct track (thread) names, sorted.
    pub tracks: Vec<String>,
}

/// Parses a Chrome-trace document and checks its structural invariants:
/// it must be valid JSON with a `traceEvents` array, every entry needs
/// `name`/`ph`/`pid`, every non-metadata entry needs a numeric `ts` and a
/// known track id, and all six layer tracks must be declared. Returns a
/// summary of what was found, or a description of the first violation.
pub fn validate_timeline(text: &str) -> Result<TimelineSummary, String> {
    let doc = parse_json(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut pids = std::collections::BTreeSet::new();
    let mut tracks = std::collections::BTreeSet::new();
    let mut count = 0usize;
    for (index, entry) in events.iter().enumerate() {
        let name = entry
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event #{index}: missing name"))?;
        let ph = entry
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event #{index} ({name}): missing ph"))?;
        let pid = entry
            .get("pid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event #{index} ({name}): missing pid"))?;
        pids.insert(pid as u64);
        if ph == "M" {
            if name == "thread_name" {
                let track = entry
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event #{index}: thread_name without args.name"))?;
                tracks.insert(track.to_string());
            }
            continue;
        }
        entry
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event #{index} ({name}): missing ts"))?;
        let tid = entry
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event #{index} ({name}): missing tid"))?
            as u64;
        if !EventLayer::ALL.iter().any(|l| l.track_id() == tid) {
            return Err(format!("event #{index} ({name}): unknown tid {tid}"));
        }
        count += 1;
    }
    for layer in EventLayer::ALL {
        if !tracks.contains(layer.track_name()) {
            return Err(format!("missing track '{}'", layer.track_name()));
        }
    }
    Ok(TimelineSummary {
        points: pids.len(),
        events: count,
        tracks: tracks.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::events::EventSink;

    fn sample_log() -> EventLog {
        let sink = EventSink::new();
        sink.span(
            EventLayer::Link,
            "frame",
            Time::from_ns(100),
            Time::from_ns(40),
            vec![("attempt", 1u64.into()), ("verdict", "delivered".into())],
        );
        sink.instant(
            EventLayer::Adapt,
            "rung_switch",
            Time::from_ns(20),
            vec![("to_rung", 3u64.into())],
        );
        sink.instant(
            EventLayer::Sim,
            "quote\"and\\slash",
            Time::ZERO,
            vec![("note", "line\nbreak".into())],
        );
        sink.snapshot()
    }

    #[test]
    fn exporter_escapes_and_round_trips() {
        let text = chrome_trace_json(&[TimelinePoint::new("llc\"cov", sample_log())]);
        let doc = parse_json(&text).expect("exporter output must parse");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let process = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("process_name"))
            .unwrap();
        assert_eq!(
            process.get("args").unwrap().get("name").unwrap().as_str(),
            Some("llc\"cov")
        );
        let odd = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("quote\"and\\slash"))
            .unwrap();
        assert_eq!(
            odd.get("args").unwrap().get("note").unwrap().as_str(),
            Some("line\nbreak")
        );
    }

    #[test]
    fn events_are_ordered_by_timestamp() {
        let text = chrome_trace_json(&[TimelinePoint::new("p", sample_log())]);
        let doc = parse_json(&text).unwrap();
        let ts: Vec<f64> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ts.len(), 3);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
        // Recorded out of order (100 ns, 20 ns, 0 ns) — sorted on export.
        assert_eq!(ts[0], 0.0);
        assert_eq!(ts[2], 0.1);
    }

    #[test]
    fn duration_events_carry_dur_and_instants_carry_scope() {
        let text = chrome_trace_json(&[TimelinePoint::new("p", sample_log())]);
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let frame = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("frame"))
            .unwrap();
        assert_eq!(frame.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(frame.get("dur").unwrap().as_f64(), Some(0.04));
        let switch = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("rung_switch"))
            .unwrap();
        assert_eq!(switch.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(switch.get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn validate_accepts_exporter_output_and_names_all_tracks() {
        let text = chrome_trace_json(&[
            TimelinePoint::new("a", sample_log()),
            TimelinePoint::new("b", EventLog::default()),
        ]);
        let summary = validate_timeline(&text).expect("valid timeline");
        assert_eq!(summary.points, 2);
        assert_eq!(summary.events, 3);
        let expected: Vec<String> = {
            let mut names: Vec<String> = EventLayer::ALL
                .iter()
                .map(|l| l.track_name().to_string())
                .collect();
            names.sort();
            names
        };
        assert_eq!(summary.tracks, expected);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate_timeline("not json").is_err());
        assert!(validate_timeline("{\"traceEvents\":1}").is_err());
        let err = validate_timeline("{\"traceEvents\":[]}").unwrap_err();
        assert!(err.contains("missing track"), "{err}");
    }

    #[test]
    fn write_timeline_round_trips_via_file() {
        let path = std::env::temp_dir().join(format!(
            "timeline-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        write_timeline(&path, &[TimelinePoint::new("file", sample_log())]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let _ = fs::remove_file(&path);
        let summary = validate_timeline(&text).expect("written timeline validates");
        assert_eq!(summary.points, 1);
        assert_eq!(summary.events, 3);
    }

    #[test]
    fn dropped_rings_are_flagged() {
        let sink = EventSink::with_capacity(2);
        for i in 0..5u64 {
            sink.instant(EventLayer::Link, "tick", Time::from_ns(i), vec![]);
        }
        let text = chrome_trace_json(&[TimelinePoint::new("p", sink.snapshot())]);
        let doc = parse_json(&text).unwrap();
        let dropped = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("ring_dropped"))
            .expect("ring_dropped instant present");
        assert_eq!(
            dropped
                .get("args")
                .unwrap()
                .get("dropped")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }
}
