//! Experiment harness for the Leaky Buddies reproduction.
//!
//! Every table and figure of the paper's evaluation (Section V) has a
//! function here that regenerates it against the simulated SoC. The
//! `repro` binary prints the rows; the Criterion benches in `benches/` wrap
//! the same functions so `cargo bench` exercises every experiment.

#![warn(missing_docs)]

pub mod baseline;
pub mod json;
pub mod resume;
pub mod scenario_exec;
pub mod sweep;
pub mod timeline;
pub mod tracefile;

pub use baseline::{Baseline, BaselineCell, BaselineReport, Regression, DEFAULT_TOLERANCE};
pub use json::{
    metrics_document, metrics_json, parse_json, parse_metrics_snapshot, sweep_results_to_json,
    sweep_row_json, write_metrics_json, write_sweep_json, JsonValue, SweepJsonWriter,
    METRICS_SCHEMA, SWEEP_SCHEMA,
};
pub use resume::{ResumeCache, ResumedRow};
pub use scenario_exec::{
    load_scenario, materialize_sections, scenario_registry, GridOverrides, MaterializedSection,
};
pub use sweep::{
    adaptive_grid, adaptive_grid_for, coded_grid, coded_grid_for, default_grid, default_grid_for,
    effective_engine, record_point_trace, run_point, run_point_configured, run_point_with_registry,
    ChannelKind, NoiseLevel, SweepOutcome, SweepPoint, SweepResult, SweepRunner,
};
pub use timeline::{
    chrome_trace_json, validate_timeline, write_timeline, TimelinePoint, TimelineSummary,
};
pub use tracefile::{parse_trace, read_trace, trace_to_string, write_trace, TRACE_SCHEMA};

use covert::prelude::*;
use covert::reverse::slice_hash::{FIRST_NON_INDEX_BIT, HUGE_PAGE_BIT_LIMIT};
use cpu_exec::prelude::CpuThread;
use gpu_exec::prelude::GpuKernel;
use soc_sim::prelude::*;

/// One bar of Figure 4: the timer-tick distribution of a GPU access class.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Access class label ("L3", "LLC", "Memory").
    pub class: &'static str,
    /// Mean custom-timer ticks.
    pub mean_ticks: f64,
    /// Standard deviation of the ticks.
    pub std_dev: f64,
    /// Equivalent nanoseconds at the nominal timer rate.
    pub mean_ns: f64,
}

/// Figure 4: characterize the custom GPU timer on the quiet-system SoC.
pub fn fig4_timer_characterization(samples: usize) -> (Vec<Fig4Row>, bool) {
    let mut soc = Soc::new(SocConfig::kaby_lake_i7_7700k());
    let characterization = characterize_default(&mut soc, samples);
    let kernel = GpuKernel::launch_attack_kernel();
    let rate = kernel.timer().rate_ticks_per_ns();
    let rows = vec![
        Fig4Row {
            class: "L3",
            mean_ticks: characterization.l3.mean,
            std_dev: characterization.l3.std_dev,
            mean_ns: characterization.l3.mean / rate,
        },
        Fig4Row {
            class: "LLC",
            mean_ticks: characterization.llc.mean,
            std_dev: characterization.llc.std_dev,
            mean_ns: characterization.llc.mean / rate,
        },
        Fig4Row {
            class: "Memory",
            mean_ticks: characterization.memory.mean,
            std_dev: characterization.memory.std_dev,
            mean_ns: characterization.memory.mean / rate,
        },
    ];
    (rows, characterization.is_separable())
}

/// One bar of Figure 7: LLC-channel bandwidth for an (eviction strategy,
/// direction) pair.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Eviction strategy label.
    pub strategy: &'static str,
    /// Channel direction label.
    pub direction: &'static str,
    /// Measured bandwidth in kb/s.
    pub bandwidth_kbps: f64,
    /// Measured bit-error rate.
    pub error_rate: f64,
    /// Bandwidth the paper reports for this bar (kb/s).
    pub paper_kbps: f64,
}

/// Figure 7: LLC channel bandwidth under the three L3-eviction strategies,
/// in both directions. The six (strategy, direction) cells run concurrently
/// on the [`SweepRunner`].
pub fn fig7_llc_strategies(bits: usize) -> Vec<Fig7Row> {
    let paper = |s: L3EvictionStrategy, d: Direction| match (s, d) {
        (L3EvictionStrategy::FullL3Clear, _) => 1.0,
        (L3EvictionStrategy::LlcKnowledgeOnly, Direction::GpuToCpu) => 70.0,
        (L3EvictionStrategy::LlcKnowledgeOnly, Direction::CpuToGpu) => 67.0,
        (L3EvictionStrategy::PreciseL3, Direction::GpuToCpu) => 120.0,
        (L3EvictionStrategy::PreciseL3, Direction::CpuToGpu) => 118.0,
    };
    let mut points = Vec::new();
    for direction in [Direction::GpuToCpu, Direction::CpuToGpu] {
        for strategy in L3EvictionStrategy::ALL {
            // The full-clear configuration is orders of magnitude slower, so
            // it transmits a shorter pattern to keep the harness responsive.
            let effective_bits = if strategy == L3EvictionStrategy::FullL3Clear {
                (bits / 4).max(16)
            } else {
                bits
            };
            points.push(SweepPoint {
                direction,
                strategy,
                bits: effective_bits,
                ..SweepPoint::paper_default(
                    "kabylake-gen9",
                    ChannelKind::LlcPrimeProbe,
                    NoiseLevel::Quiet,
                )
            });
        }
    }
    SweepRunner::with_default_threads()
        .run(&points)
        .into_iter()
        .map(|result| {
            let outcome = result.outcome.expect("channel setup");
            Fig7Row {
                strategy: result.point.strategy.label(),
                direction: result.point.direction.label(),
                bandwidth_kbps: outcome.bandwidth_kbps,
                error_rate: outcome.error_rate,
                paper_kbps: paper(result.point.strategy, result.point.direction),
            }
        })
        .collect()
}

/// One point of Figure 8: error rate and bandwidth as a function of the
/// number of redundant LLC sets.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Channel direction label.
    pub direction: &'static str,
    /// Redundant sets per protocol role.
    pub sets_per_role: usize,
    /// Measured bandwidth in kb/s.
    pub bandwidth_kbps: f64,
    /// Measured bit-error rate.
    pub error_rate: f64,
}

/// Figure 8: error and bandwidth versus the number of redundant LLC sets.
/// The eight (direction, redundancy) cells run concurrently on the
/// [`SweepRunner`].
pub fn fig8_llc_sets(bits: usize) -> Vec<Fig8Row> {
    let mut points = Vec::new();
    for direction in [Direction::GpuToCpu, Direction::CpuToGpu] {
        for sets in [1usize, 2, 4, 8] {
            points.push(SweepPoint {
                direction,
                sets_per_role: sets,
                bits,
                seed: 29 + sets as u64,
                ..SweepPoint::paper_default(
                    "kabylake-gen9",
                    ChannelKind::LlcPrimeProbe,
                    NoiseLevel::Quiet,
                )
            });
        }
    }
    SweepRunner::with_default_threads()
        .run(&points)
        .into_iter()
        .map(|result| {
            let outcome = result.outcome.expect("channel setup");
            Fig8Row {
                direction: result.point.direction.label(),
                sets_per_role: result.point.sets_per_role,
                bandwidth_kbps: outcome.bandwidth_kbps,
                error_rate: outcome.error_rate,
            }
        })
        .collect()
}

/// One point of Figure 9: the calibrated iteration factor for a GPU buffer
/// size (CPU buffer fixed at 512 KB).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Trojan (GPU) buffer size in bytes.
    pub gpu_buffer_bytes: u64,
    /// Calibrated iteration factor.
    pub iteration_factor: u32,
    /// CPU measurement-window time in nanoseconds.
    pub cpu_window_ns: f64,
    /// GPU single-pass time in nanoseconds.
    pub gpu_pass_ns: f64,
}

/// Figure 9: iteration factor versus GPU buffer size.
pub fn fig9_iteration_factor() -> Vec<Fig9Row> {
    [512 * 1024u64, 1024 * 1024, 2 * 1024 * 1024, 4 * 1024 * 1024]
        .iter()
        .map(|&bytes| {
            let config = ContentionChannelConfig::paper_default()
                .with_gpu_buffer(bytes)
                .with_workgroups(1)
                .with_seed(bytes);
            let mut channel = ContentionChannel::new(config).expect("channel setup");
            let cal = channel.calibrate();
            Fig9Row {
                gpu_buffer_bytes: bytes,
                iteration_factor: cal.iteration_factor,
                cpu_window_ns: cal.cpu_window_time.as_ns_f64(),
                gpu_pass_ns: cal.gpu_pass_time.as_ns_f64(),
            }
        })
        .collect()
}

/// One point of Figure 10: contention-channel bandwidth and error rate for a
/// (GPU buffer size, work-group count) pair, with 95 % confidence intervals
/// over repeated runs.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Trojan (GPU) buffer size in bytes.
    pub gpu_buffer_bytes: u64,
    /// Number of work-groups.
    pub workgroups: usize,
    /// Bandwidth statistics over the runs (kb/s).
    pub bandwidth_kbps: SampleStats,
    /// Error-rate statistics over the runs.
    pub error_rate: SampleStats,
    /// Calibrated iteration factor of the first run.
    pub iteration_factor: u32,
}

/// Figure 10: contention-channel parameter sweep (GPU buffer size x
/// work-group count), `runs` independent repetitions per point. All
/// `2 x 4 x runs` scenarios run concurrently on the [`SweepRunner`]; the
/// repetitions of each cell are then folded into confidence intervals.
pub fn fig10_contention(bits: usize, runs: usize) -> Vec<Fig10Row> {
    let buffers = [1024 * 1024u64, 2 * 1024 * 1024];
    let workgroup_counts = [1usize, 2, 4, 8];
    let mut points = Vec::new();
    for &buffer in &buffers {
        for &workgroups in &workgroup_counts {
            for run in 0..runs {
                points.push(SweepPoint {
                    gpu_buffer_bytes: buffer,
                    workgroups,
                    bits,
                    seed: 1000 + run as u64 * 17 + workgroups as u64,
                    ..SweepPoint::paper_default(
                        "kabylake-gen9",
                        ChannelKind::RingContention,
                        NoiseLevel::Quiet,
                    )
                });
            }
        }
    }
    let results = SweepRunner::with_default_threads().run(&points);
    let mut rows = Vec::new();
    for chunk in results.chunks(runs.max(1)) {
        let buffer = chunk[0].point.gpu_buffer_bytes;
        let workgroups = chunk[0].point.workgroups;
        let outcomes: Vec<&SweepOutcome> = chunk
            .iter()
            .map(|r| r.outcome.as_ref().expect("channel setup"))
            .collect();
        let bandwidths: Vec<f64> = outcomes.iter().map(|o| o.bandwidth_kbps).collect();
        let errors: Vec<f64> = outcomes.iter().map(|o| o.error_rate).collect();
        let iteration_factor = outcomes[0]
            .diagnostics
            .get("iteration_factor")
            .map_or(1, |f| f as u32);
        rows.push(Fig10Row {
            gpu_buffer_bytes: buffer,
            workgroups,
            bandwidth_kbps: SampleStats::from_samples(&bandwidths),
            error_rate: SampleStats::from_samples(&errors),
            iteration_factor,
        });
    }
    rows
}

/// The paper's headline numbers (abstract / Section V).
#[derive(Debug, Clone)]
pub struct HeadlineRow {
    /// Channel name.
    pub channel: &'static str,
    /// Measured bandwidth (kb/s).
    pub bandwidth_kbps: f64,
    /// Measured error rate.
    pub error_rate: f64,
    /// Bandwidth the paper reports (kb/s).
    pub paper_kbps: f64,
    /// Error rate the paper reports.
    pub paper_error: f64,
}

/// Headline comparison: best LLC channel and best contention channel.
pub fn headline(bits: usize) -> Vec<HeadlineRow> {
    let pattern = test_pattern(bits, 0xBEEF);
    let mut llc = LlcChannel::new(LlcChannelConfig::paper_default()).expect("llc channel");
    let llc_report = llc.transmit(&pattern);
    let mut contention = ContentionChannel::new(ContentionChannelConfig::paper_default())
        .expect("contention channel");
    let contention_report = contention.transmit(&pattern);
    vec![
        HeadlineRow {
            channel: "LLC Prime+Probe (GPU->CPU)",
            bandwidth_kbps: llc_report.bandwidth_kbps(),
            error_rate: llc_report.error_rate(),
            paper_kbps: 120.0,
            paper_error: 0.02,
        },
        HeadlineRow {
            channel: "Ring contention",
            bandwidth_kbps: contention_report.bandwidth_kbps(),
            error_rate: contention_report.error_rate(),
            paper_kbps: 400.0,
            paper_error: 0.008,
        },
    ]
}

/// Result of the slice-hash recovery experiment (Equations 1/2).
#[derive(Debug, Clone)]
pub struct SliceHashExperiment {
    /// Number of slices observed by timing.
    pub observed_slices: usize,
    /// Bits recovered as hash inputs.
    pub recovered_bits: Vec<u32>,
    /// Ground-truth bits on the examined range.
    pub ground_truth: Vec<u32>,
    /// Whether the recovery matched the ground truth exactly.
    pub matches: bool,
}

/// Recovers the slice hash by timing and scores it against Equations 1/2.
pub fn slice_hash_experiment() -> SliceHashExperiment {
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let mut cpu = CpuThread::pinned(0);
    let recovery = recover_slice_hash(&mut cpu, &mut soc, PhysAddr::new(0x1_0000_0000), 96);
    let truth = ground_truth_bits(
        &soc_sim::slice_hash::SliceHash::kaby_lake_i7_7700k(),
        FIRST_NON_INDEX_BIT,
        HUGE_PAGE_BIT_LIMIT,
    );
    let recovered = recovery.influencing_bits();
    SliceHashExperiment {
        observed_slices: recovery.observed_slices(),
        matches: recovered == truth,
        recovered_bits: recovered,
        ground_truth: truth,
    }
}

/// Result of the L3 reverse-engineering experiments (Section III-D).
#[derive(Debug, Clone)]
pub struct L3Experiment {
    /// Whether the inclusiveness test concluded the L3 is non-inclusive.
    pub non_inclusive: bool,
    /// Ticks of the final access in the inclusiveness experiment.
    pub inclusiveness_ticks: u64,
    /// Recovered placement-index bits.
    pub index_bits: Vec<u32>,
    /// Whether the recovered bits are exactly 6..16.
    pub index_bits_match: bool,
}

/// Runs the L3 inclusiveness and geometry-discovery experiments.
pub fn l3_experiment() -> L3Experiment {
    let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
    let characterization = characterize_default(&mut soc, 12);
    let threshold = characterization.l3_llc_threshold();
    let mut gpu = GpuKernel::launch_attack_kernel();
    let mut cpu = CpuThread::pinned(0);
    let inclusiveness = l3_inclusiveness_test(
        &mut soc,
        &mut gpu,
        &mut cpu,
        PhysAddr::new(0x6000_0000),
        threshold,
    );
    let candidates: Vec<u32> = (6..20).collect();
    let index_bits = discover_l3_index_bits(
        &mut soc,
        &mut gpu,
        PhysAddr::new(0xA000_0000),
        &candidates,
        threshold,
    );
    let expected: Vec<u32> = (6..16).collect();
    L3Experiment {
        non_inclusive: inclusiveness.l3_is_non_inclusive,
        inclusiveness_ticks: inclusiveness.final_access_ticks,
        index_bits_match: index_bits == expected,
        index_bits,
    }
}

/// Ablation of Section III-E: GPU thread-level parallelism versus a single
/// access thread, measured as (bandwidth, error) pairs.
#[derive(Debug, Clone)]
pub struct ParallelismAblationRow {
    /// Whether GPU parallelism was enabled.
    pub parallel: bool,
    /// Measured bandwidth (kb/s).
    pub bandwidth_kbps: f64,
    /// Measured error rate.
    pub error_rate: f64,
}

/// Runs the GPU-parallelism ablation on the LLC channel.
pub fn parallelism_ablation(bits: usize) -> Vec<ParallelismAblationRow> {
    let pattern = test_pattern(bits, 0xAB1A);
    [true, false]
        .iter()
        .map(|&parallel| {
            let config = LlcChannelConfig {
                gpu_parallelism: parallel,
                ..LlcChannelConfig::paper_default()
            };
            let mut channel = LlcChannel::new(config).expect("channel setup");
            let report = channel.transmit(&pattern);
            ParallelismAblationRow {
                parallel,
                bandwidth_kbps: report.bandwidth_kbps(),
                error_rate: report.error_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rows_are_ordered_and_separable() {
        let (rows, separable) = fig4_timer_characterization(10);
        assert!(separable);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].mean_ticks < rows[1].mean_ticks);
        assert!(rows[1].mean_ticks < rows[2].mean_ticks);
        assert!(rows[0].mean_ns > 50.0 && rows[0].mean_ns < 150.0);
    }

    #[test]
    fn fig9_iteration_factor_is_monotonically_non_increasing() {
        let rows = fig9_iteration_factor();
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(
                pair[0].iteration_factor >= pair[1].iteration_factor,
                "IF must not grow with the GPU buffer: {:?}",
                rows.iter().map(|r| r.iteration_factor).collect::<Vec<_>>()
            );
        }
        assert!(rows[0].iteration_factor > rows[3].iteration_factor);
    }

    #[test]
    fn headline_preserves_the_papers_ordering() {
        let rows = headline(160);
        assert_eq!(rows.len(), 2);
        let llc = &rows[0];
        let contention = &rows[1];
        assert!(
            contention.bandwidth_kbps > llc.bandwidth_kbps,
            "contention ({:.1} kb/s) must beat the LLC channel ({:.1} kb/s)",
            contention.bandwidth_kbps,
            llc.bandwidth_kbps
        );
        assert!(llc.error_rate < 0.10);
        assert!(contention.error_rate < 0.05);
    }

    #[test]
    fn slice_hash_and_l3_experiments_match_ground_truth() {
        let hash = slice_hash_experiment();
        assert!(hash.matches, "recovered {:?}", hash.recovered_bits);
        assert_eq!(hash.observed_slices, 4);
        let l3 = l3_experiment();
        assert!(l3.non_inclusive);
        assert!(l3.index_bits_match, "recovered {:?}", l3.index_bits);
    }
}
