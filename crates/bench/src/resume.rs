//! Resumable sweeps: reuse rows of a prior `--sweep --out` document.
//!
//! A sweep row is a pure function of its [`SweepPoint`] — the simulator is
//! deterministic per seed — so a row measured yesterday is exactly the row
//! the same point would produce today, as long as the point's configuration
//! is unchanged. Every row therefore carries its point's
//! [`SweepPoint::key`]: an order-independent hash over *all* grid axes,
//! including the ones the scenario label elides. `repro --resume
//! <prior.json>` loads such a document into a [`ResumeCache`], and the
//! sweep consults it point by point: a key hit replays the stored row
//! verbatim (into the terminal, the `--out` document, the telemetry
//! aggregate and the baseline gate) and only the misses — new cells, new
//! seeds, changed configurations — are simulated.
//!
//! Rows that recorded a failure are *not* reused: an error row may be a
//! time-budget artifact of the recording machine, and re-running it is the
//! only way to find out. Rows without a `key` field (documents written
//! before the field existed) are skipped the same way.
//!
//! [`SweepPoint`]: crate::sweep::SweepPoint
//! [`SweepPoint::key`]: crate::sweep::SweepPoint::key

use crate::baseline::BaselineCell;
use crate::json::{parse_json, parse_metrics_snapshot, JsonValue, SWEEP_SCHEMA};
use soc_sim::prelude::MetricsSnapshot;
use std::collections::HashMap;
use std::path::Path;

/// One reusable row of a prior sweep document.
#[derive(Debug, Clone)]
pub struct ResumedRow {
    /// The row as a single JSON object, ready for
    /// [`SweepJsonWriter::push_raw`](crate::json::SweepJsonWriter::push_raw)
    /// (re-serialized from the parsed document: value-identical to the
    /// prior file, byte-identical when that file came from the writer).
    pub raw: String,
    /// The gate-comparable cell (scenario, bits, seed, goodput).
    pub cell: BaselineCell,
    /// The row's telemetry snapshot, if it carried one — merged into the
    /// fresh run's aggregate so `--metrics-out` still covers every point.
    pub metrics: Option<MetricsSnapshot>,
}

/// An indexed prior sweep document (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ResumeCache {
    rows: HashMap<String, ResumedRow>,
    total_rows: usize,
}

impl ResumeCache {
    /// Parses a `--sweep --out` document into a reuse index.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable JSON, a missing or foreign `schema`
    /// tag, or a malformed `results` array — `repro` exits 2 on any of
    /// these, because silently re-running everything would defeat the
    /// point of `--resume`.
    pub fn parse(text: &str) -> Result<ResumeCache, String> {
        let document = parse_json(text).map_err(|err| format!("not valid JSON: {err}"))?;
        let schema = document.get("schema").and_then(JsonValue::as_str);
        if schema != Some(SWEEP_SCHEMA) {
            return Err(format!(
                "schema {schema:?} is not {SWEEP_SCHEMA:?} — not a sweep document"
            ));
        }
        let results = document
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "document has no 'results' array".to_string())?;
        let mut rows = HashMap::new();
        for (index, row) in results.iter().enumerate() {
            let Some(key) = row.get("key").and_then(JsonValue::as_str) else {
                continue; // Pre-`key` document: the row cannot be matched.
            };
            if row.get("ok").and_then(JsonValue::as_bool) != Some(true) {
                continue; // Failure rows are re-run, not reused.
            }
            let scenario = row
                .get("scenario")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("row {index} has no 'scenario' string"))?
                .to_string();
            let number = |field: &str| -> Result<f64, String> {
                row.get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("row {index} ({scenario}) has no '{field}'"))
            };
            let metrics = match row.get("metrics") {
                None => None,
                Some(metrics) => Some(
                    parse_metrics_snapshot(metrics).map_err(|err| format!("row {index}: {err}"))?,
                ),
            };
            let cell = BaselineCell {
                bits: number("bits")? as u64,
                seed: number("seed")? as u64,
                goodput_kbps: Some(number("goodput_kbps")?),
                metrics: metrics.clone(),
                scenario,
            };
            rows.insert(
                key.to_string(),
                ResumedRow {
                    raw: row.to_json(),
                    cell,
                    metrics,
                },
            );
        }
        Ok(ResumeCache {
            rows,
            total_rows: results.len(),
        })
    }

    /// Reads and parses a prior sweep file.
    ///
    /// # Errors
    ///
    /// Filesystem errors and [`ResumeCache::parse`] errors, as a message
    /// naming the file.
    pub fn load(path: &Path) -> Result<ResumeCache, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("could not read {}: {err}", path.display()))?;
        ResumeCache::parse(&text).map_err(|err| format!("{}: {err}", path.display()))
    }

    /// Takes the reusable row for a point key, consuming it — each prior
    /// row backs at most one fresh row, so a (pathological) grid with
    /// duplicate points re-measures the duplicates.
    pub fn take(&mut self, key: &str) -> Option<ResumedRow> {
        self.rows.remove(key)
    }

    /// Reusable rows remaining in the cache.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no reusable rows remain.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows the prior document held in total, including failed and
    /// key-less rows that were never indexed.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::sweep_results_to_json;
    use crate::sweep::{default_grid_for, SweepRunner};

    #[test]
    fn every_row_of_a_fresh_document_is_reusable_by_its_point_key() {
        let grid = default_grid_for(&["kabylake-gen9"], 24);
        let results = SweepRunner::new(2).run(&grid);
        let document = sweep_results_to_json(&results);
        let mut cache = ResumeCache::parse(&document).expect("parses");
        assert_eq!(cache.total_rows(), results.len());
        assert_eq!(
            cache.len(),
            results.iter().filter(|r| r.outcome.is_ok()).count()
        );
        for result in results.iter().filter(|r| r.outcome.is_ok()) {
            let row = cache
                .take(&result.point.key())
                .expect("fresh rows index under their point key");
            assert_eq!(row.cell.scenario, result.point.label());
            assert_eq!(row.cell.bits, result.point.bits as u64);
            assert_eq!(row.cell.seed, result.point.seed);
            let outcome = result.outcome.as_ref().unwrap();
            assert_eq!(row.cell.goodput_kbps, Some(outcome.goodput_kbps));
            // The raw row parses back to the same value as the original.
            let reparsed = parse_json(&row.raw).expect("raw row is valid JSON");
            assert_eq!(
                reparsed.get("key").and_then(JsonValue::as_str),
                Some(result.point.key().as_str())
            );
            let metrics = row.metrics.expect("telemetry on by default");
            assert_eq!(
                metrics.counter("link.frames_sent"),
                Some(outcome.frames_sent as u64)
            );
        }
        assert!(cache.is_empty(), "every row taken exactly once");
    }

    #[test]
    fn failure_rows_and_keyless_rows_are_not_reused() {
        let mut point = crate::sweep::SweepPoint::paper_default(
            "no-such-backend",
            crate::sweep::ChannelKind::RingContention,
            crate::sweep::NoiseLevel::Quiet,
        );
        point.bits = 16;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        assert!(results[0].outcome.is_err());
        let mut cache = ResumeCache::parse(&sweep_results_to_json(&results)).expect("parses");
        assert_eq!(cache.total_rows(), 1);
        assert!(cache.take(&point.key()).is_none(), "failed rows re-run");

        // A pre-`key` document (the field stripped) indexes nothing.
        let legacy = sweep_results_to_json(&results).replace("\"key\":", "\"old_key\":");
        let cache = ResumeCache::parse(&legacy).expect("parses");
        assert!(cache.is_empty());
    }

    #[test]
    fn foreign_documents_are_rejected() {
        assert!(ResumeCache::parse("{not json").is_err());
        assert!(ResumeCache::parse("{\"schema\":\"other/v1\",\"results\":[]}").is_err());
        assert!(
            ResumeCache::parse(&format!("{{\"schema\":\"{SWEEP_SCHEMA}\"}}")).is_err(),
            "a document without rows is not resumable"
        );
    }

    #[test]
    fn point_keys_separate_every_axis_the_label_elides() {
        let base = crate::sweep::SweepPoint::paper_default(
            "kabylake-gen9",
            crate::sweep::ChannelKind::LlcPrimeProbe,
            crate::sweep::NoiseLevel::Quiet,
        );
        let mut seeded = base.clone();
        seeded.seed ^= 0xDEAD;
        let mut sized = base.clone();
        sized.bits += 1;
        let mut turned = base.clone();
        turned.direction = covert::prelude::Direction::CpuToGpu;
        let keys = [base.key(), seeded.key(), sized.key(), turned.key()];
        for (i, a) in keys.iter().enumerate() {
            assert_eq!(a.len(), 16, "fixed-width hex");
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "distinct points must not collide");
            }
        }
        assert_eq!(base.key(), base.clone().key(), "stable across calls");
    }
}
