//! Hand-rolled JSON serialization (and parsing) of sweep results.
//!
//! The workspace builds offline with no serde, so this module writes the
//! small, flat schema the plotting side needs by hand: one object per sweep
//! row with the point coordinates and either the measured outcome or the
//! recorded failure. `repro --sweep --out <path>` is the entry point; it
//! streams rows through [`SweepJsonWriter`], which appends each row to the
//! file the moment its sweep point finishes instead of buffering the grid.
//!
//! [`parse_json`] is the matching reader: a small recursive-descent parser
//! into [`JsonValue`], used by the CI baseline checker ([`crate::baseline`])
//! and by the schema round-trip tests that guard the document format
//! downstream tooling depends on. The escape/number/parser layer itself
//! lives in the workspace-shared [`scenario::json`] module (so the scenario
//! loader below this crate reads the same dialect); this module re-exports
//! it and keeps the sweep- and metrics-document writers.

use crate::sweep::{SweepOutcome, SweepResult};
use soc_sim::prelude::{HistogramSnapshot, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

pub use scenario::json::{escape, number, parse_json, JsonValue};

/// Schema tag written into every document; `v4` adds the per-row
/// `metrics` telemetry object (`v3` added the `policy` column and the
/// adaptive `windows` array, `v2` keyed backends by registry name instead
/// of the pre-registry display labels).
pub const SWEEP_SCHEMA: &str = "leaky-buddies/sweep-v4";

/// Schema tag of the aggregated telemetry document
/// (`repro --metrics-out <path>`): every per-point [`MetricsSnapshot`] of a
/// sweep merged into one set of counters and histograms.
pub const METRICS_SCHEMA: &str = "leaky-buddies/metrics-v1";

/// Formats one histogram as a self-describing JSON object. The buckets
/// array is trailing-zero-trimmed — [`HistogramSnapshot::from_parts`] pads
/// it back, so the trim is lossless for the parsing side.
fn histogram_json(hist: &HistogramSnapshot) -> String {
    let mut buckets = hist.buckets().to_vec();
    while buckets.last() == Some(&0) {
        buckets.pop();
    }
    let list = buckets
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
         \"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[{list}]}}",
        hist.count(),
        hist.sum(),
        hist.min(),
        hist.max(),
        number(hist.mean()),
        number(hist.percentile(50.0)),
        number(hist.percentile(99.0)),
    )
}

/// Formats a [`MetricsSnapshot`] as one JSON object keyed by metric name;
/// each value is a `{"kind": ...}` object [`parse_metrics_snapshot`] reads
/// back.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"kind\":\"gauge\",\"value\":{}}}", number(*v));
            }
            MetricValue::Histogram(hist) => out.push_str(&histogram_json(hist)),
        }
    }
    out.push('}');
    out
}

/// Rebuilds a [`MetricsSnapshot`] from a parsed [`metrics_json`] object —
/// the reading half used by the metrics-document validator and the schema
/// round-trip tests.
///
/// # Errors
///
/// Returns a message naming the first metric whose shape is wrong.
pub fn parse_metrics_snapshot(metrics: &JsonValue) -> Result<MetricsSnapshot, String> {
    let JsonValue::Object(pairs) = metrics else {
        return Err("metrics must be an object".into());
    };
    let mut entries = Vec::new();
    for (name, value) in pairs {
        let field = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("metric '{name}' lacks a numeric '{key}'"))
        };
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("metric '{name}' lacks a kind"))?;
        let metric = match kind {
            "counter" => MetricValue::Counter(field("value")? as u64),
            "gauge" => MetricValue::Gauge(field("value")?),
            "histogram" => {
                let buckets = value
                    .get("buckets")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| format!("histogram '{name}' lacks buckets"))?
                    .iter()
                    .map(|b| {
                        b.as_f64()
                            .map(|n| n as u64)
                            .ok_or_else(|| format!("histogram '{name}' has a non-numeric bucket"))
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                MetricValue::Histogram(HistogramSnapshot::from_parts(
                    buckets,
                    field("sum")? as u64,
                    field("min")? as u64,
                    field("max")? as u64,
                ))
            }
            other => return Err(format!("metric '{name}' has unknown kind '{other}'")),
        };
        entries.push((name.clone(), metric));
    }
    Ok(MetricsSnapshot::from_entries(entries))
}

/// Serializes the aggregated telemetry of a sweep — `merged` is the
/// [`MetricsSnapshot::merge`] of `points` per-point snapshots — as the
/// self-describing [`METRICS_SCHEMA`] document `repro --metrics-out`
/// writes. `rows_per_sec`, when known, is the sweep's headline throughput:
/// finished rows over the wall-clock of the sweep sections (resumed rows
/// excluded from both sides).
pub fn metrics_document(
    merged: &MetricsSnapshot,
    points: usize,
    rows_per_sec: Option<f64>,
) -> String {
    let throughput = match rows_per_sec {
        Some(rate) => format!("\"rows_per_sec\":{},\n", number(rate)),
        None => String::new(),
    };
    format!(
        "{{\n\"schema\":\"{METRICS_SCHEMA}\",\n\"points\":{points},\n{throughput}\"metrics\":{}\n}}\n",
        metrics_json(merged)
    )
}

/// Writes the aggregated telemetry document to `path`.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_metrics_json(
    path: &Path,
    merged: &MetricsSnapshot,
    points: usize,
    rows_per_sec: Option<f64>,
) -> io::Result<()> {
    std::fs::write(path, metrics_document(merged, points, rows_per_sec))
}

fn outcome_fields(out: &mut String, outcome: &SweepOutcome) {
    let _ = write!(
        out,
        "\"bandwidth_kbps\":{},\"goodput_kbps\":{},\"error_rate\":{},\"code_rate\":{},\
         \"corrected_bits\":{},\"residual_errors\":{},\"symbol_time_ns\":{},\
         \"calibration_quality\":{},\"frames_sent\":{},\"retransmissions\":{}",
        number(outcome.bandwidth_kbps),
        number(outcome.goodput_kbps),
        number(outcome.error_rate),
        number(outcome.code_rate),
        outcome.corrected_bits,
        outcome.residual_errors,
        number(outcome.symbol_time_ns),
        number(outcome.calibration_quality),
        outcome.frames_sent,
        outcome.retransmissions,
    );
    if let Some(adaptation) = &outcome.adaptation {
        let _ = write!(
            out,
            ",\"switches\":{},\"final_code\":\"{}\",\"final_symbol_repeat\":{},\"windows\":[",
            adaptation.switches,
            escape(&adaptation.final_code.label()),
            adaptation.final_symbol_repeat,
        );
        for (i, w) in adaptation.trace.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"code\":\"{}\",\"symbol_repeat\":{},\"payload_bits\":{},\
                 \"wire_bits\":{},\"goodput_kbps\":{},\"residual_ber\":{},\
                 \"retransmissions\":{},\"corrected_bits\":{},\"decode_failures\":{},\
                 \"elapsed_ns\":{}}}",
                w.index,
                escape(&w.code.label()),
                w.symbol_repeat,
                w.payload_bits,
                w.wire_bits,
                number(w.goodput_kbps),
                number(w.residual_ber),
                w.retransmissions,
                w.corrected_bits,
                w.decode_failures,
                w.elapsed.as_ns(),
            );
        }
        out.push(']');
        // The controller's final per-rung goodput model (empty for the
        // trial-based policies, which keep no standing estimates).
        out.push_str(",\"rung_estimates\":[");
        for (i, e) in adaptation.rung_estimates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"symbol_repeat\":{},\"goodput_kbps\":{},\"weight\":{}}}",
                escape(&e.code.label()),
                e.symbol_repeat,
                number(e.goodput_kbps),
                number(e.weight),
            );
        }
        out.push(']');
    }
    if let Some(metrics) = &outcome.metrics {
        let _ = write!(out, ",\"metrics\":{}", metrics_json(metrics));
    }
}

/// Formats one sweep row as a JSON object (no trailing separator).
pub fn sweep_row_json(result: &SweepResult) -> String {
    let point = &result.point;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"scenario\":\"{}\",\"key\":\"{}\",\"backend\":\"{}\",\"channel\":\"{}\",\
         \"noise\":\"{}\",\"code\":\"{}\",\"policy\":{},\"bits\":{},\"seed\":{},",
        escape(&point.label()),
        point.key(),
        escape(&point.backend),
        escape(point.channel.label()),
        escape(point.noise.label()),
        escape(&point.code.label()),
        match point.policy {
            Some(policy) => format!("\"{}\"", policy.label()),
            None => "null".into(),
        },
        point.bits,
        point.seed,
    );
    match &result.outcome {
        Ok(outcome) => {
            out.push_str("\"ok\":true,");
            outcome_fields(&mut out, outcome);
        }
        Err(err) => {
            let _ = write!(
                out,
                "\"ok\":false,\"error\":\"{}\"",
                escape(&err.to_string())
            );
        }
    }
    out.push('}');
    out
}

/// Serializes sweep rows into a self-describing JSON document.
pub fn sweep_results_to_json(results: &[SweepResult]) -> String {
    let mut out = format!("{{\n\"schema\":\"{SWEEP_SCHEMA}\",\n\"results\":[\n");
    for (i, result) in results.iter().enumerate() {
        out.push_str(&sweep_row_json(result));
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Writes the sweep rows to `path` as JSON.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_sweep_json(path: &Path, results: &[SweepResult]) -> io::Result<()> {
    std::fs::write(path, sweep_results_to_json(results))
}

/// Incremental writer of the same document [`sweep_results_to_json`]
/// produces: rows are appended (and flushed) one at a time as sweep points
/// finish, so `repro --sweep --out <path>` never buffers the whole grid.
///
/// The completed file (after [`SweepJsonWriter::finish`]) is a valid JSON
/// document. A run killed mid-grid leaves every finished row intact on
/// disk, one per line, but without the closing `]}` footer — recover such a
/// file by appending the footer (or reading it line-wise); only `finish`
/// makes it parse as-is.
#[derive(Debug)]
pub struct SweepJsonWriter {
    out: BufWriter<File>,
    rows: usize,
}

impl SweepJsonWriter {
    /// Creates `path` and writes the document header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        write!(out, "{{\n\"schema\":\"{SWEEP_SCHEMA}\",\n\"results\":[\n")?;
        Ok(SweepJsonWriter { out, rows: 0 })
    }

    /// Appends one row and flushes it to the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn push(&mut self, result: &SweepResult) -> io::Result<()> {
        self.push_raw(&sweep_row_json(result))
    }

    /// Appends one pre-serialized row (a single JSON object, no trailing
    /// separator) and flushes it — how `repro --resume` carries rows of a
    /// prior document into the fresh one without re-measuring them.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn push_raw(&mut self, row: &str) -> io::Result<()> {
        if self.rows > 0 {
            self.out.write_all(b",\n")?;
        }
        self.out.write_all(row.as_bytes())?;
        self.rows += 1;
        self.out.flush()
    }

    /// Number of rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Writes the document footer and closes the file, returning the row
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(mut self) -> io::Result<usize> {
        if self.rows > 0 {
            self.out.write_all(b"\n")?;
        }
        self.out.write_all(b"]\n}\n")?;
        self.out.flush()?;
        Ok(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{default_grid, SweepRunner};
    use covert::prelude::LinkCodeKind;

    #[test]
    fn document_shape_round_trips_key_facts() {
        let mut grid = default_grid(24);
        grid.truncate(2);
        grid[1].code = LinkCodeKind::Hamming74;
        let results = SweepRunner::new(2).run(&grid);
        let json = sweep_results_to_json(&results);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\":\"leaky-buddies/sweep-v4\""));
        assert!(json.contains("\"backend\":\"kabylake-gen9\""));
        assert!(json.contains("\"code\":\"none\""));
        assert!(json.contains("\"code\":\"hamming74\""));
        assert!(json.contains("\"goodput_kbps\":"));
        // One object per row.
        assert_eq!(json.matches("\"scenario\":").count(), 2);
        // Balanced braces and brackets (a cheap well-formedness check that
        // needs no JSON parser in the offline environment).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn failed_points_serialize_their_error() {
        let mut point = crate::sweep::SweepPoint::paper_default(
            "kabylake-gen9",
            crate::sweep::ChannelKind::RingContention,
            crate::sweep::NoiseLevel::Noiseless,
        );
        point.gpu_buffer_bytes = 8 * 1024 * 1024; // cannot fit: setup error
        point.bits = 16;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        assert!(results[0].outcome.is_err());
        let json = sweep_results_to_json(&results);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"error\":\""));
    }

    #[test]
    fn write_creates_the_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_sweep_test.json");
        let results = SweepRunner::new(1).run(&default_grid(16)[..1]);
        write_sweep_json(&path, &results).expect("temp file writable");
        let body = std::fs::read_to_string(&path).expect("file readable");
        assert!(body.contains("sweep-v4"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_writer_produces_the_same_document_as_the_batch_path() {
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_streamed_sweep_test.json");
        let mut grid = default_grid(16);
        grid.truncate(3);
        let results = SweepRunner::new(2).run(&grid);
        let mut writer = SweepJsonWriter::create(&path).expect("temp file writable");
        for result in &results {
            writer.push(result).expect("row appends");
        }
        assert_eq!(writer.rows(), 3);
        let written = writer.finish().expect("footer writes");
        assert_eq!(written, 3);
        let streamed = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(streamed, sweep_results_to_json(&results));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_writer_leaves_valid_partial_output_before_finish() {
        // The documented crash-recovery contract: every pushed row is
        // flushed to disk the moment it lands (one per line, comma-led
        // after the first), and the closing `]}` footer appears only on
        // finish. A run killed mid-grid must leave all finished rows
        // readable line-wise.
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_partial_sweep_test.json");
        let mut grid = default_grid(16);
        grid.truncate(2);
        let results = SweepRunner::new(1).run(&grid);
        let mut writer = SweepJsonWriter::create(&path).expect("temp file writable");

        writer.push(&results[0]).expect("row appends");
        let after_one = std::fs::read_to_string(&path).expect("file readable");
        assert!(after_one.contains("\"schema\":"), "header flushed");
        assert_eq!(after_one.matches("\"scenario\":").count(), 1);
        assert!(
            !after_one.contains("]\n}"),
            "footer must not exist before finish"
        );
        // The flushed row is complete JSON on its own line.
        let row_line = after_one.lines().last().unwrap();
        assert!(row_line.starts_with('{') && row_line.ends_with('}'));

        writer.push(&results[1]).expect("row appends");
        let after_two = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(after_two.matches("\"scenario\":").count(), 2);
        assert!(!after_two.contains("]\n}"));

        let written = writer.finish().expect("footer writes");
        assert_eq!(written, 2);
        let complete = std::fs::read_to_string(&path).expect("file readable");
        assert!(complete.ends_with("]\n}\n"), "finish appends the footer");
        assert_eq!(complete, sweep_results_to_json(&results));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_rows_serialize_policy_and_window_traces() {
        let mut point = crate::sweep::SweepPoint::paper_default(
            "kabylake-gen9",
            crate::sweep::ChannelKind::RingContention,
            crate::sweep::NoiseLevel::Quiet,
        );
        point.bits = 128;
        point.policy = Some(covert::prelude::PolicyKind::Threshold);
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let json = sweep_results_to_json(&results);
        assert!(json.contains("\"policy\":\"threshold\""));
        assert!(json.contains("\"windows\":["));
        assert!(json.contains("\"symbol_repeat\":"));
        // Non-adaptive rows carry a null policy and no window array.
        point.policy = None;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let json = sweep_results_to_json(&results);
        assert!(json.contains("\"policy\":null"));
        assert!(!json.contains("\"windows\":["));
        // Braces stay balanced with the nested window objects.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// The schema round-trip the CI artifact depends on: every row the
    /// writer emits — plain, coded, adaptive (with its `windows` array and
    /// per-rung estimates) and failed — must parse back out of the
    /// [`SweepJsonWriter`] file with its key facts intact.
    #[test]
    fn sweep_v4_document_round_trips_through_the_parser() {
        use crate::sweep::{
            adaptive_grid_for, default_grid_for, ChannelKind, NoiseLevel, SweepPoint,
        };
        use covert::prelude::PolicyKind;

        let mut grid: Vec<SweepPoint> = default_grid_for(&["kabylake-gen9"], 24)
            .into_iter()
            .take(2)
            .collect();
        grid[1].code = LinkCodeKind::rs_default();
        // An adaptive bandit point (windows + rung estimates), a threshold
        // point (windows, empty estimates) and a guaranteed failure row.
        grid.extend(
            adaptive_grid_for(&["kabylake-gen9"], 192, &[PolicyKind::Bandit])
                .into_iter()
                .filter(|p| p.policy == Some(PolicyKind::Bandit))
                .take(1),
        );
        let mut threshold_point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        );
        threshold_point.bits = 128;
        threshold_point.policy = Some(PolicyKind::Threshold);
        grid.push(threshold_point);
        grid.push(SweepPoint::paper_default(
            "no-such-backend",
            ChannelKind::RingContention,
            NoiseLevel::Quiet,
        ));

        let results = SweepRunner::new(2)
            .with_engine(covert::prelude::TransceiverConfig::paper_default())
            .run(&grid);
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_roundtrip_sweep_test.json");
        let mut writer = SweepJsonWriter::create(&path).expect("temp file writable");
        for result in &results {
            writer.push(result).expect("row appends");
        }
        writer.finish().expect("footer writes");
        let body = std::fs::read_to_string(&path).expect("file readable");
        let _ = std::fs::remove_file(&path);

        let document = parse_json(&body).expect("document parses");
        assert_eq!(
            document.get("schema").and_then(JsonValue::as_str),
            Some(SWEEP_SCHEMA)
        );
        let rows = document
            .get("results")
            .and_then(JsonValue::as_array)
            .expect("results array");
        assert_eq!(rows.len(), results.len());

        for (row, result) in rows.iter().zip(&results) {
            let field = |key: &str| row.get(key).unwrap_or(&JsonValue::Null);
            assert_eq!(
                field("scenario").as_str(),
                Some(result.point.label().as_str())
            );
            assert_eq!(
                field("backend").as_str(),
                Some(result.point.backend.as_str())
            );
            assert_eq!(
                field("channel").as_str(),
                Some(result.point.channel.label())
            );
            assert_eq!(field("bits").as_f64(), Some(result.point.bits as f64));
            assert_eq!(field("seed").as_f64(), Some(result.point.seed as f64));
            match &result.outcome {
                Err(err) => {
                    assert_eq!(field("ok").as_bool(), Some(false));
                    assert_eq!(field("error").as_str(), Some(err.to_string().as_str()));
                }
                Ok(outcome) => {
                    assert_eq!(field("ok").as_bool(), Some(true));
                    assert_eq!(field("goodput_kbps").as_f64(), Some(outcome.goodput_kbps));
                    assert_eq!(
                        field("bandwidth_kbps").as_f64(),
                        Some(outcome.bandwidth_kbps)
                    );
                    let metrics = outcome.metrics.as_ref().expect("telemetry on by default");
                    let parsed =
                        parse_metrics_snapshot(row.get("metrics").expect("metrics object"))
                            .expect("metrics round-trip");
                    assert_eq!(parsed.len(), metrics.len());
                    for (name, value) in metrics.iter() {
                        match value {
                            MetricValue::Counter(v) => assert_eq!(parsed.counter(name), Some(*v)),
                            MetricValue::Gauge(v) => assert_eq!(parsed.gauge(name), Some(*v)),
                            MetricValue::Histogram(hist) => {
                                let back = parsed.histogram(name).expect("histogram present");
                                assert_eq!(back.count(), hist.count());
                                assert_eq!(back.sum(), hist.sum());
                                assert_eq!(back.buckets(), hist.buckets());
                            }
                        }
                    }
                    assert!(parsed.counter("link.frames_sent").is_some());
                    let Some(adaptation) = &outcome.adaptation else {
                        assert!(row.get("windows").is_none());
                        assert!(row.get("rung_estimates").is_none());
                        continue;
                    };
                    let windows = field("windows").as_array().expect("windows array");
                    assert_eq!(windows.len(), adaptation.trace.windows.len());
                    for (window, trace) in windows.iter().zip(&adaptation.trace.windows) {
                        assert_eq!(
                            window.get("code").and_then(JsonValue::as_str),
                            Some(trace.code.label().as_str())
                        );
                        assert_eq!(
                            window.get("goodput_kbps").and_then(JsonValue::as_f64),
                            Some(trace.goodput_kbps)
                        );
                        assert_eq!(
                            window.get("elapsed_ns").and_then(JsonValue::as_f64),
                            Some(trace.elapsed.as_ns() as f64)
                        );
                    }
                    let estimates = field("rung_estimates").as_array().expect("estimates");
                    assert_eq!(estimates.len(), adaptation.rung_estimates.len());
                    for (estimate, model) in estimates.iter().zip(&adaptation.rung_estimates) {
                        assert_eq!(
                            estimate.get("code").and_then(JsonValue::as_str),
                            Some(model.code.label().as_str())
                        );
                        assert_eq!(
                            estimate.get("symbol_repeat").and_then(JsonValue::as_f64),
                            Some(model.symbol_repeat as f64)
                        );
                        assert_eq!(
                            estimate.get("goodput_kbps").and_then(JsonValue::as_f64),
                            Some(model.goodput_kbps)
                        );
                        assert_eq!(
                            estimate.get("weight").and_then(JsonValue::as_f64),
                            Some(model.weight)
                        );
                    }
                }
            }
        }

        // The bandit row carries a non-trivial per-rung model; the
        // threshold row carries windows but no standing model.
        let bandit_row = &results[2];
        let bandit_model = &bandit_row
            .outcome
            .as_ref()
            .expect("bandit point runs")
            .adaptation
            .as_ref()
            .expect("adaptive rows carry a summary")
            .rung_estimates;
        assert!(!bandit_model.is_empty());
        assert!(bandit_model.iter().any(|e| e.weight > 0.0));
        let threshold_row = &results[3];
        assert!(threshold_row
            .outcome
            .as_ref()
            .expect("threshold point runs")
            .adaptation
            .as_ref()
            .expect("adaptive rows carry a summary")
            .rung_estimates
            .is_empty());
    }

    /// The aggregated telemetry document `repro --metrics-out` writes must
    /// survive a trip through the in-repo parser with every counter, gauge
    /// and histogram intact.
    #[test]
    fn metrics_v1_document_round_trips_through_the_parser() {
        let mut grid = default_grid(24);
        grid.truncate(2);
        let results = SweepRunner::new(2).run(&grid);
        let mut merged = MetricsSnapshot::from_entries(std::iter::empty());
        let mut points = 0usize;
        for result in &results {
            if let Ok(outcome) = &result.outcome {
                merged.merge(outcome.metrics.as_ref().expect("telemetry on by default"));
                points += 1;
            }
        }
        assert!(points > 0, "quick grid points must run");

        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_metrics_doc_test.json");
        write_metrics_json(&path, &merged, points, Some(12.5)).expect("temp file writable");
        let body = std::fs::read_to_string(&path).expect("file readable");
        let _ = std::fs::remove_file(&path);

        let document = parse_json(&body).expect("document parses");
        assert_eq!(
            document.get("schema").and_then(JsonValue::as_str),
            Some(METRICS_SCHEMA)
        );
        assert_eq!(
            document.get("points").and_then(JsonValue::as_f64),
            Some(points as f64)
        );
        assert_eq!(
            document.get("rows_per_sec").and_then(JsonValue::as_f64),
            Some(12.5)
        );
        let parsed = parse_metrics_snapshot(document.get("metrics").expect("metrics object"))
            .expect("metrics parse");
        assert_eq!(parsed.len(), merged.len());
        assert_eq!(parsed.counter_total("llc."), merged.counter_total("llc."));
        assert_eq!(
            parsed.counter("link.frames_sent"),
            merged.counter("link.frames_sent")
        );
        let phase = parsed
            .histogram("phase.simulate_ns")
            .expect("phase histogram");
        assert_eq!(
            phase.count(),
            merged.histogram("phase.simulate_ns").unwrap().count()
        );
    }

    #[test]
    fn streaming_writer_with_no_rows_is_a_valid_empty_document() {
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_empty_sweep_test.json");
        let writer = SweepJsonWriter::create(&path).expect("temp file writable");
        assert_eq!(writer.finish().expect("footer writes"), 0);
        let body = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(body, sweep_results_to_json(&[]));
        let _ = std::fs::remove_file(&path);
    }
}
