//! Hand-rolled JSON serialization of sweep results.
//!
//! The workspace builds offline with no serde, so this module writes the
//! small, flat schema the plotting side needs by hand: one object per sweep
//! row with the point coordinates and either the measured outcome or the
//! recorded failure. `repro --sweep --out <path>` is the entry point; it
//! streams rows through [`SweepJsonWriter`], which appends each row to the
//! file the moment its sweep point finishes instead of buffering the grid.

use crate::sweep::{SweepOutcome, SweepResult};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Schema tag written into every document; `v3` adds the `policy` column
/// and, for adaptive rows, the per-window `windows` array (`v2` keyed
/// backends by registry name instead of the pre-registry display labels).
pub const SWEEP_SCHEMA: &str = "leaky-buddies/sweep-v3";

/// Escapes a string for a JSON string literal (quotes not included).
/// Shared with [`crate::tracefile`], whose header line carries the same
/// caller-controlled strings (registry keys, labels).
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number; non-finite values become `null`.
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".into()
    }
}

fn outcome_fields(out: &mut String, outcome: &SweepOutcome) {
    let _ = write!(
        out,
        "\"bandwidth_kbps\":{},\"goodput_kbps\":{},\"error_rate\":{},\"code_rate\":{},\
         \"corrected_bits\":{},\"residual_errors\":{},\"symbol_time_ns\":{},\
         \"calibration_quality\":{},\"frames_sent\":{},\"retransmissions\":{}",
        number(outcome.bandwidth_kbps),
        number(outcome.goodput_kbps),
        number(outcome.error_rate),
        number(outcome.code_rate),
        outcome.corrected_bits,
        outcome.residual_errors,
        number(outcome.symbol_time_ns),
        number(outcome.calibration_quality),
        outcome.frames_sent,
        outcome.retransmissions,
    );
    if let Some(adaptation) = &outcome.adaptation {
        let _ = write!(
            out,
            ",\"switches\":{},\"final_code\":\"{}\",\"final_symbol_repeat\":{},\"windows\":[",
            adaptation.switches,
            escape(&adaptation.final_code.label()),
            adaptation.final_symbol_repeat,
        );
        for (i, w) in adaptation.trace.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"code\":\"{}\",\"symbol_repeat\":{},\"payload_bits\":{},\
                 \"wire_bits\":{},\"goodput_kbps\":{},\"residual_ber\":{},\
                 \"retransmissions\":{},\"corrected_bits\":{},\"decode_failures\":{},\
                 \"elapsed_ns\":{}}}",
                w.index,
                escape(&w.code.label()),
                w.symbol_repeat,
                w.payload_bits,
                w.wire_bits,
                number(w.goodput_kbps),
                number(w.residual_ber),
                w.retransmissions,
                w.corrected_bits,
                w.decode_failures,
                w.elapsed.as_ns(),
            );
        }
        out.push(']');
    }
}

/// Formats one sweep row as a JSON object (no trailing separator).
pub fn sweep_row_json(result: &SweepResult) -> String {
    let point = &result.point;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"channel\":\"{}\",\"noise\":\"{}\",\
         \"code\":\"{}\",\"policy\":{},\"bits\":{},\"seed\":{},",
        escape(&point.label()),
        escape(&point.backend),
        escape(point.channel.label()),
        escape(point.noise.label()),
        escape(&point.code.label()),
        match point.policy {
            Some(policy) => format!("\"{}\"", policy.label()),
            None => "null".into(),
        },
        point.bits,
        point.seed,
    );
    match &result.outcome {
        Ok(outcome) => {
            out.push_str("\"ok\":true,");
            outcome_fields(&mut out, outcome);
        }
        Err(err) => {
            let _ = write!(
                out,
                "\"ok\":false,\"error\":\"{}\"",
                escape(&err.to_string())
            );
        }
    }
    out.push('}');
    out
}

/// Serializes sweep rows into a self-describing JSON document.
pub fn sweep_results_to_json(results: &[SweepResult]) -> String {
    let mut out = format!("{{\n\"schema\":\"{SWEEP_SCHEMA}\",\n\"results\":[\n");
    for (i, result) in results.iter().enumerate() {
        out.push_str(&sweep_row_json(result));
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// Writes the sweep rows to `path` as JSON.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_sweep_json(path: &Path, results: &[SweepResult]) -> io::Result<()> {
    std::fs::write(path, sweep_results_to_json(results))
}

/// Incremental writer of the same document [`sweep_results_to_json`]
/// produces: rows are appended (and flushed) one at a time as sweep points
/// finish, so `repro --sweep --out <path>` never buffers the whole grid.
///
/// The completed file (after [`SweepJsonWriter::finish`]) is a valid JSON
/// document. A run killed mid-grid leaves every finished row intact on
/// disk, one per line, but without the closing `]}` footer — recover such a
/// file by appending the footer (or reading it line-wise); only `finish`
/// makes it parse as-is.
#[derive(Debug)]
pub struct SweepJsonWriter {
    out: BufWriter<File>,
    rows: usize,
}

impl SweepJsonWriter {
    /// Creates `path` and writes the document header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        write!(out, "{{\n\"schema\":\"{SWEEP_SCHEMA}\",\n\"results\":[\n")?;
        Ok(SweepJsonWriter { out, rows: 0 })
    }

    /// Appends one row and flushes it to the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn push(&mut self, result: &SweepResult) -> io::Result<()> {
        if self.rows > 0 {
            self.out.write_all(b",\n")?;
        }
        self.out.write_all(sweep_row_json(result).as_bytes())?;
        self.rows += 1;
        self.out.flush()
    }

    /// Number of rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Writes the document footer and closes the file, returning the row
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(mut self) -> io::Result<usize> {
        if self.rows > 0 {
            self.out.write_all(b"\n")?;
        }
        self.out.write_all(b"]\n}\n")?;
        self.out.flush()?;
        Ok(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{default_grid, SweepRunner};
    use covert::prelude::LinkCodeKind;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn document_shape_round_trips_key_facts() {
        let mut grid = default_grid(24);
        grid.truncate(2);
        grid[1].code = LinkCodeKind::Hamming74;
        let results = SweepRunner::new(2).run(&grid);
        let json = sweep_results_to_json(&results);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\":\"leaky-buddies/sweep-v3\""));
        assert!(json.contains("\"backend\":\"kabylake-gen9\""));
        assert!(json.contains("\"code\":\"none\""));
        assert!(json.contains("\"code\":\"hamming74\""));
        assert!(json.contains("\"goodput_kbps\":"));
        // One object per row.
        assert_eq!(json.matches("\"scenario\":").count(), 2);
        // Balanced braces and brackets (a cheap well-formedness check that
        // needs no JSON parser in the offline environment).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn failed_points_serialize_their_error() {
        let mut point = crate::sweep::SweepPoint::paper_default(
            "kabylake-gen9",
            crate::sweep::ChannelKind::RingContention,
            crate::sweep::NoiseLevel::Noiseless,
        );
        point.gpu_buffer_bytes = 8 * 1024 * 1024; // cannot fit: setup error
        point.bits = 16;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        assert!(results[0].outcome.is_err());
        let json = sweep_results_to_json(&results);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\"error\":\""));
    }

    #[test]
    fn write_creates_the_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_sweep_test.json");
        let results = SweepRunner::new(1).run(&default_grid(16)[..1]);
        write_sweep_json(&path, &results).expect("temp file writable");
        let body = std::fs::read_to_string(&path).expect("file readable");
        assert!(body.contains("sweep-v3"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_writer_produces_the_same_document_as_the_batch_path() {
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_streamed_sweep_test.json");
        let mut grid = default_grid(16);
        grid.truncate(3);
        let results = SweepRunner::new(2).run(&grid);
        let mut writer = SweepJsonWriter::create(&path).expect("temp file writable");
        for result in &results {
            writer.push(result).expect("row appends");
        }
        assert_eq!(writer.rows(), 3);
        let written = writer.finish().expect("footer writes");
        assert_eq!(written, 3);
        let streamed = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(streamed, sweep_results_to_json(&results));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_writer_leaves_valid_partial_output_before_finish() {
        // The documented crash-recovery contract: every pushed row is
        // flushed to disk the moment it lands (one per line, comma-led
        // after the first), and the closing `]}` footer appears only on
        // finish. A run killed mid-grid must leave all finished rows
        // readable line-wise.
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_partial_sweep_test.json");
        let mut grid = default_grid(16);
        grid.truncate(2);
        let results = SweepRunner::new(1).run(&grid);
        let mut writer = SweepJsonWriter::create(&path).expect("temp file writable");

        writer.push(&results[0]).expect("row appends");
        let after_one = std::fs::read_to_string(&path).expect("file readable");
        assert!(after_one.contains("\"schema\":"), "header flushed");
        assert_eq!(after_one.matches("\"scenario\":").count(), 1);
        assert!(
            !after_one.contains("]\n}"),
            "footer must not exist before finish"
        );
        // The flushed row is complete JSON on its own line.
        let row_line = after_one.lines().last().unwrap();
        assert!(row_line.starts_with('{') && row_line.ends_with('}'));

        writer.push(&results[1]).expect("row appends");
        let after_two = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(after_two.matches("\"scenario\":").count(), 2);
        assert!(!after_two.contains("]\n}"));

        let written = writer.finish().expect("footer writes");
        assert_eq!(written, 2);
        let complete = std::fs::read_to_string(&path).expect("file readable");
        assert!(complete.ends_with("]\n}\n"), "finish appends the footer");
        assert_eq!(complete, sweep_results_to_json(&results));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_rows_serialize_policy_and_window_traces() {
        let mut point = crate::sweep::SweepPoint::paper_default(
            "kabylake-gen9",
            crate::sweep::ChannelKind::RingContention,
            crate::sweep::NoiseLevel::Quiet,
        );
        point.bits = 128;
        point.policy = Some(covert::prelude::PolicyKind::Threshold);
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let json = sweep_results_to_json(&results);
        assert!(json.contains("\"policy\":\"threshold\""));
        assert!(json.contains("\"windows\":["));
        assert!(json.contains("\"symbol_repeat\":"));
        // Non-adaptive rows carry a null policy and no window array.
        point.policy = None;
        let results = SweepRunner::new(1).run(std::slice::from_ref(&point));
        let json = sweep_results_to_json(&results);
        assert!(json.contains("\"policy\":null"));
        assert!(!json.contains("\"windows\":["));
        // Braces stay balanced with the nested window objects.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn streaming_writer_with_no_rows_is_a_valid_empty_document() {
        let dir = std::env::temp_dir();
        let path = dir.join("leaky_buddies_empty_sweep_test.json");
        let writer = SweepJsonWriter::create(&path).expect("temp file writable");
        assert_eq!(writer.finish().expect("footer writes"), 0);
        let body = std::fs::read_to_string(&path).expect("file readable");
        assert_eq!(body, sweep_results_to_json(&[]));
        let _ = std::fs::remove_file(&path);
    }
}
