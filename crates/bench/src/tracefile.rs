//! On-disk persistence of recorded [`Trace`]s.
//!
//! The offline workspace has no serde, so the format is deliberately
//! minimal and line-oriented, written with the same hand-rolled JSON
//! helpers as [`crate::json`]: line 1 is a header object naming the sweep
//! point the trace was recorded under (backend registry key, channel,
//! noise, seed, …), and every following line is one [`TraceEvent`]. A
//! recorded sweep point therefore replays in a *separate process*: read the
//! file back, register the trace as a [`BackendSpec::replaying`] backend,
//! and re-run the identical point against it (`repro --replay-trace`).
//!
//! The reader is a minimal scanner for exactly what the writer emits — flat
//! objects, one per line, no nesting beyond number/string arrays — not a
//! general JSON parser.

use crate::json::escape;
use crate::sweep::{resolve_backend, ChannelKind, NoiseLevel, SweepPoint};
use covert::prelude::{Direction, L3EvictionStrategy, LinkCodeKind, PolicyKind};
use soc_sim::prelude::*;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// Schema tag of the trace file header line.
pub const TRACE_SCHEMA: &str = "leaky-buddies/trace-v1";

fn level_label(level: HitLevel) -> &'static str {
    match level {
        HitLevel::CpuL1 => "cpu-l1",
        HitLevel::CpuL2 => "cpu-l2",
        HitLevel::GpuL3 => "gpu-l3",
        HitLevel::Llc => "llc",
        HitLevel::Dram => "dram",
    }
}

fn parse_level(label: &str) -> Result<HitLevel, String> {
    match label {
        "cpu-l1" => Ok(HitLevel::CpuL1),
        "cpu-l2" => Ok(HitLevel::CpuL2),
        "gpu-l3" => Ok(HitLevel::GpuL3),
        "llc" => Ok(HitLevel::Llc),
        "dram" => Ok(HitLevel::Dram),
        other => Err(format!("unknown hit level {other:?}")),
    }
}

fn outcome_fields(out: &mut String, outcome: &AccessOutcome) {
    let _ = write!(
        out,
        "\"level\":\"{}\",\"latency_ps\":{},\"contention_ps\":{}",
        level_label(outcome.level),
        outcome.latency.as_ps(),
        outcome.contention_delay.as_ps(),
    );
}

/// Formats one trace event as a single JSON line.
fn event_line(event: &TraceEvent) -> String {
    let mut out = String::new();
    match event {
        TraceEvent::CpuAccess {
            core,
            paddr,
            outcome,
        } => {
            let _ = write!(
                out,
                "{{\"op\":\"cpu\",\"core\":{core},\"paddr\":{},",
                paddr.value()
            );
            outcome_fields(&mut out, outcome);
            out.push('}');
        }
        TraceEvent::GpuAccess { paddr, outcome } => {
            let _ = write!(out, "{{\"op\":\"gpu\",\"paddr\":{},", paddr.value());
            outcome_fields(&mut out, outcome);
            out.push('}');
        }
        TraceEvent::GpuAccessParallel {
            addrs,
            parallelism,
            outcome,
        } => {
            let join = |items: Vec<String>| items.join(",");
            let _ = write!(
                out,
                "{{\"op\":\"gpar\",\"parallelism\":{parallelism},\"total_ps\":{},\
                 \"addrs\":[{}],\"levels\":[{}],\"latencies_ps\":[{}],\"contentions_ps\":[{}]}}",
                outcome.total_latency.as_ps(),
                join(addrs.iter().map(|a| a.value().to_string()).collect()),
                join(
                    outcome
                        .outcomes
                        .iter()
                        .map(|o| format!("\"{}\"", level_label(o.level)))
                        .collect()
                ),
                join(
                    outcome
                        .outcomes
                        .iter()
                        .map(|o| o.latency.as_ps().to_string())
                        .collect()
                ),
                join(
                    outcome
                        .outcomes
                        .iter()
                        .map(|o| o.contention_delay.as_ps().to_string())
                        .collect()
                ),
            );
        }
        TraceEvent::Clflush { paddr, latency } => {
            let _ = write!(
                out,
                "{{\"op\":\"flush\",\"paddr\":{},\"latency_ps\":{}}}",
                paddr.value(),
                latency.as_ps()
            );
        }
        TraceEvent::TimerNoise { factor } => {
            // Rust's float Display is shortest-roundtrip, so the factor
            // survives the text round trip bit-exactly.
            let _ = write!(out, "{{\"op\":\"timer\",\"factor\":{factor}}}");
        }
    }
    out
}

/// Serializes a recorded point into the trace-file text.
pub fn trace_to_string(point: &SweepPoint, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"backend\":\"{}\",\"channel\":\"{}\",\
         \"noise\":\"{}\",\"code\":\"{}\",\"policy\":{},\"bits\":{},\"seed\":{},\
         \"direction\":\"{}\",\"strategy\":\"{}\",\"sets_per_role\":{},\
         \"gpu_buffer_bytes\":{},\"workgroups\":{},\"events\":{},\"dropped\":{}}}",
        escape(&point.backend),
        escape(point.channel.label()),
        escape(point.noise.label()),
        escape(&point.code.label()),
        match point.policy {
            Some(policy) => format!("\"{}\"", policy.label()),
            None => "null".into(),
        },
        point.bits,
        point.seed,
        point.direction.label(),
        point.strategy.label(),
        point.sets_per_role,
        point.gpu_buffer_bytes,
        point.workgroups,
        trace.events().len(),
        trace.dropped(),
    );
    for event in trace.events() {
        out.push_str(&event_line(event));
        out.push('\n');
    }
    out
}

/// Writes a recorded point to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: &Path, point: &SweepPoint, trace: &Trace) -> io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(trace_to_string(point, trace).as_bytes())?;
    file.flush()
}

/// Extracts the raw token for `key` from a flat single-line JSON object:
/// everything between `"key":` and the next top-level `,` or closing brace
/// (string values keep their quotes, arrays their brackets).
fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let marker = format!("\"{key}\":");
    let start = line
        .find(&marker)
        .ok_or_else(|| format!("missing field {key:?} in {line:?}"))?
        + marker.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                if depth == 0 {
                    return Ok(&rest[..i]);
                }
                depth -= 1;
                if depth == 0 {
                    return Ok(&rest[..=i]);
                }
            }
            ',' | '}' if !in_string && depth == 0 => return Ok(&rest[..i]),
            _ => {}
        }
    }
    Err(format!("unterminated value for {key:?} in {line:?}"))
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let raw = raw_field(line, key)?;
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string: {raw:?}"))?;
    // Undo exactly the escapes `crate::json::escape` produces.
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code: String = chars.by_ref().take(4).collect();
                let value = u32::from_str_radix(&code, 16)
                    .map_err(|_| format!("bad \\u escape in field {key:?}"))?;
                out.push(
                    char::from_u32(value)
                        .ok_or_else(|| format!("bad \\u escape in field {key:?}"))?,
                );
            }
            Some(other) => out.push(other),
            None => return Err(format!("dangling escape in field {key:?}")),
        }
    }
    Ok(out)
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)?
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("field {key:?} is not an integer"))
}

fn usize_field(line: &str, key: &str) -> Result<usize, String> {
    Ok(u64_field(line, key)? as usize)
}

fn f64_field(line: &str, key: &str) -> Result<f64, String> {
    raw_field(line, key)?
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("field {key:?} is not a number"))
}

/// Splits a serialized array (`[a,b,c]`) into its raw element tokens.
fn array_field<'a>(line: &'a str, key: &str) -> Result<Vec<&'a str>, String> {
    let raw = raw_field(line, key)?;
    let inner = raw
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("field {key:?} is not an array: {raw:?}"))?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    Ok(inner.split(',').map(str::trim).collect())
}

fn parse_outcome(line: &str) -> Result<AccessOutcome, String> {
    Ok(AccessOutcome {
        latency: Time::from_ps(u64_field(line, "latency_ps")?),
        level: parse_level(&str_field(line, "level")?)?,
        contention_delay: Time::from_ps(u64_field(line, "contention_ps")?),
    })
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    match str_field(line, "op")?.as_str() {
        "cpu" => Ok(TraceEvent::CpuAccess {
            core: usize_field(line, "core")?,
            paddr: PhysAddr::new(u64_field(line, "paddr")?),
            outcome: parse_outcome(line)?,
        }),
        "gpu" => Ok(TraceEvent::GpuAccess {
            paddr: PhysAddr::new(u64_field(line, "paddr")?),
            outcome: parse_outcome(line)?,
        }),
        "gpar" => {
            let addrs: Vec<PhysAddr> = array_field(line, "addrs")?
                .into_iter()
                .map(|t| t.parse::<u64>().map(PhysAddr::new))
                .collect::<Result<_, _>>()
                .map_err(|_| "bad address in gpar event".to_string())?;
            let levels = array_field(line, "levels")?;
            let latencies = array_field(line, "latencies_ps")?;
            let contentions = array_field(line, "contentions_ps")?;
            if levels.len() != latencies.len() || levels.len() != contentions.len() {
                return Err("gpar arrays disagree on length".into());
            }
            let outcomes = levels
                .iter()
                .zip(&latencies)
                .zip(&contentions)
                .map(|((level, lat), cont)| {
                    Ok(AccessOutcome {
                        level: parse_level(
                            level
                                .strip_prefix('"')
                                .and_then(|l| l.strip_suffix('"'))
                                .ok_or_else(|| "unquoted level".to_string())?,
                        )?,
                        latency: Time::from_ps(lat.parse().map_err(|_| "bad latency".to_string())?),
                        contention_delay: Time::from_ps(
                            cont.parse().map_err(|_| "bad contention".to_string())?,
                        ),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(TraceEvent::GpuAccessParallel {
                addrs,
                parallelism: usize_field(line, "parallelism")?,
                outcome: ParallelOutcome {
                    total_latency: Time::from_ps(u64_field(line, "total_ps")?),
                    outcomes,
                },
            })
        }
        "flush" => Ok(TraceEvent::Clflush {
            paddr: PhysAddr::new(u64_field(line, "paddr")?),
            latency: Time::from_ps(u64_field(line, "latency_ps")?),
        }),
        "timer" => Ok(TraceEvent::TimerNoise {
            factor: f64_field(line, "factor")?,
        }),
        other => Err(format!("unknown trace op {other:?}")),
    }
}

/// Parses the trace-file text back into the recorded sweep point and its
/// trace. The point's backend must exist in `registry` — the recorded
/// configuration is reassembled from the registry topology exactly the way
/// the recording run assembled it, so the replayed backend sees the same
/// `SocConfig` the recorder saw.
///
/// # Errors
///
/// Describes the first malformed line or unknown label.
pub fn parse_trace(text: &str, registry: &BackendRegistry) -> Result<(SweepPoint, Trace), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace file")?;
    let schema = str_field(header, "schema")?;
    let schema = schema.as_str();
    if schema != TRACE_SCHEMA {
        return Err(format!("unsupported trace schema {schema:?}"));
    }
    let channel_label = str_field(header, "channel")?;
    let channel = ChannelKind::ALL
        .into_iter()
        .find(|c| c.label() == channel_label)
        .ok_or_else(|| format!("unknown channel {channel_label:?}"))?;
    let noise_label = str_field(header, "noise")?;
    let noise = NoiseLevel::ALL
        .into_iter()
        .find(|n| n.label() == noise_label)
        .ok_or_else(|| format!("unknown noise level {noise_label:?}"))?;
    let direction_label = str_field(header, "direction")?;
    let direction = [Direction::GpuToCpu, Direction::CpuToGpu]
        .into_iter()
        .find(|d| d.label() == direction_label)
        .ok_or_else(|| format!("unknown direction {direction_label:?}"))?;
    let strategy_label = str_field(header, "strategy")?;
    let strategy = L3EvictionStrategy::ALL
        .into_iter()
        .find(|s| s.label() == strategy_label)
        .ok_or_else(|| format!("unknown strategy {strategy_label:?}"))?;
    let mut point = SweepPoint::paper_default(str_field(header, "backend")?, channel, noise);
    point.code = LinkCodeKind::parse(&str_field(header, "code")?)?;
    // The policy axis changes the access sequence (adaptive runs re-chunk
    // and re-code between windows), so a recorded adaptive point must
    // replay adaptively or the strict replayer reports divergence.
    point.policy = match raw_field(header, "policy")?.trim() {
        "null" => None,
        _ => Some(PolicyKind::parse(&str_field(header, "policy")?)?),
    };
    point.bits = usize_field(header, "bits")?;
    point.seed = u64_field(header, "seed")?;
    point.direction = direction;
    point.strategy = strategy;
    point.sets_per_role = usize_field(header, "sets_per_role")?;
    point.gpu_buffer_bytes = u64_field(header, "gpu_buffer_bytes")?;
    point.workgroups = usize_field(header, "workgroups")?;

    let expected_events = usize_field(header, "events")?;
    let dropped = usize_field(header, "dropped")?;
    let events = lines
        .filter(|l| !l.trim().is_empty())
        .map(parse_event)
        .collect::<Result<Vec<_>, _>>()?;
    if events.len() != expected_events {
        return Err(format!(
            "trace file truncated: header promises {expected_events} events, found {}",
            events.len()
        ));
    }
    let (_, config) = resolve_backend(&point, registry)
        .map_err(|err| format!("cannot reassemble recorded backend: {err}"))?;
    Ok((point, Trace::from_parts(config, events, dropped)))
}

/// Reads a trace file from disk. See [`parse_trace`].
///
/// # Errors
///
/// Propagates filesystem errors (as strings) and parse failures.
pub fn read_trace(path: &Path, registry: &BackendRegistry) -> Result<(SweepPoint, Trace), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    parse_trace(&text, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{record_point_trace, run_point_with_registry, SweepPoint};
    use covert::prelude::Transceiver;

    fn quick_point() -> SweepPoint {
        let mut point = SweepPoint::paper_default(
            "kabylake-gen9",
            ChannelKind::LlcPrimeProbe,
            NoiseLevel::Quiet,
        );
        point.bits = 24;
        point
    }

    #[test]
    fn trace_text_round_trips_every_event_kind() {
        let registry = BackendRegistry::standard();
        let point = quick_point();
        let (outcome, trace) =
            record_point_trace(&point, &Transceiver::raw(), &registry).expect("recording runs");
        assert!(outcome.bandwidth_kbps > 0.0);
        assert!(!trace.events().is_empty());
        // The LLC channel exercises cpu/gpu/gpar/flush/timer events; make
        // sure the file format covers what actually occurs.
        let text = trace_to_string(&point, &trace);
        let (read_point, read_trace) = parse_trace(&text, &registry).expect("parses back");
        assert_eq!(read_point.label(), point.label());
        assert_eq!(read_point.seed, point.seed);
        assert_eq!(read_trace.events(), trace.events());
        assert_eq!(read_trace.dropped(), trace.dropped());
        assert_eq!(read_trace.config().seed, trace.config().seed);
    }

    #[test]
    fn replayed_trace_reproduces_the_recorded_outcome_in_a_fresh_registry() {
        // Record → serialize → parse → register as a replaying backend →
        // re-run the identical point: the measurement must be bit-identical.
        let registry = BackendRegistry::standard();
        let point = quick_point();
        let (recorded, trace) =
            record_point_trace(&point, &Transceiver::raw(), &registry).expect("recording runs");
        let text = trace_to_string(&point, &trace);

        let (mut replay_point, read) = parse_trace(&text, &registry).expect("parses back");
        let replay_registry = BackendRegistry::standard().with_spec(BackendSpec::replaying(
            "trace-file",
            "trace loaded from text",
            read,
        ));
        replay_point.backend = "trace-file".into();
        let result = run_point_with_registry(&replay_point, &Transceiver::raw(), &replay_registry);
        let replayed = result.outcome.expect("replay runs");
        assert_eq!(replayed.bandwidth_kbps, recorded.bandwidth_kbps);
        assert_eq!(replayed.error_rate, recorded.error_rate);
        assert_eq!(replayed.frames_sent, recorded.frames_sent);
    }

    #[test]
    fn malformed_headers_and_events_are_rejected_with_context() {
        let registry = BackendRegistry::standard();
        assert!(parse_trace("", &registry).is_err());
        let bad_schema = "{\"schema\":\"other/v9\"}";
        assert!(parse_trace(bad_schema, &registry)
            .unwrap_err()
            .contains("schema"));
        let point = quick_point();
        let trace = Trace::from_parts(
            soc_sim::prelude::SocConfig::kaby_lake_noiseless(),
            vec![],
            0,
        );
        let mut text = trace_to_string(&point, &trace);
        text.push_str("{\"op\":\"warp\"}\n");
        let err = parse_trace(&text, &registry).unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }

    #[test]
    fn hostile_backend_names_survive_the_header_round_trip() {
        // Registry keys are caller-controlled; quotes and backslashes in a
        // registered name must be escaped on write and restored on read
        // instead of desyncing the header scanner.
        let registry = BackendRegistry::standard().with_spec(BackendSpec::new(
            "odd\"name\\v1",
            "hostile key",
            soc_sim::prelude::TopologySpec::kaby_lake_gen9,
        ));
        let mut point = quick_point();
        point.backend = "odd\"name\\v1".into();
        let trace = Trace::from_parts(registry.get("odd\"name\\v1").unwrap().config(), vec![], 0);
        let text = trace_to_string(&point, &trace);
        let (read_point, _) = parse_trace(&text, &registry).expect("parses back");
        assert_eq!(read_point.backend, "odd\"name\\v1");
        assert_eq!(read_point.bits, point.bits);
    }

    #[test]
    fn truncated_files_are_detected_by_the_event_count() {
        let registry = BackendRegistry::standard();
        let point = quick_point();
        let (_, trace) =
            record_point_trace(&point, &Transceiver::raw(), &registry).expect("recording runs");
        let text = trace_to_string(&point, &trace);
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 2)
            .map(|l| format!("{l}\n"))
            .collect();
        let err = parse_trace(&truncated, &registry).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }
}
