//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate mirrors the
//! small API surface the `bench` crate's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a plain
//! wall-clock timer. It reports mean iteration time per benchmark on stdout;
//! there is no statistical analysis, HTML report, or outlier rejection.
//! Swap the workspace dependency for the real `criterion = "0.5"` when
//! building online; no bench code changes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Default number of timed iterations per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Per-iteration timing callback target.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `samples` invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

fn run_one(title: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {title:<48} {:>12.3?} /iter over {} iters",
        mean, bencher.iterations
    );
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part `name/parameter` id.
    pub fn new<D1: Display, D2: Display>(name: D1, parameter: D2) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter (the group supplies the name).
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the default number of iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut runs = 0usize;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_function("plain", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(21u32), &21u32, |b, &x| {
            b.iter(|| runs += x as usize / 21)
        });
        group.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
