//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this reproduction has no access to crates.io,
//! so this vendored crate provides exactly the `rand` 0.8 API subset the
//! workspace uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed, which is all the simulator
//! requires (it models measurement noise, not cryptography).
//!
//! When building with registry access, drop this crate and point the
//! workspace dependency at the real `rand = "0.8"`; no call site changes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types from which a generator can be deterministically constructed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a raw 64-bit word onto `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform sample can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64 + 1; // hi - lo < u64::MAX for all uses here
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the small, non-cryptographic generator the real crate
    /// backs `SmallRng` with on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=16);
            assert!(y <= 16);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!((0..1000).filter(|_| rng.gen_bool(0.0)).count() == 0);
        assert!((0..1000).filter(|_| rng.gen_bool(1.0)).count() == 1000);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "0.25 draw hit {hits}/100000"
        );
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let original: Vec<u32> = (0..64).collect();
        let mut shuffled = original.clone();
        shuffled.shuffle(&mut rng);
        assert_ne!(shuffled, original);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
