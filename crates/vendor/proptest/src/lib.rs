//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro with optional `#![proptest_config(...)]`, range and
//! [`any`] strategies, [`collection::vec`], and the `prop_assert*` macros.
//! Cases are generated from a fixed per-case seed, so failures are exactly
//! reproducible; there is no shrinking — the failing inputs are printed
//! instead. Swap the workspace dependency for the real `proptest = "1"` when
//! building online; no test code changes.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; mirrors the fields the tests use.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; cheap properties keep it, expensive ones
        // override via `with_cases`.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Types with a full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; the tests never rely on NaN/inf inputs.
        f64::from_bits(rng.next_u64() % (f64::MAX.to_bits() + 1))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy over an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, reporting the inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "[proptest] property {} failed at case {case} with inputs: {inputs}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The shim itself: ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 0u64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Vec strategy honours the length range.
        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::new(3);
        let mut b = crate::TestRng::new(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
