//! CPU-side execution model.
//!
//! The spy (or trojan) running on the CPU is an ordinary unprivileged process
//! with access to a high-resolution timestamp counter (`rdtsc` /
//! `clock_gettime`), `clflush`, and plain loads. [`CpuThread`] models one such
//! thread pinned to a core: it owns its local notion of time (advanced by
//! every operation it performs) and converts latencies into timestamp-counter
//! cycles exactly the way the real attack code does.

use soc_sim::clock::{ClockDomain, Time};
use soc_sim::page_table::AddressSpace;
use soc_sim::prelude::{AccessOutcome, BatchRequest, MemorySystem, PhysAddr, VirtAddr};

/// Errors from CPU-side operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// A virtual address had no mapping in the process page table.
    UnmappedAddress(VirtAddr),
}

impl std::fmt::Display for CpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuError::UnmappedAddress(va) => write!(f, "unmapped virtual address {va}"),
        }
    }
}

impl std::error::Error for CpuError {}

/// One attacker thread pinned to a CPU core.
#[derive(Debug, Clone)]
pub struct CpuThread {
    core: usize,
    clock: ClockDomain,
    local_time: Time,
}

impl CpuThread {
    /// Creates a thread pinned to `core`, using the given core clock.
    pub fn new(core: usize, clock: ClockDomain) -> Self {
        CpuThread {
            core,
            clock,
            local_time: Time::ZERO,
        }
    }

    /// Creates a thread pinned to `core` on the default 4.2 GHz clock.
    pub fn pinned(core: usize) -> Self {
        CpuThread::new(core, ClockDomain::from_ghz("cpu", 4.2))
    }

    /// The core this thread is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Current local time of this thread.
    pub fn now(&self) -> Time {
        self.local_time
    }

    /// The core clock domain.
    pub fn clock(&self) -> &ClockDomain {
        &self.clock
    }

    /// Advances local time by `delta` (models computation or deliberate spin
    /// delays).
    pub fn advance(&mut self, delta: Time) {
        self.local_time += delta;
    }

    /// Sets the local time (used when synchronizing agents at a barrier).
    pub fn synchronize_to(&mut self, t: Time) {
        self.local_time = self.local_time.max(t);
    }

    /// Reads the timestamp counter (in core cycles).
    pub fn rdtsc(&self) -> u64 {
        self.clock.time_to_cycles(self.local_time)
    }

    /// Loads the line at physical address `paddr`, advancing local time.
    pub fn load<M: MemorySystem>(&mut self, soc: &mut M, paddr: PhysAddr) -> AccessOutcome {
        let outcome = soc.cpu_access(self.core, paddr, self.local_time);
        self.local_time += outcome.latency;
        outcome
    }

    /// Loads the line at virtual address `va` through `space`.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnmappedAddress`] when `va` is not mapped.
    pub fn load_virt<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        space: &AddressSpace,
        va: VirtAddr,
    ) -> Result<AccessOutcome, CpuError> {
        let pa = space.translate(va).ok_or(CpuError::UnmappedAddress(va))?;
        Ok(self.load(soc, pa))
    }

    /// Loads `paddr` and returns the measured latency in timestamp-counter
    /// cycles, exactly as the attack's `rdtsc(); load; rdtsc()` sequence
    /// observes it.
    pub fn timed_load<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        paddr: PhysAddr,
    ) -> (u64, AccessOutcome) {
        let before = self.rdtsc();
        let outcome = self.load(soc, paddr);
        let after = self.rdtsc();
        (after - before, outcome)
    }

    /// Loads a sequence of lines back to back (e.g. a prime or probe pass),
    /// returning total latency and per-access outcomes.
    pub fn load_all<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        addrs: &[PhysAddr],
    ) -> (Time, Vec<AccessOutcome>) {
        let start = self.local_time;
        let outcomes = addrs.iter().map(|&a| self.load(soc, a)).collect();
        (self.local_time - start, outcomes)
    }

    /// Executes a chained batch of requests (loads and flushes) starting at
    /// this thread's local time, advancing it past the whole batch. One
    /// [`AccessOutcome`] per load is appended to `outcomes`; the batch
    /// duration is returned.
    ///
    /// Timing-equivalent to issuing each request through
    /// [`CpuThread::load`] / [`CpuThread::clflush`] in order, but lets the
    /// backend amortise per-access dispatch over the whole group
    /// (`BatchRequest::CpuLoad` entries should carry this thread's core).
    pub fn run_batch<M: MemorySystem>(
        &mut self,
        soc: &mut M,
        requests: &[BatchRequest],
        outcomes: &mut Vec<AccessOutcome>,
    ) -> Time {
        let start = self.local_time;
        self.local_time = soc.access_batch(requests, start, outcomes);
        self.local_time - start
    }

    /// Builds the [`BatchRequest::CpuLoad`] entry for `paddr` on this
    /// thread's core.
    pub fn load_request(&self, paddr: PhysAddr) -> BatchRequest {
        BatchRequest::CpuLoad {
            core: self.core,
            paddr,
        }
    }

    /// Executes `clflush` on the line containing `paddr`.
    pub fn clflush<M: MemorySystem>(&mut self, soc: &mut M, paddr: PhysAddr) {
        let latency = soc.clflush(paddr, self.local_time);
        self.local_time += latency;
    }

    /// Busy-waits for the given number of core cycles.
    pub fn spin_cycles(&mut self, cycles: u64) {
        self.local_time += self.clock.cycles_to_time(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{HitLevel, PageKind, Soc, SocConfig};

    fn setup() -> (Soc, CpuThread) {
        (
            Soc::new(SocConfig::kaby_lake_noiseless()),
            CpuThread::pinned(0),
        )
    }

    #[test]
    fn load_advances_local_time() {
        let (mut soc, mut t) = setup();
        assert_eq!(t.now(), Time::ZERO);
        let out = t.load(&mut soc, PhysAddr::new(0x1000));
        assert_eq!(t.now(), out.latency);
        assert_eq!(out.level, HitLevel::Dram);
    }

    #[test]
    fn timed_load_measures_cycles_consistent_with_latency() {
        let (mut soc, mut t) = setup();
        let a = PhysAddr::new(0x2000);
        t.load(&mut soc, a); // warm
        let (cycles, out) = t.timed_load(&mut soc, a);
        assert_eq!(out.level, HitLevel::CpuL1);
        let expected = t.clock().time_to_cycles(out.latency);
        assert!((cycles as i64 - expected as i64).abs() <= 1);
    }

    #[test]
    fn llc_hit_takes_more_cycles_than_l1_hit() {
        let (mut soc, mut t) = setup();
        let a = PhysAddr::new(0x3000);
        t.load(&mut soc, a);
        let (l1_cycles, _) = t.timed_load(&mut soc, a);
        // Flush from private caches (clflush also removes from the LLC), then
        // warm the LLC again from another core so this core sees an LLC hit.
        let mut other = CpuThread::pinned(1);
        t.clflush(&mut soc, a);
        other.load(&mut soc, a);
        let (llc_cycles, out) = t.timed_load(&mut soc, a);
        assert_eq!(out.level, HitLevel::Llc);
        assert!(
            llc_cycles > l1_cycles * 3,
            "LLC {llc_cycles} vs L1 {l1_cycles}"
        );
    }

    #[test]
    fn load_virt_translates_and_errors_on_unmapped() {
        let (mut soc, mut t) = setup();
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, 4096, PageKind::Small).unwrap();
        let out = t.load_virt(&mut soc, &space, buf.base).unwrap();
        assert_eq!(out.level, HitLevel::Dram);
        let err = t
            .load_virt(&mut soc, &space, VirtAddr::new(0xdead_0000))
            .unwrap_err();
        assert!(matches!(err, CpuError::UnmappedAddress(_)));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn load_all_sums_latencies() {
        let (mut soc, mut t) = setup();
        let addrs: Vec<PhysAddr> = (0..8).map(|i| PhysAddr::new(0x10_0000 + i * 64)).collect();
        let (total, outcomes) = t.load_all(&mut soc, &addrs);
        assert_eq!(outcomes.len(), 8);
        let sum: u64 = outcomes.iter().map(|o| o.latency.as_ps()).sum();
        assert_eq!(total.as_ps(), sum);
    }

    #[test]
    fn spin_and_synchronize() {
        let (_soc, mut t) = setup();
        t.spin_cycles(4200);
        assert!(t.now() >= Time::from_ns(999) && t.now() <= Time::from_ns(1001));
        t.synchronize_to(Time::from_us(5));
        assert_eq!(t.now(), Time::from_us(5));
        // Synchronizing backwards never rewinds time.
        t.synchronize_to(Time::ZERO);
        assert_eq!(t.now(), Time::from_us(5));
        assert_eq!(t.rdtsc(), t.clock().time_to_cycles(Time::from_us(5)));
    }

    #[test]
    fn run_batch_matches_per_access_loop() {
        let addrs: Vec<PhysAddr> = (0..16).map(|i| PhysAddr::new(0x20_0000 + i * 64)).collect();
        // Per-access loop on one SoC…
        let (mut soc_a, mut ta) = setup();
        let mut expected = Vec::new();
        for &a in &addrs {
            expected.push(ta.load(&mut soc_a, a));
        }
        ta.clflush(&mut soc_a, addrs[0]);
        // …and the same workload as one batch on a fresh, identical SoC.
        let (mut soc_b, mut tb) = setup();
        let mut requests: Vec<_> = addrs.iter().map(|&a| tb.load_request(a)).collect();
        requests.push(BatchRequest::Flush { paddr: addrs[0] });
        let mut outcomes = Vec::new();
        let duration = tb.run_batch(&mut soc_b, &requests, &mut outcomes);
        assert_eq!(outcomes, expected);
        assert_eq!(tb.now(), ta.now());
        assert_eq!(duration, ta.now());
    }

    #[test]
    fn clflush_removes_line_from_llc() {
        let (mut soc, mut t) = setup();
        let a = PhysAddr::new(0x5000);
        t.load(&mut soc, a);
        assert!(soc.llc().contains(a));
        t.clflush(&mut soc, a);
        assert!(!soc.llc().contains(a));
    }
}
