//! Attacker-controlled memory buffers and access patterns.
//!
//! Both channels access their buffers at cache-line granularity and in a
//! *random pointer-chasing* order so the hardware prefetchers cannot follow
//! the stream and perturb the LLC contents (Section IV of the paper). This
//! module converts a mapped buffer into physical line addresses and produces
//! the access orders used by the attack code.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use soc_sim::address::CACHE_LINE_SIZE;
use soc_sim::page_table::{AddressSpace, MappedBuffer};
use soc_sim::prelude::PhysAddr;

/// How the lines of a buffer are walked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Ascending address order (prefetcher friendly — used as a baseline).
    Sequential,
    /// Fixed stride in lines (e.g. one line per 4 KiB page).
    Strided {
        /// Stride expressed in cache lines.
        lines: usize,
    },
    /// Random permutation of all lines (pointer chasing), seeded for
    /// reproducibility.
    PointerChase {
        /// Permutation seed.
        seed: u64,
    },
}

/// A buffer resolved to physical cache-line addresses.
#[derive(Debug, Clone)]
pub struct LineBuffer {
    lines: Vec<PhysAddr>,
}

impl LineBuffer {
    /// Resolves every cache line of `buffer` through `space`.
    ///
    /// # Panics
    ///
    /// Panics if any page of the buffer is unmapped (cannot happen for
    /// buffers returned by [`soc_sim::system::Soc::alloc`]).
    pub fn resolve(space: &AddressSpace, buffer: &MappedBuffer) -> Self {
        let lines = buffer
            .lines()
            .map(|va| space.translate(va).expect("buffer page must be mapped"))
            .collect();
        LineBuffer { lines }
    }

    /// Builds a line buffer directly from physical addresses (for tests and
    /// for eviction sets that are already physical).
    pub fn from_phys(lines: Vec<PhysAddr>) -> Self {
        LineBuffer { lines }
    }

    /// Number of cache lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` when the buffer holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The physical line addresses in ascending virtual order.
    pub fn lines(&self) -> &[PhysAddr] {
        &self.lines
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.lines.len() as u64 * CACHE_LINE_SIZE
    }

    /// Produces the access order for the given pattern.
    pub fn access_order(&self, pattern: AccessPattern) -> Vec<PhysAddr> {
        match pattern {
            AccessPattern::Sequential => self.lines.clone(),
            AccessPattern::Strided { lines } => {
                let stride = lines.max(1);
                let mut out = Vec::with_capacity(self.lines.len());
                for start in 0..stride {
                    let mut i = start;
                    while i < self.lines.len() {
                        out.push(self.lines[i]);
                        i += stride;
                    }
                }
                out
            }
            AccessPattern::PointerChase { seed } => {
                let mut out = self.lines.clone();
                let mut rng = SmallRng::seed_from_u64(seed);
                out.shuffle(&mut rng);
                out
            }
        }
    }

    /// Keeps only the first `n` lines (useful to trim a buffer to a working
    /// set that fits the LLC).
    pub fn truncated(&self, n: usize) -> LineBuffer {
        LineBuffer {
            lines: self.lines.iter().copied().take(n).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{PageKind, Soc, SocConfig};

    fn buffer_of(len: u64) -> LineBuffer {
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, len, PageKind::Small).unwrap();
        LineBuffer::resolve(&space, &buf)
    }

    #[test]
    fn resolve_produces_one_entry_per_line() {
        let b = buffer_of(8 * 1024);
        assert_eq!(b.len(), 128);
        assert_eq!(b.byte_len(), 8 * 1024);
        assert!(!b.is_empty());
        assert!(b.lines().iter().all(|a| a.line_offset() == 0));
    }

    #[test]
    fn sequential_order_is_identity() {
        let b = buffer_of(4 * 1024);
        assert_eq!(b.access_order(AccessPattern::Sequential), b.lines());
    }

    #[test]
    fn pointer_chase_is_a_permutation_and_deterministic() {
        let b = buffer_of(16 * 1024);
        let p1 = b.access_order(AccessPattern::PointerChase { seed: 9 });
        let p2 = b.access_order(AccessPattern::PointerChase { seed: 9 });
        let p3 = b.access_order(AccessPattern::PointerChase { seed: 10 });
        assert_eq!(p1, p2, "same seed, same order");
        assert_ne!(p1, p3, "different seed, different order");
        assert_ne!(p1, b.lines(), "shuffled order differs from sequential");
        let mut sorted = p1.clone();
        sorted.sort();
        let mut expected = b.lines().to_vec();
        expected.sort();
        assert_eq!(
            sorted, expected,
            "permutation covers every line exactly once"
        );
    }

    #[test]
    fn strided_order_covers_all_lines() {
        let b = buffer_of(4 * 1024);
        let order = b.access_order(AccessPattern::Strided { lines: 8 });
        assert_eq!(order.len(), b.len());
        let mut sorted = order.clone();
        sorted.sort();
        let mut expected = b.lines().to_vec();
        expected.sort();
        assert_eq!(sorted, expected);
        // First elements step by 8 lines within the same page.
        assert_eq!(order[1].value() - order[0].value(), 8 * CACHE_LINE_SIZE);
    }

    #[test]
    fn zero_stride_is_treated_as_one() {
        let b = buffer_of(1024);
        let order = b.access_order(AccessPattern::Strided { lines: 0 });
        assert_eq!(order, b.lines());
    }

    #[test]
    fn truncated_keeps_prefix() {
        let b = buffer_of(4 * 1024);
        let t = b.truncated(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.lines(), &b.lines()[..10]);
    }

    #[test]
    fn from_phys_roundtrip() {
        let lines = vec![PhysAddr::new(0), PhysAddr::new(64)];
        let b = LineBuffer::from_phys(lines.clone());
        assert_eq!(b.lines(), lines.as_slice());
    }
}
