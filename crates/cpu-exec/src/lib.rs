//! # cpu-exec — CPU-side execution model for the Leaky Buddies reproduction
//!
//! Models the attacker thread(s) running on the CPU cores of the simulated
//! SoC: cycle-accurate timestamps (`rdtsc`), cache-line loads, `clflush`, and
//! the pointer-chasing buffer walks both covert channels rely on.
//!
//! ```
//! use cpu_exec::prelude::*;
//! use soc_sim::prelude::*;
//!
//! let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
//! let mut spy = CpuThread::pinned(0);
//! let (cycles, outcome) = spy.timed_load(&mut soc, PhysAddr::new(0x1000));
//! assert_eq!(outcome.level, HitLevel::Dram);
//! assert!(cycles > 100, "a cold miss costs hundreds of cycles");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod core;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::buffer::{AccessPattern, LineBuffer};
    pub use crate::core::{CpuError, CpuThread};
}

pub use prelude::*;
