//! Property-based tests of the CPU execution model.

use cpu_exec::prelude::*;
use proptest::prelude::*;
use soc_sim::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every access pattern of a buffer is a permutation of its lines.
    #[test]
    fn access_patterns_are_permutations(pages in 1u64..16, seed in any::<u64>(), stride in 0usize..32) {
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let mut space = soc.create_process();
        let buf = soc.alloc(&mut space, pages * 4096, PageKind::Small).unwrap();
        let lines = LineBuffer::resolve(&space, &buf);
        for pattern in [
            AccessPattern::Sequential,
            AccessPattern::Strided { lines: stride },
            AccessPattern::PointerChase { seed },
        ] {
            let order = lines.access_order(pattern);
            prop_assert_eq!(order.len(), lines.len());
            let mut sorted = order;
            sorted.sort();
            let mut expected = lines.lines().to_vec();
            expected.sort();
            prop_assert_eq!(sorted, expected);
        }
    }

    /// A thread's local time never decreases, regardless of the operation
    /// sequence, and rdtsc is consistent with the local clock.
    #[test]
    fn local_time_is_monotone(ops in proptest::collection::vec(0u8..4, 1..40)) {
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let mut thread = CpuThread::pinned(0);
        let mut last = thread.now();
        for (i, op) in ops.iter().enumerate() {
            let addr = PhysAddr::new(0x10_0000 + (i as u64) * 64);
            match op {
                0 => {
                    thread.load(&mut soc, addr);
                }
                1 => {
                    thread.clflush(&mut soc, addr);
                }
                2 => thread.spin_cycles(100),
                _ => {
                    let (cycles, _) = thread.timed_load(&mut soc, addr);
                    prop_assert!(cycles > 0);
                }
            }
            prop_assert!(thread.now() >= last);
            last = thread.now();
            prop_assert_eq!(thread.rdtsc(), thread.clock().time_to_cycles(thread.now()));
        }
    }
}
