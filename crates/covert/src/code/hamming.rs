//! Hamming(7,4) single-error-correcting link code.
//!
//! The payload is cut into 4-bit nibbles (the last one zero-padded), each
//! expanded to a 7-bit codeword with three parity bits in the classic
//! positions 1, 2 and 4. Any single flipped bit per codeword is located by
//! the syndrome and corrected in place — at a 7/4 rate cost, the channel's
//! isolated slip errors disappear without a retransmission. Double errors
//! within one codeword are miscorrected (the code is SEC, not SECDED), which
//! is exactly why the bursty-noise regime wants the interleaved
//! Reed–Solomon code instead.

use super::{DecodeOutcome, LinkCode, LinkCodeKind};

/// Payload bits per codeword.
pub const DATA_BITS: usize = 4;
/// Wire bits per codeword.
pub const CODE_BITS: usize = 7;

/// Encodes one nibble `d` (4 bits) into a 7-bit codeword.
///
/// Bit positions follow the textbook layout (1-indexed): p1 p2 d1 p4 d2 d3
/// d4, where p1 covers positions {1,3,5,7}, p2 {2,3,6,7}, p4 {4,5,6,7}.
fn encode_block(d: [bool; DATA_BITS]) -> [bool; CODE_BITS] {
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p4 = d[1] ^ d[2] ^ d[3];
    [p1, p2, d[0], p4, d[1], d[2], d[3]]
}

/// Decodes one codeword, returning the corrected nibble and whether a bit
/// was corrected.
fn decode_block(mut c: [bool; CODE_BITS]) -> ([bool; DATA_BITS], bool) {
    // Syndrome bit i checks all 1-indexed positions with bit i set.
    let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s4 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = usize::from(s1) | (usize::from(s2) << 1) | (usize::from(s4) << 2);
    let corrected = syndrome != 0;
    if corrected {
        c[syndrome - 1] = !c[syndrome - 1];
    }
    ([c[2], c[4], c[5], c[6]], corrected)
}

/// The Hamming(7,4) code.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hamming74;

impl LinkCode for Hamming74 {
    fn kind(&self) -> LinkCodeKind {
        LinkCodeKind::Hamming74
    }

    fn encode(&self, payload: &[bool]) -> Vec<bool> {
        let mut wire = Vec::with_capacity(self.encoded_len(payload.len()));
        for chunk in payload.chunks(DATA_BITS) {
            let mut d = [false; DATA_BITS];
            d[..chunk.len()].copy_from_slice(chunk);
            wire.extend_from_slice(&encode_block(d));
        }
        wire
    }

    fn decode(&self, wire: &[bool]) -> DecodeOutcome {
        let mut payload = Vec::with_capacity(wire.len() / CODE_BITS * DATA_BITS);
        let mut corrected_bits = 0usize;
        let mut residual_errors = 0usize;
        for chunk in wire.chunks(CODE_BITS) {
            if chunk.len() < CODE_BITS {
                // A truncated trailing block cannot be decoded; surface it as
                // a detected failure and pass the raw bits through.
                residual_errors += 1;
                payload.extend_from_slice(chunk);
                continue;
            }
            let mut c = [false; CODE_BITS];
            c.copy_from_slice(chunk);
            let (d, corrected) = decode_block(c);
            corrected_bits += usize::from(corrected);
            payload.extend_from_slice(&d);
        }
        DecodeOutcome {
            payload,
            corrected_bits,
            residual_errors,
        }
    }

    fn encoded_len(&self, payload_bits: usize) -> usize {
        payload_bits.div_ceil(DATA_BITS) * CODE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip_for_all_nibbles() {
        for value in 0u8..16 {
            let d = [
                value & 8 != 0,
                value & 4 != 0,
                value & 2 != 0,
                value & 1 != 0,
            ];
            let (decoded, corrected) = decode_block(encode_block(d));
            assert_eq!(decoded, d);
            assert!(!corrected);
        }
    }

    #[test]
    fn every_single_flip_is_corrected() {
        for value in 0u8..16 {
            let d = [
                value & 8 != 0,
                value & 4 != 0,
                value & 2 != 0,
                value & 1 != 0,
            ];
            let clean = encode_block(d);
            for pos in 0..CODE_BITS {
                let mut c = clean;
                c[pos] = !c[pos];
                let (decoded, corrected) = decode_block(c);
                assert_eq!(decoded, d, "value {value} flip {pos}");
                assert!(corrected);
            }
        }
    }

    #[test]
    fn stream_roundtrip_pads_and_truncates() {
        let code = Hamming74;
        // 10 bits: 2.5 nibbles -> 3 blocks -> 21 wire bits, 12 decoded bits.
        let payload: Vec<bool> = (0..10).map(|i| i % 3 == 0).collect();
        let wire = code.encode(&payload);
        assert_eq!(wire.len(), 21);
        let out = code.decode(&wire);
        assert_eq!(&out.payload[..10], payload.as_slice());
        assert_eq!(out.corrected_bits, 0);
        assert_eq!(out.residual_errors, 0);
    }

    #[test]
    fn one_flip_per_block_recovers_the_stream() {
        let code = Hamming74;
        let payload: Vec<bool> = (0..32).map(|i| i % 5 < 2).collect();
        let mut wire = code.encode(&payload);
        // Flip one bit in each 7-bit block at staggered positions.
        for (block, chunk) in wire.chunks_mut(CODE_BITS).enumerate() {
            chunk[block % CODE_BITS] = !chunk[block % CODE_BITS];
        }
        let out = code.decode(&wire);
        assert_eq!(&out.payload[..32], payload.as_slice());
        assert_eq!(out.corrected_bits, 32 / DATA_BITS);
    }
}
