//! Forward-error-correction link layer for the transceiver engine.
//!
//! The paper's channels recover from noise-induced symbol errors only by
//! whole-frame retransmission: every flipped bit costs a full frame of
//! airtime. This module turns retransmissions into goodput by letting the
//! [`crate::channel::engine::Transceiver`] encode each frame before symbol
//! modulation and decode it before the accept path:
//!
//! * [`NoCode`] — passthrough baseline (the PR 1 behaviour);
//! * [`Crc8Code`] — detect-only: errors anywhere in the frame trigger a
//!   retransmission instead of slipping through silently;
//! * [`Hamming74`] — single-error correction at bit granularity, repairing
//!   the channel's isolated slip errors without a retransmission;
//! * [`ReedSolomon`] — symbol-level correction over GF(2^8) with a block
//!   interleaver, built for the bursty corruption cache-eviction noise and
//!   the common-mode GPU-timer wobble produce.
//!
//! Codes implement [`LinkCode`]; the engine selects one through the
//! [`LinkCodeKind`] configuration axis, which the sweep grid and the `repro`
//! CLI expose end to end.

pub mod crc;
pub mod gf256;
pub mod hamming;
pub mod interleave;
pub mod rs;

pub use crc::Crc8Code;
pub use hamming::Hamming74;
pub use interleave::{deinterleave, interleave};
pub use rs::ReedSolomon;

/// Result of decoding one frame's worth of wire bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// The decoded payload bits. May be longer than the original payload
    /// when the code pads to a block size; the engine truncates.
    pub payload: Vec<bool>,
    /// Bits the decoder repaired (0 for detect-only and passthrough codes).
    pub corrected_bits: usize,
    /// Detected-but-uncorrectable error events (CRC mismatch bits, failed
    /// Reed–Solomon codewords). Non-zero means the frame should be
    /// retransmitted if the retry budget allows.
    pub residual_errors: usize,
}

impl DecodeOutcome {
    /// A clean decode of `payload` with nothing corrected or detected.
    pub fn clean(payload: Vec<bool>) -> Self {
        DecodeOutcome {
            payload,
            corrected_bits: 0,
            residual_errors: 0,
        }
    }
}

/// A link-layer code: a reversible expansion of frame payloads that detects
/// and/or corrects transmission errors.
///
/// Implementations must be deterministic and satisfy
/// `decode(encode(p)).payload[..p.len()] == p` on a clean wire, with
/// `encode(p).len() == encoded_len(p.len())`.
pub trait LinkCode: Send + Sync {
    /// The configuration value that rebuilds this codec.
    fn kind(&self) -> LinkCodeKind;

    /// Expands payload bits into wire bits.
    fn encode(&self, payload: &[bool]) -> Vec<bool>;

    /// Contracts wire bits back into payload bits, correcting what the code
    /// can and reporting what it cannot.
    fn decode(&self, wire: &[bool]) -> DecodeOutcome;

    /// Wire bits produced for a payload of `payload_bits` bits.
    fn encoded_len(&self, payload_bits: usize) -> usize;

    /// Nominal code rate: payload bits per wire bit for a 64-bit frame (the
    /// engine's default frame size), in `(0, 1]`.
    fn rate(&self) -> f64 {
        64.0 / self.encoded_len(64) as f64
    }
}

/// The passthrough baseline: wire bits are payload bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCode;

impl LinkCode for NoCode {
    fn kind(&self) -> LinkCodeKind {
        LinkCodeKind::None
    }

    fn encode(&self, payload: &[bool]) -> Vec<bool> {
        payload.to_vec()
    }

    fn decode(&self, wire: &[bool]) -> DecodeOutcome {
        DecodeOutcome::clean(wire.to_vec())
    }

    fn encoded_len(&self, payload_bits: usize) -> usize {
        payload_bits
    }
}

/// The pluggable link-code axis: a compact, copyable configuration value the
/// transceiver, sweep grids and CLI flags pass around, turned into a codec
/// with [`LinkCodeKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkCodeKind {
    /// Passthrough baseline.
    #[default]
    None,
    /// CRC-8 detect-only.
    Crc8,
    /// Hamming(7,4) single-error correction.
    Hamming74,
    /// Reed–Solomon over GF(2^8) with block interleaving.
    ReedSolomon {
        /// Payload symbols per codeword (`k`).
        data_symbols: u8,
        /// Check symbols per codeword (`n - k`).
        parity_symbols: u8,
        /// Block-interleaver depth in codeword streams (1 = none).
        interleave_depth: u8,
    },
}

impl LinkCodeKind {
    /// The Reed–Solomon configuration the reproduction defaults to:
    /// RS(12, 8) — one codeword per 64-bit frame, 2 correctable symbols —
    /// interleaved 4 deep.
    pub fn rs_default() -> Self {
        LinkCodeKind::ReedSolomon {
            data_symbols: 8,
            parity_symbols: 4,
            interleave_depth: 4,
        }
    }

    /// Every code family at its default configuration, in report order.
    pub fn all() -> [LinkCodeKind; 4] {
        [
            LinkCodeKind::None,
            LinkCodeKind::Crc8,
            LinkCodeKind::Hamming74,
            LinkCodeKind::rs_default(),
        ]
    }

    /// Instantiates the codec this kind describes.
    pub fn build(self) -> Box<dyn LinkCode> {
        match self {
            LinkCodeKind::None => Box::new(NoCode),
            LinkCodeKind::Crc8 => Box::new(Crc8Code),
            LinkCodeKind::Hamming74 => Box::new(Hamming74),
            LinkCodeKind::ReedSolomon {
                data_symbols,
                parity_symbols,
                interleave_depth,
            } => Box::new(ReedSolomon::new(
                data_symbols as usize,
                parity_symbols as usize,
                interleave_depth as usize,
            )),
        }
    }

    /// Human-readable label for report rows (`none`, `crc8`, `hamming74`,
    /// `rs(12,8,4)`), re-parseable by [`LinkCodeKind::parse`].
    pub fn label(self) -> String {
        match self {
            LinkCodeKind::None => "none".into(),
            LinkCodeKind::Crc8 => "crc8".into(),
            LinkCodeKind::Hamming74 => "hamming74".into(),
            LinkCodeKind::ReedSolomon {
                data_symbols,
                parity_symbols,
                interleave_depth,
            } => {
                let n = data_symbols as usize + parity_symbols as usize;
                if interleave_depth <= 1 {
                    format!("rs({n},{data_symbols})")
                } else {
                    format!("rs({n},{data_symbols},{interleave_depth})")
                }
            }
        }
    }

    /// Parses a CLI label: `none`, `crc8`, `hamming74`, `rs` (defaults), or
    /// `rs(n,k)` / `rs(n,k,depth)` with explicit geometry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim().to_ascii_lowercase();
        match text.as_str() {
            "none" | "nocode" | "raw" => return Ok(LinkCodeKind::None),
            "crc" | "crc8" => return Ok(LinkCodeKind::Crc8),
            "hamming" | "hamming74" => return Ok(LinkCodeKind::Hamming74),
            "rs" | "reed-solomon" | "reedsolomon" => return Ok(LinkCodeKind::rs_default()),
            _ => {}
        }
        let inner = text
            .strip_prefix("rs(")
            .and_then(|rest| rest.strip_suffix(')'))
            .ok_or_else(|| format!("unknown link code {text:?} (try none, crc8, hamming74, rs, rs(n,k), rs(n,k,depth))"))?;
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        if parts.len() != 2 && parts.len() != 3 {
            return Err(format!("rs(...) takes (n,k) or (n,k,depth), got {text:?}"));
        }
        let parse_field = |s: &str, name: &str| -> Result<usize, String> {
            s.parse::<usize>()
                .map_err(|_| format!("invalid {name} in {text:?}"))
        };
        let n = parse_field(parts[0], "n")?;
        let k = parse_field(parts[1], "k")?;
        let depth = if parts.len() == 3 {
            parse_field(parts[2], "depth")?
        } else {
            1
        };
        if k == 0 || n <= k || n > 255 || depth == 0 || depth > 255 {
            return Err(format!(
                "rs geometry out of range in {text:?}: need 0 < k < n <= 255 and 0 < depth <= 255"
            ));
        }
        Ok(LinkCodeKind::ReedSolomon {
            data_symbols: k as u8,
            parity_symbols: (n - k) as u8,
            interleave_depth: depth as u8,
        })
    }

    /// Nominal code rate of this kind (payload bits per wire bit).
    pub fn rate(self) -> f64 {
        self.build().rate()
    }
}

impl std::fmt::Display for LinkCodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips_a_frame() {
        let payload: Vec<bool> = (0..64).map(|i| i % 3 != 1).collect();
        for kind in LinkCodeKind::all() {
            let code = kind.build();
            let wire = code.encode(&payload);
            assert_eq!(wire.len(), code.encoded_len(payload.len()), "{kind}");
            let out = code.decode(&wire);
            assert_eq!(&out.payload[..payload.len()], payload.as_slice(), "{kind}");
            assert_eq!(out.residual_errors, 0, "{kind}");
            assert_eq!(code.kind(), kind);
        }
    }

    #[test]
    fn rates_are_sane() {
        assert_eq!(LinkCodeKind::None.rate(), 1.0);
        let crc = LinkCodeKind::Crc8.rate();
        assert!(crc > 0.85 && crc < 1.0);
        let hamming = LinkCodeKind::Hamming74.rate();
        assert!((hamming - 4.0 / 7.0).abs() < 1e-12);
        let rs = LinkCodeKind::rs_default().rate();
        assert!((rs - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn labels_and_parse_are_inverse() {
        for kind in LinkCodeKind::all() {
            let label = kind.label();
            assert_eq!(LinkCodeKind::parse(&label), Ok(kind), "{label}");
        }
        assert_eq!(
            LinkCodeKind::parse("rs(12,8,4)"),
            Ok(LinkCodeKind::rs_default())
        );
        assert_eq!(
            LinkCodeKind::parse("RS(16, 12)"),
            Ok(LinkCodeKind::ReedSolomon {
                data_symbols: 12,
                parity_symbols: 4,
                interleave_depth: 1,
            })
        );
        assert!(LinkCodeKind::parse("turbo").is_err());
        assert!(LinkCodeKind::parse("rs(8,12)").is_err());
        assert!(LinkCodeKind::parse("rs(300,8)").is_err());
    }
}
