//! Block interleaver: spreads burst errors across Reed–Solomon codewords.
//!
//! Cache-eviction noise is bursty — a co-running process that lands on the
//! channel's LLC sets corrupts a *run* of symbols, not isolated bits. A
//! Reed–Solomon codeword tolerates at most `(n - k) / 2` bad symbols, so a
//! single burst can overwhelm one codeword while its neighbours are clean.
//! Interleaving transmits the stream column-by-column out of a `depth`-row
//! matrix: a wire burst of `L` contiguous elements touches each row at most
//! `ceil(L / depth)` times, dividing the burst across `depth` independent
//! rows.
//!
//! The functions are generic over the element: the Reed–Solomon codec
//! interleaves whole *symbols* with one codeword per row (interleaving bits
//! within a single codeword would *spread* a short burst over many symbols
//! and make it harder to correct, not easier), while tests and other
//! callers can interleave raw bits.
//!
//! The permutation is defined for any length (the last matrix row may be
//! short), and [`deinterleave`] is its exact inverse.

/// The transmit-order permutation: index `i` of the input stream is sent at
/// position `perm[i]` of the wire stream.
fn permutation(len: usize, depth: usize) -> Vec<usize> {
    let depth = depth.clamp(1, len.max(1));
    let cols = len.div_ceil(depth);
    let mut perm = Vec::with_capacity(len);
    let mut wire_pos = 0usize;
    let mut wire_of_input = vec![0usize; len];
    for col in 0..cols {
        for row in 0..depth {
            let input = row * cols + col;
            if input < len {
                wire_of_input[input] = wire_pos;
                wire_pos += 1;
            }
        }
    }
    perm.extend_from_slice(&wire_of_input);
    perm
}

/// Reorders `data` for transmission: row-major write, column-major read
/// over a `depth`-row block. `depth <= 1` (or a stream shorter than the
/// depth) is the identity.
pub fn interleave<T: Copy + Default>(data: &[T], depth: usize) -> Vec<T> {
    if depth <= 1 || data.len() <= depth {
        return data.to_vec();
    }
    let perm = permutation(data.len(), depth);
    let mut out = vec![T::default(); data.len()];
    for (input, &wire) in perm.iter().enumerate() {
        out[wire] = data[input];
    }
    out
}

/// Exact inverse of [`interleave`] with the same `depth`.
pub fn deinterleave<T: Copy + Default>(data: &[T], depth: usize) -> Vec<T> {
    if depth <= 1 || data.len() <= depth {
        return data.to_vec();
    }
    let perm = permutation(data.len(), depth);
    let mut out = vec![T::default(); data.len()];
    for (input, &wire) in perm.iter().enumerate() {
        out[input] = data[wire];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize) -> Vec<bool> {
        (0..len).map(|i| (i * 7 + 3) % 5 < 2).collect()
    }

    #[test]
    fn roundtrip_for_awkward_lengths() {
        for len in [0usize, 1, 2, 3, 7, 8, 12, 13, 64, 96, 97] {
            for depth in [1usize, 2, 3, 4, 8] {
                let data = pattern(len);
                let wire = interleave(&data, depth);
                assert_eq!(wire.len(), len);
                assert_eq!(deinterleave(&wire, depth), data, "len={len} depth={depth}");
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        for len in [5usize, 12, 64, 97] {
            for depth in [2usize, 3, 4] {
                let mut perm = permutation(len, depth);
                perm.sort_unstable();
                let expected: Vec<usize> = (0..len).collect();
                assert_eq!(perm, expected, "len={len} depth={depth}");
            }
        }
    }

    #[test]
    fn contiguous_wire_burst_is_spread_across_rows() {
        // A 4-bit wire burst through a depth-4 interleaver must corrupt at
        // most one bit per row of the deinterleaved stream.
        let len = 64;
        let depth = 4;
        let cols = len / depth;
        let clean = vec![false; len];
        let mut wire = interleave(&clean, depth);
        for bit in wire.iter_mut().skip(10).take(depth) {
            *bit = true;
        }
        let dirty = deinterleave(&wire, depth);
        for row in 0..depth {
            let hits = dirty[row * cols..(row + 1) * cols]
                .iter()
                .filter(|&&b| b)
                .count();
            assert!(
                hits <= 1,
                "row {row} took {hits} hits from a depth-sized burst"
            );
        }
    }

    #[test]
    fn depth_one_is_identity() {
        let data = pattern(33);
        assert_eq!(interleave(&data, 1), data);
        assert_eq!(interleave(&data, 0), data);
    }
}
