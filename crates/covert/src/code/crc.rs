//! CRC-8 detect-only link code.
//!
//! Appends an 8-bit cyclic redundancy checksum (polynomial `x^8 + x^2 + x +
//! 1`, the CRC-8/ATM generator) to every frame payload. The code corrects
//! nothing — its value is turning silent bit errors into *detected* frame
//! failures, so the transceiver's retransmission machinery (which otherwise
//! only fires on preamble corruption) can recover payload-region errors too.

use super::{DecodeOutcome, LinkCode, LinkCodeKind};

/// CRC generator polynomial, low 8 bits (`x^8` implicit).
const POLY: u8 = 0x07;

/// Number of checksum bits appended per frame.
pub const CRC_BITS: usize = 8;

/// Bitwise CRC-8 over a bit stream (MSB-first shift register).
pub fn crc8(bits: &[bool]) -> u8 {
    let mut crc = 0u8;
    for &bit in bits {
        let fed = (crc >> 7) ^ u8::from(bit);
        crc <<= 1;
        if fed != 0 {
            crc ^= POLY;
        }
    }
    crc
}

/// The CRC-8 detect-only code.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crc8Code;

impl LinkCode for Crc8Code {
    fn kind(&self) -> LinkCodeKind {
        LinkCodeKind::Crc8
    }

    fn encode(&self, payload: &[bool]) -> Vec<bool> {
        let mut wire = payload.to_vec();
        let crc = crc8(payload);
        wire.extend((0..CRC_BITS).rev().map(|i| (crc >> i) & 1 == 1));
        wire
    }

    fn decode(&self, wire: &[bool]) -> DecodeOutcome {
        if wire.len() < CRC_BITS {
            // A frame too short to even hold the checksum is unconditionally
            // a detected failure.
            return DecodeOutcome {
                payload: wire.to_vec(),
                corrected_bits: 0,
                residual_errors: CRC_BITS,
            };
        }
        let (payload, crc_bits) = wire.split_at(wire.len() - CRC_BITS);
        let received_crc = crc_bits
            .iter()
            .fold(0u8, |acc, &b| (acc << 1) | u8::from(b));
        let expected = crc8(payload);
        let residual_errors = (received_crc ^ expected).count_ones() as usize;
        DecodeOutcome {
            payload: payload.to_vec(),
            corrected_bits: 0,
            residual_errors,
        }
    }

    fn encoded_len(&self, payload_bits: usize) -> usize {
        payload_bits + CRC_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip_has_no_residual() {
        let code = Crc8Code;
        for len in [0usize, 1, 4, 63, 64, 65] {
            let payload: Vec<bool> = (0..len).map(|i| i % 3 == 1).collect();
            let wire = code.encode(&payload);
            assert_eq!(wire.len(), code.encoded_len(len));
            let out = code.decode(&wire);
            assert_eq!(out.payload, payload);
            assert_eq!(out.residual_errors, 0);
            assert_eq!(out.corrected_bits, 0);
        }
    }

    #[test]
    fn any_single_flip_is_detected() {
        let code = Crc8Code;
        let payload: Vec<bool> = (0..64).map(|i| i % 5 < 2).collect();
        let wire = code.encode(&payload);
        for pos in 0..wire.len() {
            let mut bad = wire.clone();
            bad[pos] = !bad[pos];
            let out = code.decode(&bad);
            assert!(
                out.residual_errors > 0,
                "flip at {pos} slipped past the CRC"
            );
        }
    }

    #[test]
    fn short_bursts_are_detected() {
        // CRC-8 detects every burst no longer than the checksum width.
        let code = Crc8Code;
        let payload: Vec<bool> = (0..48).map(|i| i % 7 == 0).collect();
        let wire = code.encode(&payload);
        for start in 0..wire.len() - CRC_BITS {
            let mut bad = wire.clone();
            for bit in bad.iter_mut().skip(start).take(CRC_BITS) {
                *bit = !*bit;
            }
            assert!(code.decode(&bad).residual_errors > 0, "burst at {start}");
        }
    }

    #[test]
    fn crc_matches_reference_vector() {
        // CRC-8/ATM ("123456789") == 0xF4.
        let bits = crate::protocol::bytes_to_bits(b"123456789");
        assert_eq!(crc8(&bits), 0xF4);
    }
}
