//! Reed–Solomon link code over GF(2^8) with block interleaving.
//!
//! Codewords carry `data_symbols` 8-bit payload symbols plus
//! `parity_symbols` check symbols from the generator polynomial
//! `g(x) = ∏ (x - α^i)`; the syndrome decoder (Berlekamp–Massey locator,
//! Chien search, magnitudes from the syndrome linear system) corrects up to
//! `⌊parity/2⌋` corrupted *symbols* per codeword — which makes the code
//! burst-tolerant by construction. On top of that, the interleaver stage
//! transmits groups of up to `interleave_depth` codewords symbol-by-symbol
//! in round-robin order, so a wire burst of `d` consecutive symbols lands
//! one symbol deep in `d` different codewords instead of `d` symbols deep
//! in one. Interleaving is at *symbol* granularity across *codewords*:
//! when a frame holds a single codeword there is nothing to spread and the
//! stage is the identity (bit-level interleaving within one codeword would
//! smear a short burst over many symbols and make it less correctable, not
//! more).
//!
//! Frames shorter than a full codeword are zero-padded (a shortened code);
//! the transceiver truncates the decoded payload back to the frame length.

use super::gf256;
use super::interleave::{deinterleave, interleave};
use super::{DecodeOutcome, LinkCode, LinkCodeKind};

/// Bits per Reed–Solomon symbol.
pub const SYMBOL_BITS: usize = 8;

/// A configured Reed–Solomon codec.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_symbols: usize,
    parity_symbols: usize,
    interleave_depth: usize,
    /// Generator polynomial, highest degree first, leading coefficient 1.
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Builds a codec with `data_symbols` payload and `parity_symbols` check
    /// symbols per codeword, interleaved `interleave_depth` codeword-streams
    /// deep.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is not a valid GF(256) code:
    /// `data_symbols == 0`, `parity_symbols == 0`, or a codeword longer than
    /// 255 symbols.
    pub fn new(data_symbols: usize, parity_symbols: usize, interleave_depth: usize) -> Self {
        assert!(data_symbols > 0, "need at least one data symbol");
        assert!(parity_symbols > 0, "need at least one parity symbol");
        assert!(
            data_symbols + parity_symbols <= gf256::GROUP_ORDER,
            "codeword cannot exceed 255 symbols in GF(256)"
        );
        let mut generator = vec![1u8];
        for i in 0..parity_symbols {
            generator = gf256::poly_mul(&generator, &[1, gf256::exp(i)]);
        }
        ReedSolomon {
            data_symbols,
            parity_symbols,
            interleave_depth: interleave_depth.max(1),
            generator,
        }
    }

    /// Codeword length in symbols.
    pub fn codeword_symbols(&self) -> usize {
        self.data_symbols + self.parity_symbols
    }

    /// Maximum corrupted symbols per codeword the decoder repairs.
    pub fn correctable_symbols(&self) -> usize {
        self.parity_symbols / 2
    }

    /// Encodes one block of exactly `data_symbols` symbols, returning the
    /// full systematic codeword (data followed by parity).
    fn encode_codeword(&self, data: &[u8]) -> Vec<u8> {
        debug_assert_eq!(data.len(), self.data_symbols);
        // Polynomial long division of data * x^parity by the generator; the
        // remainder is the parity block.
        let mut rem = vec![0u8; self.parity_symbols];
        for &d in data {
            let factor = gf256::add(d, rem[0]);
            rem.rotate_left(1);
            *rem.last_mut().expect("parity_symbols > 0") = 0;
            if factor != 0 {
                for (r, &g) in rem.iter_mut().zip(&self.generator[1..]) {
                    *r = gf256::add(*r, gf256::mul(factor, g));
                }
            }
        }
        let mut codeword = data.to_vec();
        codeword.extend_from_slice(&rem);
        codeword
    }

    /// Symbol-level interleave: groups of up to `interleave_depth`
    /// codewords are transmitted column-major (one symbol from each
    /// codeword in turn), so contiguous wire damage divides across
    /// codewords. A group of one codeword is passed through unchanged.
    fn interleave_symbols(&self, symbols: &[u8]) -> Vec<u8> {
        let group = self.interleave_depth * self.codeword_symbols();
        symbols
            .chunks(group)
            .flat_map(|block| interleave(block, block.len() / self.codeword_symbols()))
            .collect()
    }

    /// Exact inverse of [`ReedSolomon::interleave_symbols`].
    fn deinterleave_symbols(&self, symbols: &[u8]) -> Vec<u8> {
        let group = self.interleave_depth * self.codeword_symbols();
        symbols
            .chunks(group)
            .flat_map(|block| {
                // A truncated trailing block (not a whole number of
                // codewords) was never interleaved in a matching way; pass
                // it through and let the codeword loop flag it.
                let rows = block.len() / self.codeword_symbols();
                if rows * self.codeword_symbols() == block.len() {
                    deinterleave(block, rows)
                } else {
                    block.to_vec()
                }
            })
            .collect()
    }

    /// Corrects one codeword in place. Returns `Ok(corrected_bit_flips)` or
    /// `Err(())` when the error pattern exceeds the code's capability.
    fn decode_codeword(&self, codeword: &mut [u8]) -> Result<usize, ()> {
        let n = codeword.len();
        let syndromes: Vec<u8> = (0..self.parity_symbols)
            .map(|j| gf256::poly_eval(codeword, gf256::exp(j)))
            .collect();
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        let locator = berlekamp_massey(&syndromes);
        let errors = locator.len() - 1;
        if errors == 0 || errors > self.correctable_symbols() {
            return Err(());
        }
        // Chien search: position i holds the coefficient of x^(n-1-i), so its
        // locator is α^(n-1-i); a root of Λ at its inverse marks an error.
        let positions: Vec<usize> = (0..n)
            .filter(|&i| {
                let x_inv = gf256::inv(gf256::exp(n - 1 - i));
                poly_eval_low_first(&locator, x_inv) == 0
            })
            .collect();
        if positions.len() != errors {
            return Err(());
        }
        // Magnitudes from the syndrome equations S_j = Σ e_i · X_i^j,
        // j = 0..errors — a Vandermonde system in the distinct locators X_i,
        // solved by Gaussian elimination over the field.
        let locators: Vec<u8> = positions.iter().map(|&i| gf256::exp(n - 1 - i)).collect();
        let magnitudes = solve_magnitudes(&locators, &syndromes[..errors])?;
        let mut flipped_bits = 0usize;
        for (&pos, &mag) in positions.iter().zip(&magnitudes) {
            if mag == 0 {
                return Err(());
            }
            flipped_bits += mag.count_ones() as usize;
            codeword[pos] = gf256::add(codeword[pos], mag);
        }
        // Re-check every syndrome: a pattern beyond t errors can masquerade
        // as a correctable one; the recheck downgrades it to a detected
        // failure instead of silently delivering a miscorrection.
        let clean =
            (0..self.parity_symbols).all(|j| gf256::poly_eval(codeword, gf256::exp(j)) == 0);
        if clean {
            Ok(flipped_bits)
        } else {
            Err(())
        }
    }
}

/// Evaluates a lowest-degree-first polynomial at `x`.
fn poly_eval_low_first(coeffs: &[u8], x: u8) -> u8 {
    coeffs
        .iter()
        .rev()
        .fold(0u8, |acc, &c| gf256::add(gf256::mul(acc, x), c))
}

/// Berlekamp–Massey over GF(256): returns the error-locator polynomial
/// (lowest degree first, Λ(0) = 1) for the given syndrome sequence.
fn berlekamp_massey(syndromes: &[u8]) -> Vec<u8> {
    let mut current = vec![1u8]; // Λ(x)
    let mut previous = vec![1u8]; // B(x)
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = 1u8;
    for n in 0..syndromes.len() {
        let mut delta = syndromes[n];
        for i in 1..=l.min(current.len() - 1) {
            delta = gf256::add(delta, gf256::mul(current[i], syndromes[n - i]));
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= n {
            let temp = current.clone();
            let coef = gf256::div(delta, b);
            subtract_shifted(&mut current, &previous, coef, m);
            l = n + 1 - l;
            previous = temp;
            b = delta;
            m = 1;
        } else {
            let coef = gf256::div(delta, b);
            subtract_shifted(&mut current, &previous, coef, m);
            m += 1;
        }
    }
    current.truncate(l + 1);
    current
}

/// `current -= coef · x^shift · previous` (lowest-degree-first polynomials).
fn subtract_shifted(current: &mut Vec<u8>, previous: &[u8], coef: u8, shift: usize) {
    if current.len() < previous.len() + shift {
        current.resize(previous.len() + shift, 0);
    }
    for (i, &p) in previous.iter().enumerate() {
        current[i + shift] = gf256::add(current[i + shift], gf256::mul(coef, p));
    }
}

/// Solves the Vandermonde system `Σ_i e_i · X_i^j = S_j` for the error
/// magnitudes `e_i` by Gaussian elimination over GF(256).
fn solve_magnitudes(locators: &[u8], syndromes: &[u8]) -> Result<Vec<u8>, ()> {
    let k = locators.len();
    debug_assert_eq!(syndromes.len(), k);
    let mut matrix: Vec<Vec<u8>> = (0..k)
        .map(|j| {
            let mut row: Vec<u8> = locators
                .iter()
                .map(|&x| (0..j).fold(1u8, |acc, _| gf256::mul(acc, x)))
                .collect();
            row.push(syndromes[j]);
            row
        })
        .collect();
    for col in 0..k {
        let pivot = (col..k).find(|&r| matrix[r][col] != 0).ok_or(())?;
        matrix.swap(col, pivot);
        let inv = gf256::inv(matrix[col][col]);
        for cell in matrix[col][col..].iter_mut() {
            *cell = gf256::mul(*cell, inv);
        }
        for r in 0..k {
            if r != col && matrix[r][col] != 0 {
                let factor = matrix[r][col];
                let pivot_row = matrix[col].clone();
                for (cell, &p) in matrix[r][col..].iter_mut().zip(&pivot_row[col..]) {
                    *cell = gf256::add(*cell, gf256::mul(factor, p));
                }
            }
        }
    }
    Ok((0..k).map(|r| matrix[r][k]).collect())
}

/// Packs a bit stream into 8-bit symbols, MSB first, zero-padding the tail.
fn bits_to_symbols(bits: &[bool]) -> Vec<u8> {
    bits.chunks(SYMBOL_BITS)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (i, &b)| acc | (u8::from(b) << (7 - i)))
        })
        .collect()
}

/// Unpacks symbols back into bits, MSB first.
fn symbols_to_bits(symbols: &[u8]) -> Vec<bool> {
    symbols
        .iter()
        .flat_map(|&s| (0..SYMBOL_BITS).map(move |i| (s >> (7 - i)) & 1 == 1))
        .collect()
}

impl LinkCode for ReedSolomon {
    fn kind(&self) -> LinkCodeKind {
        LinkCodeKind::ReedSolomon {
            data_symbols: self.data_symbols as u8,
            parity_symbols: self.parity_symbols as u8,
            interleave_depth: self.interleave_depth as u8,
        }
    }

    fn encode(&self, payload: &[bool]) -> Vec<bool> {
        let mut symbols = bits_to_symbols(payload);
        let blocks = symbols.len().div_ceil(self.data_symbols).max(1);
        symbols.resize(blocks * self.data_symbols, 0);
        let mut wire_symbols = Vec::with_capacity(blocks * self.codeword_symbols());
        for block in symbols.chunks(self.data_symbols) {
            wire_symbols.extend(self.encode_codeword(block));
        }
        symbols_to_bits(&self.interleave_symbols(&wire_symbols))
    }

    fn decode(&self, wire: &[bool]) -> DecodeOutcome {
        let symbols = self.deinterleave_symbols(&bits_to_symbols(wire));
        let n = self.codeword_symbols();
        let mut payload_symbols = Vec::with_capacity(symbols.len() / n * self.data_symbols);
        let mut corrected_bits = 0usize;
        let mut residual_errors = 0usize;
        for chunk in symbols.chunks(n) {
            if chunk.len() < n {
                // A truncated trailing codeword cannot be checked.
                residual_errors += 1;
                payload_symbols.extend_from_slice(&chunk[..chunk.len().min(self.data_symbols)]);
                continue;
            }
            let mut codeword = chunk.to_vec();
            match self.decode_codeword(&mut codeword) {
                Ok(flips) => corrected_bits += flips,
                Err(()) => residual_errors += 1,
            }
            payload_symbols.extend_from_slice(&codeword[..self.data_symbols]);
        }
        DecodeOutcome {
            payload: symbols_to_bits(&payload_symbols),
            corrected_bits,
            residual_errors,
        }
    }

    fn encoded_len(&self, payload_bits: usize) -> usize {
        let symbols = payload_bits.div_ceil(SYMBOL_BITS);
        let blocks = symbols.div_ceil(self.data_symbols).max(1);
        blocks * self.codeword_symbols() * SYMBOL_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(bits: usize) -> Vec<bool> {
        (0..bits).map(|i| (i * 11 + 2) % 7 < 3).collect()
    }

    #[test]
    fn clean_roundtrip_across_lengths() {
        for depth in [1usize, 3, 4] {
            let code = ReedSolomon::new(8, 4, depth);
            for bits in [1usize, 8, 63, 64, 65, 128, 200, 512] {
                let data = payload(bits);
                let wire = code.encode(&data);
                assert_eq!(wire.len(), code.encoded_len(bits), "bits={bits}");
                let out = code.decode(&wire);
                assert_eq!(
                    &out.payload[..bits],
                    data.as_slice(),
                    "bits={bits} depth={depth}"
                );
                assert_eq!(out.corrected_bits, 0);
                assert_eq!(out.residual_errors, 0);
            }
        }
    }

    #[test]
    fn single_codeword_interleaving_is_harmless() {
        // One 64-bit frame = one RS(12,8) codeword: there are no sibling
        // codewords to spread across, so any short burst must stay as
        // correctable as it is without interleaving.
        let code = ReedSolomon::new(8, 4, 4);
        let data = payload(64);
        let clean = code.encode(&data);
        for start in 0..clean.len() - 8 {
            let mut wire = clean.clone();
            for bit in wire.iter_mut().skip(start).take(8) {
                *bit = !*bit;
            }
            let out = code.decode(&wire);
            assert_eq!(
                &out.payload[..64],
                data.as_slice(),
                "8-bit burst at {start} must stay within t = 2 symbols"
            );
            assert_eq!(out.residual_errors, 0, "burst at {start}");
        }
    }

    #[test]
    fn corrects_up_to_t_symbol_errors() {
        let code = ReedSolomon::new(8, 4, 1);
        let data = payload(64);
        let clean = code.encode(&data);
        // Corrupt two whole symbols (t = 2 for 4 parity symbols).
        for (a, b) in [(0usize, 5usize), (1, 11), (3, 4), (2, 10)] {
            let mut wire = clean.clone();
            for bit in wire.iter_mut().skip(a * SYMBOL_BITS).take(SYMBOL_BITS) {
                *bit = !*bit;
            }
            for bit in wire.iter_mut().skip(b * SYMBOL_BITS).take(SYMBOL_BITS) {
                *bit = !*bit;
            }
            let out = code.decode(&wire);
            assert_eq!(&out.payload[..64], data.as_slice(), "symbols {a},{b}");
            assert_eq!(out.residual_errors, 0);
            assert_eq!(out.corrected_bits, 2 * SYMBOL_BITS);
        }
    }

    #[test]
    fn reports_failure_beyond_t_errors() {
        let code = ReedSolomon::new(8, 4, 1);
        let data = payload(64);
        let mut wire = code.encode(&data);
        // Corrupt three symbols — one past the correction bound.
        for s in [0usize, 4, 9] {
            for bit in wire.iter_mut().skip(s * SYMBOL_BITS).take(SYMBOL_BITS) {
                *bit = !*bit;
            }
        }
        let out = code.decode(&wire);
        assert!(
            out.residual_errors > 0,
            "three symbol errors must be detected as uncorrectable"
        );
    }

    #[test]
    fn interleaving_turns_a_burst_into_correctable_errors() {
        // Depth-4 symbol interleaving over four codewords: a 32-bit wire
        // burst covers five consecutive wire symbols, which land round-robin
        // — at most 2 corrupted symbols per codeword, exactly the t = 2 the
        // 4 parity symbols repair.
        let code = ReedSolomon::new(8, 4, 4);
        let data = payload(4 * 64);
        let clean = code.encode(&data);
        let mut wire = clean.clone();
        for bit in wire.iter_mut().skip(100).take(32) {
            *bit = !*bit;
        }
        let out = code.decode(&wire);
        assert_eq!(&out.payload[..data.len()], data.as_slice());
        assert_eq!(out.residual_errors, 0);
        assert!(out.corrected_bits > 0);

        // The same burst without interleaving spans five symbols of a single
        // codeword and overwhelms it.
        let flat = ReedSolomon::new(8, 4, 1);
        let mut flat_wire = flat.encode(&data);
        for bit in flat_wire.iter_mut().skip(100).take(32) {
            *bit = !*bit;
        }
        assert!(flat.decode(&flat_wire).residual_errors > 0);
    }

    #[test]
    fn generator_polynomial_has_the_expected_roots() {
        let code = ReedSolomon::new(11, 4, 1);
        for i in 0..4 {
            assert_eq!(
                gf256::poly_eval(&code.generator, gf256::exp(i)),
                0,
                "alpha^{i} must be a root of g(x)"
            );
        }
        assert_eq!(code.generator.len(), 5);
        assert_eq!(code.generator[0], 1);
    }

    #[test]
    #[should_panic(expected = "255 symbols")]
    fn oversized_codeword_is_rejected() {
        let _ = ReedSolomon::new(250, 10, 1);
    }
}
