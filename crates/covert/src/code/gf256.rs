//! Arithmetic over GF(2^8), the symbol field of the Reed–Solomon link code.
//!
//! The field is built from the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11D) with generator `α = 2` — the
//! conventional choice of storage and transmission codecs. Exp/log tables are
//! computed at compile time by a `const fn`, so field multiplications are two
//! table lookups and an add at run time, with no lazy initialization.

/// The primitive polynomial defining the field (degree-8 terms included).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Number of non-zero field elements (the multiplicative group order).
pub const GROUP_ORDER: usize = 255;

/// Exp table doubled in length so `exp[log a + log b]` needs no modulo.
const fn build_exp() -> [u8; 2 * GROUP_ORDER] {
    let mut exp = [0u8; 2 * GROUP_ORDER];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        exp[i + GROUP_ORDER] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    exp
}

const fn build_log() -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    log
}

static EXP: [u8; 2 * GROUP_ORDER] = build_exp();
static LOG: [u8; 256] = build_log();

/// Addition (and subtraction — the field has characteristic 2).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication via the log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// `α^power` for any non-negative power.
#[inline]
pub fn exp(power: usize) -> u8 {
    EXP[power % GROUP_ORDER]
}

/// Discrete logarithm of a non-zero element.
///
/// # Panics
///
/// Panics on `a == 0`, which has no logarithm.
#[inline]
pub fn log(a: u8) -> usize {
    assert!(a != 0, "log(0) is undefined in GF(256)");
    LOG[a as usize] as usize
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on `a == 0`, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Division `a / b`.
///
/// # Panics
///
/// Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Evaluates the polynomial `coeffs` (highest degree first) at `x` by
/// Horner's rule.
pub fn poly_eval(coeffs: &[u8], x: u8) -> u8 {
    coeffs.iter().fold(0u8, |acc, &c| add(mul(acc, x), c))
}

/// Multiplies two polynomials (highest degree first).
pub fn poly_mul(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &ca) in a.iter().enumerate() {
        for (j, &cb) in b.iter().enumerate() {
            out[i + j] = add(out[i + j], mul(ca, cb));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_group() {
        let mut seen = [false; 256];
        for p in 0..GROUP_ORDER {
            seen[exp(p) as usize] = true;
        }
        assert!(!seen[0], "0 is not a power of alpha");
        assert!(
            seen.iter().skip(1).all(|&s| s),
            "alpha must generate every non-zero element"
        );
    }

    #[test]
    fn mul_and_inv_are_consistent() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 == 1 for a={a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(div(mul(a, 7), 7), a);
        }
    }

    #[test]
    fn log_exp_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(exp(log(a)), a);
        }
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        // Spot-check the field axioms over a pseudo-random walk; exhaustive
        // 256^3 would be slow in debug builds.
        let mut x: u8 = 1;
        for i in 0..4096u32 {
            let a = x;
            let b = (i * 37 + 11) as u8;
            let c = (i * 101 + 3) as u8;
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
            x = x.wrapping_mul(29).wrapping_add(1);
        }
    }

    #[test]
    fn poly_helpers_match_hand_calculations() {
        // (x + 1)(x + 2) = x^2 + 3x + 2 over GF(256).
        let prod = poly_mul(&[1, 1], &[1, 2]);
        assert_eq!(prod, vec![1, 3, 2]);
        // Evaluate x^2 + 3x + 2 at x = 2: 4 ^ 6 ^ 2 = 0.
        assert_eq!(poly_eval(&prod, 2), 0);
        assert_eq!(poly_eval(&prod, 1), 0);
        assert_eq!(poly_eval(&[1], 77), 1);
    }
}
