//! # covert — cross-component covert channels on an integrated CPU-GPU SoC
//!
//! This crate is the core contribution of the *Leaky Buddies* reproduction:
//! everything the paper builds on top of the hardware — the reverse
//! engineering of the asymmetric memory hierarchy, the custom GPU timer
//! characterization, the LLC Prime+Probe covert channel (in both directions
//! and with the three L3-eviction strategies of Figure 7), the ring-bus
//! contention covert channel with its iteration-factor calibration, and the
//! bandwidth/error evaluation machinery behind every figure of Section V.
//!
//! The channels run against the [`soc_sim`] simulator instead of real Kaby
//! Lake silicon; see `DESIGN.md` at the repository root for the substitution
//! argument and the fidelity notes.
//!
//! # Quick start
//!
//! ```
//! use covert::prelude::*;
//!
//! // The paper's best LLC-channel configuration (GPU trojan -> CPU spy,
//! // precise L3 eviction, 2 redundant sets per role).
//! let mut channel = LlcChannel::new(LlcChannelConfig::paper_default())?;
//! let secret = bytes_to_bits(b"hi");
//! let report = channel.transmit(&secret);
//! assert_eq!(report.bit_count(), 16);
//! assert!(report.bandwidth_kbps() > 1.0);
//! # Ok::<(), covert::error::ChannelError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapt;
pub mod channel;
pub mod code;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod reverse;
pub mod timer_char;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::adapt::{
        AdaptiveConfig, AdaptiveTransceiver, AimdPolicy, BanditPolicy, DuplexConfig, DuplexReport,
        DuplexScheduler, FixedPolicy, LinkAction, LinkController, LinkObservation, LinkSetting,
        PolicyKind, PolicyParams, SlotAllocation, SlotDirection, SlotRecord, ThresholdPolicy,
    };
    pub use crate::channel::contention::{
        CalibrationResult, ContentionChannel, ContentionChannelConfig,
    };
    pub use crate::channel::engine::{
        Calibration, ChannelDiagnostics, CovertChannel, DesyncModel, FrameResult, LinkStats,
        Transceiver, TransceiverConfig,
    };
    pub use crate::channel::llc::{LlcChannel, LlcChannelConfig};
    pub use crate::code::{
        Crc8Code, DecodeOutcome, Hamming74, LinkCode, LinkCodeKind, NoCode, ReedSolomon,
    };
    pub use crate::error::ChannelError;
    pub use crate::metrics::{
        test_pattern, AdaptationSummary, AdaptationTrace, CodingSummary, RungEstimate, SampleStats,
        TransmissionReport, WindowRecord,
    };
    pub use crate::protocol::{
        bits_to_bytes, bytes_to_bits, deframe_bits, frame_bits, majority_vote, sync_errors,
        try_majority_vote, ClassifierConfig, Direction, ProbeObservation, SetRole, FRAME_PREAMBLE,
    };
    pub use crate::reverse::l3::{
        build_pollute_set, discover_l3_index_bits, l3_inclusiveness_test, precise_l3_eviction_set,
        L3EvictionStrategy,
    };
    pub use crate::reverse::llc_sets::{
        addresses_in_llc_set, evicts_victim, find_minimal_eviction_set, validate_set_from_gpu,
        CPU_MISS_THRESHOLD_CYCLES,
    };
    pub use crate::reverse::slice_hash::{
        ground_truth_bits, recover_slice_hash, SliceHashRecovery,
    };
    pub use crate::timer_char::{
        characterize_default, characterize_timer, GpuAccessClass, TimerCharacterization,
    };
}

pub use prelude::*;
