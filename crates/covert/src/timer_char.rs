//! Custom-timer characterization (Figure 4 of the paper).
//!
//! Before the LLC channel can run, the attacker must verify that the SLM
//! counter timer separates the three access-time populations the GPU can
//! observe — L3 hit, LLC hit, and system memory — and derive the decision
//! thresholds used by the probe classification. This module reproduces the
//! paper's characterization experiment: for a series of fresh cache lines it
//! measures each line from DRAM, then from the LLC (after a precise L3
//! eviction), then from the L3, all with the custom timer.

use crate::metrics::SampleStats;
use crate::reverse::l3::{precise_l3_eviction_set, L3_EVICTION_PASSES};
use gpu_exec::prelude::GpuKernel;
use soc_sim::prelude::{MemorySystem, PhysAddr};

/// Which population a single timer reading is believed to come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuAccessClass {
    /// Served by the GPU L3.
    L3Hit,
    /// Served by the shared LLC.
    LlcHit,
    /// Served by system memory.
    Memory,
}

/// Distributions of custom-timer readings per access class, plus the derived
/// thresholds.
#[derive(Debug, Clone)]
pub struct TimerCharacterization {
    /// Statistics of the L3-hit readings (ticks).
    pub l3: SampleStats,
    /// Statistics of the LLC-hit readings (ticks).
    pub llc: SampleStats,
    /// Statistics of the memory readings (ticks).
    pub memory: SampleStats,
    /// Raw samples `(l3, llc, memory)` per measured line, for plotting.
    pub samples: Vec<(u64, u64, u64)>,
}

impl TimerCharacterization {
    /// Threshold (in ticks) separating L3 hits from LLC hits: the midpoint of
    /// the two means.
    pub fn l3_llc_threshold(&self) -> u64 {
        ((self.l3.mean + self.llc.mean) / 2.0).round() as u64
    }

    /// Threshold (in ticks) separating LLC hits from memory accesses.
    pub fn llc_memory_threshold(&self) -> u64 {
        ((self.llc.mean + self.memory.mean) / 2.0).round() as u64
    }

    /// Returns `true` when the three populations are cleanly separated:
    /// each pair of neighbouring means differs by more than the sum of their
    /// standard deviations.
    pub fn is_separable(&self) -> bool {
        let l3_llc_gap = self.llc.mean - self.l3.mean;
        let llc_mem_gap = self.memory.mean - self.llc.mean;
        l3_llc_gap > (self.l3.std_dev + self.llc.std_dev)
            && llc_mem_gap > (self.llc.std_dev + self.memory.std_dev)
    }

    /// Classifies a single timer reading.
    pub fn classify(&self, ticks: u64) -> GpuAccessClass {
        if ticks <= self.l3_llc_threshold() {
            GpuAccessClass::L3Hit
        } else if ticks <= self.llc_memory_threshold() {
            GpuAccessClass::LlcHit
        } else {
            GpuAccessClass::Memory
        }
    }
}

/// Runs the characterization over `samples` distinct cache lines.
///
/// `target_base` is the start of a region of untouched lines (one per sample,
/// spaced 2 MiB apart so samples never collide in any cache); `pollute_base`
/// and `pollute_len` delimit the pool used to build the precise L3 eviction
/// sets that push a line from the L3 while keeping it in the LLC.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn characterize_timer<M: MemorySystem>(
    soc: &mut M,
    gpu: &mut GpuKernel,
    target_base: PhysAddr,
    pollute_base: PhysAddr,
    pollute_len: u64,
    samples: usize,
) -> TimerCharacterization {
    assert!(samples > 0, "need at least one characterization sample");
    let ways = soc.gpu_l3().ways();
    let mut raw = Vec::with_capacity(samples);
    for i in 0..samples {
        // A fresh line per sample, far from every other sample.
        let target = PhysAddr::new(target_base.value() + i as u64 * (2 << 20));

        // (1) Memory access: the line has never been touched.
        let (memory_ticks, _) = gpu.timed_load(soc, target);

        // (2) LLC access: evict the line from the L3 (but not the LLC) using
        // its precise L3 conflict set, then re-time it.
        let pollute = precise_l3_eviction_set(
            soc,
            target,
            pollute_base,
            pollute_len,
            ways * L3_EVICTION_PASSES,
        )
        .expect("pollute pool large enough for characterization");
        for &p in &pollute {
            gpu.load(soc, p);
        }
        let (llc_ticks, _) = gpu.timed_load(soc, target);

        // (3) L3 access: the line is now resident in both L3 and LLC.
        let (l3_ticks, _) = gpu.timed_load(soc, target);

        raw.push((l3_ticks, llc_ticks, memory_ticks));
    }

    let l3: Vec<f64> = raw.iter().map(|s| s.0 as f64).collect();
    let llc: Vec<f64> = raw.iter().map(|s| s.1 as f64).collect();
    let memory: Vec<f64> = raw.iter().map(|s| s.2 as f64).collect();
    TimerCharacterization {
        l3: SampleStats::from_samples(&l3),
        llc: SampleStats::from_samples(&llc),
        memory: SampleStats::from_samples(&memory),
        samples: raw,
    }
}

/// Convenience wrapper used by examples and benches: characterizes the timer
/// on a freshly launched attack kernel against the given SoC, using fixed
/// well-separated physical regions.
pub fn characterize_default<M: MemorySystem>(soc: &mut M, samples: usize) -> TimerCharacterization {
    let mut gpu = GpuKernel::launch_attack_kernel();
    characterize_timer(
        soc,
        &mut gpu,
        PhysAddr::new(0x4000_0000),
        PhysAddr::new(0x8000_0000),
        256 * 1024 * 1024,
        samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{NoiseConfig, Soc, SocConfig};

    #[test]
    fn noiseless_characterization_is_cleanly_separable() {
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let ch = characterize_default(&mut soc, 20);
        assert!(
            ch.is_separable(),
            "l3 {:?} llc {:?} mem {:?}",
            ch.l3,
            ch.llc,
            ch.memory
        );
        assert!(ch.l3.mean < ch.llc.mean && ch.llc.mean < ch.memory.mean);
        assert_eq!(ch.samples.len(), 20);
    }

    #[test]
    fn quiet_system_noise_still_separable() {
        // The paper's Figure 4 shows clear separation on the real (noisy)
        // machine; the quiet-system noise model must preserve that.
        let mut soc = Soc::new(SocConfig::kaby_lake_i7_7700k());
        let ch = characterize_default(&mut soc, 30);
        assert!(ch.is_separable());
    }

    #[test]
    fn thresholds_are_ordered_and_classify_correctly() {
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let ch = characterize_default(&mut soc, 10);
        assert!(ch.l3_llc_threshold() < ch.llc_memory_threshold());
        assert_eq!(ch.classify(ch.l3.mean as u64), GpuAccessClass::L3Hit);
        assert_eq!(ch.classify(ch.llc.mean as u64), GpuAccessClass::LlcHit);
        assert_eq!(ch.classify(ch.memory.mean as u64), GpuAccessClass::Memory);
    }

    #[test]
    fn heavy_timer_noise_can_break_separability() {
        // With an absurdly wobbly counter the characterization must report
        // that the channel cannot be built (ChannelError::TimerNotSeparable
        // is raised by the channel setup in that case).
        let cfg = SocConfig::kaby_lake_i7_7700k().with_noise(NoiseConfig {
            latency_jitter_ps: 60_000.0,
            spurious_eviction_prob: 0.0,
            timer_rate_jitter: 0.6,
        });
        let mut soc = Soc::new(cfg);
        let ch = characterize_default(&mut soc, 30);
        assert!(!ch.is_separable());
    }

    #[test]
    #[should_panic(expected = "at least one characterization sample")]
    fn zero_samples_panics() {
        let mut soc = Soc::new(SocConfig::kaby_lake_noiseless());
        let _ = characterize_default(&mut soc, 0);
    }
}
