//! Covert-channel protocol building blocks.
//!
//! Both channels move one bit per protocol round. The LLC channel wraps each
//! bit in the paper's three-phase exchange (Figure 3 / Figure 5):
//!
//! 1. **Ready-to-send** — the sender primes set group `S_A`, the receiver
//!    probes it;
//! 2. **Ready-to-receive** — the receiver primes set group `S_B`, the sender
//!    probes it;
//! 3. **Data** — the sender primes set group `S_C` to transmit a `1` (or
//!    stays idle for a `0`), the receiver probes it.
//!
//! Each "set group" consists of `sets_per_role` redundant LLC sets (2 in the
//! paper's final configuration); the receiver combines the per-set
//! observations by majority vote, trading a little bandwidth for a large
//! error-rate reduction (Figure 8).
//!
//! On top of the per-bit machinery this module provides the engine-level
//! framing: payloads are cut into frames, each prefixed with the
//! [`FRAME_PREAMBLE`] sync marker so the receiving side of the
//! [`crate::channel::engine::Transceiver`] can detect a desynchronized frame
//! and request a retransmission.

use crate::error::ChannelError;

/// The three roles an LLC set group plays in one bit exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetRole {
    /// `S_A`: sender → receiver "ready to send" handshake.
    ReadyToSend,
    /// `S_B`: receiver → sender "ready to receive" handshake.
    ReadyToReceive,
    /// `S_C`: the data set.
    Data,
}

impl SetRole {
    /// All roles in protocol order.
    pub const ALL: [SetRole; 3] = [SetRole::ReadyToSend, SetRole::ReadyToReceive, SetRole::Data];
}

/// Which way the LLC channel transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Trojan on the GPU, spy on the CPU.
    GpuToCpu,
    /// Trojan on the CPU, spy on the GPU.
    CpuToGpu,
}

impl Direction {
    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            Direction::GpuToCpu => "GPU-to-CPU",
            Direction::CpuToGpu => "CPU-to-GPU",
        }
    }
}

/// Observation of a single probed LLC set: how many of its ways appeared to
/// miss (slow accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeObservation {
    /// Number of slow (miss-classified) ways.
    pub slow_ways: usize,
    /// Total ways probed.
    pub total_ways: usize,
}

impl ProbeObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics if `slow_ways > total_ways` or `total_ways == 0`.
    pub fn new(slow_ways: usize, total_ways: usize) -> Self {
        assert!(total_ways > 0, "an observation needs at least one way");
        assert!(
            slow_ways <= total_ways,
            "slow ways cannot exceed total ways"
        );
        ProbeObservation {
            slow_ways,
            total_ways,
        }
    }

    /// Interprets the observation as a transmitted bit: the set counts as
    /// "primed by the other side" when at least `threshold` ways were slow.
    pub fn as_bit(&self, threshold: usize) -> bool {
        self.slow_ways >= threshold
    }

    /// Fraction of ways that were slow.
    pub fn slow_fraction(&self) -> f64 {
        self.slow_ways as f64 / self.total_ways as f64
    }
}

/// Decision rule combining the observations of the redundant sets of a role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierConfig {
    /// Minimum number of slow ways for a single set to read as "primed".
    pub per_set_threshold: usize,
}

impl ClassifierConfig {
    /// The default used by the reproduction: a set reads as primed when at
    /// least a quarter of its ways (4 of 16) were slow. Well below the
    /// all-16 signal of a genuine prime, well above the 0–1 spurious misses
    /// of ambient noise.
    pub fn paper_default() -> Self {
        ClassifierConfig {
            per_set_threshold: 4,
        }
    }
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Combines per-set observations into a single decoded bit by majority vote;
/// ties are broken by the aggregate number of slow ways (the "strength" of
/// the eviction signal).
///
/// This is the non-aborting variant used by the transceiver engine: a sweep
/// over many scenarios must record a [`ChannelError::EmptyObservations`]
/// instead of taking the whole run down.
///
/// # Errors
///
/// Returns [`ChannelError::EmptyObservations`] when `observations` is empty.
pub fn try_majority_vote(
    observations: &[ProbeObservation],
    config: ClassifierConfig,
) -> Result<bool, ChannelError> {
    if observations.is_empty() {
        return Err(ChannelError::EmptyObservations);
    }
    let votes_for_one = observations
        .iter()
        .filter(|o| o.as_bit(config.per_set_threshold))
        .count();
    let votes_for_zero = observations.len() - votes_for_one;
    if votes_for_one != votes_for_zero {
        return Ok(votes_for_one > votes_for_zero);
    }
    // Tie: fall back to total signal strength.
    let total_slow: usize = observations.iter().map(|o| o.slow_ways).sum();
    let total_ways: usize = observations.iter().map(|o| o.total_ways).sum();
    Ok(2 * total_slow >= total_ways)
}

/// Asserting wrapper over [`try_majority_vote`], for call sites where the
/// observation count is statically known to be non-zero.
///
/// # Panics
///
/// Panics if `observations` is empty.
pub fn majority_vote(observations: &[ProbeObservation], config: ClassifierConfig) -> bool {
    try_majority_vote(observations, config).expect("majority vote needs at least one observation")
}

/// Sync preamble the transceiver engine prepends to every frame. The pattern
/// alternates runs of both symbols so a desynchronized receiver (seeing
/// near-random bits) is unlikely to match it by chance.
pub const FRAME_PREAMBLE: [bool; 8] = [true, false, true, true, false, false, true, false];

/// Wraps a payload chunk into an on-wire frame: preamble followed by payload.
pub fn frame_bits(payload: &[bool]) -> Vec<bool> {
    let mut wire = Vec::with_capacity(FRAME_PREAMBLE.len() + payload.len());
    wire.extend_from_slice(&FRAME_PREAMBLE);
    wire.extend_from_slice(payload);
    wire
}

/// Number of preamble bits of a received frame that differ from
/// [`FRAME_PREAMBLE`]; missing bits (short frames) count as errors.
pub fn sync_errors(received: &[bool]) -> usize {
    FRAME_PREAMBLE
        .iter()
        .enumerate()
        .filter(|&(i, &expected)| received.get(i) != Some(&expected))
        .count()
}

/// Strips the preamble from a received frame, accepting up to
/// `max_sync_errors` corrupted preamble bits.
///
/// # Errors
///
/// Returns the observed sync-error count when it exceeds the tolerance (the
/// engine then retransmits the frame).
pub fn deframe_bits(received: &[bool], max_sync_errors: usize) -> Result<Vec<bool>, usize> {
    let errors = sync_errors(received);
    if errors > max_sync_errors {
        return Err(errors);
    }
    Ok(received[FRAME_PREAMBLE.len().min(received.len())..].to_vec())
}

/// Converts a byte string into the bit sequence transmitted over a channel
/// (MSB first, as a real exfiltration tool would frame it).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Reassembles bytes from a decoded bit sequence (MSB first). Trailing bits
/// that do not fill a byte are dropped.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_directions_have_labels() {
        assert_eq!(SetRole::ALL.len(), 3);
        assert_eq!(Direction::GpuToCpu.label(), "GPU-to-CPU");
        assert_eq!(Direction::CpuToGpu.label(), "CPU-to-GPU");
    }

    #[test]
    fn observation_thresholding() {
        let o = ProbeObservation::new(12, 16);
        assert!(o.as_bit(4));
        assert!(!o.as_bit(13));
        assert!((o.slow_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn invalid_observation_panics() {
        let _ = ProbeObservation::new(17, 16);
    }

    #[test]
    fn majority_vote_basic() {
        let cfg = ClassifierConfig::paper_default();
        let primed = ProbeObservation::new(16, 16);
        let idle = ProbeObservation::new(0, 16);
        let noisy_idle = ProbeObservation::new(1, 16);
        assert!(majority_vote(&[primed, primed], cfg));
        assert!(!majority_vote(&[idle, noisy_idle], cfg));
        // One corrupted observation out of two: the tie-break uses signal
        // strength, and a full prime dominates.
        assert!(majority_vote(&[primed, idle], cfg));
        // Three sets: simple majority.
        assert!(!majority_vote(&[primed, idle, idle], cfg));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_vote_panics() {
        majority_vote(&[], ClassifierConfig::default());
    }

    #[test]
    fn byte_bit_roundtrip() {
        let data = b"Leaky Buddies!".to_vec();
        let bits = bytes_to_bits(&data);
        assert_eq!(bits.len(), data.len() * 8);
        assert_eq!(bits_to_bytes(&bits), data);
        // MSB-first framing: 0x80 -> first bit set.
        assert!(bytes_to_bits(&[0x80])[0]);
        assert!(bytes_to_bits(&[0x01])[7]);
    }

    #[test]
    fn partial_trailing_bits_are_dropped() {
        let mut bits = bytes_to_bits(&[0xAB]);
        bits.push(true);
        bits.push(false);
        assert_eq!(bits_to_bytes(&bits), vec![0xAB]);
    }
}
