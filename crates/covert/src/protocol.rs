//! Covert-channel protocol building blocks.
//!
//! Both channels move one bit per protocol round. The LLC channel wraps each
//! bit in the paper's three-phase exchange (Figure 3 / Figure 5):
//!
//! 1. **Ready-to-send** — the sender primes set group `S_A`, the receiver
//!    probes it;
//! 2. **Ready-to-receive** — the receiver primes set group `S_B`, the sender
//!    probes it;
//! 3. **Data** — the sender primes set group `S_C` to transmit a `1` (or
//!    stays idle for a `0`), the receiver probes it.
//!
//! Each "set group" consists of `sets_per_role` redundant LLC sets (2 in the
//! paper's final configuration); the receiver combines the per-set
//! observations by majority vote, trading a little bandwidth for a large
//! error-rate reduction (Figure 8).

/// The three roles an LLC set group plays in one bit exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetRole {
    /// `S_A`: sender → receiver "ready to send" handshake.
    ReadyToSend,
    /// `S_B`: receiver → sender "ready to receive" handshake.
    ReadyToReceive,
    /// `S_C`: the data set.
    Data,
}

impl SetRole {
    /// All roles in protocol order.
    pub const ALL: [SetRole; 3] = [SetRole::ReadyToSend, SetRole::ReadyToReceive, SetRole::Data];
}

/// Which way the LLC channel transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Trojan on the GPU, spy on the CPU.
    GpuToCpu,
    /// Trojan on the CPU, spy on the GPU.
    CpuToGpu,
}

impl Direction {
    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            Direction::GpuToCpu => "GPU-to-CPU",
            Direction::CpuToGpu => "CPU-to-GPU",
        }
    }
}

/// Observation of a single probed LLC set: how many of its ways appeared to
/// miss (slow accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeObservation {
    /// Number of slow (miss-classified) ways.
    pub slow_ways: usize,
    /// Total ways probed.
    pub total_ways: usize,
}

impl ProbeObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics if `slow_ways > total_ways` or `total_ways == 0`.
    pub fn new(slow_ways: usize, total_ways: usize) -> Self {
        assert!(total_ways > 0, "an observation needs at least one way");
        assert!(slow_ways <= total_ways, "slow ways cannot exceed total ways");
        ProbeObservation { slow_ways, total_ways }
    }

    /// Interprets the observation as a transmitted bit: the set counts as
    /// "primed by the other side" when at least `threshold` ways were slow.
    pub fn as_bit(&self, threshold: usize) -> bool {
        self.slow_ways >= threshold
    }

    /// Fraction of ways that were slow.
    pub fn slow_fraction(&self) -> f64 {
        self.slow_ways as f64 / self.total_ways as f64
    }
}

/// Decision rule combining the observations of the redundant sets of a role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierConfig {
    /// Minimum number of slow ways for a single set to read as "primed".
    pub per_set_threshold: usize,
}

impl ClassifierConfig {
    /// The default used by the reproduction: a set reads as primed when at
    /// least a quarter of its ways (4 of 16) were slow. Well below the
    /// all-16 signal of a genuine prime, well above the 0–1 spurious misses
    /// of ambient noise.
    pub fn paper_default() -> Self {
        ClassifierConfig { per_set_threshold: 4 }
    }
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Combines per-set observations into a single decoded bit by majority vote;
/// ties are broken by the aggregate number of slow ways (the "strength" of
/// the eviction signal).
pub fn majority_vote(observations: &[ProbeObservation], config: ClassifierConfig) -> bool {
    assert!(!observations.is_empty(), "majority vote needs at least one observation");
    let votes_for_one = observations
        .iter()
        .filter(|o| o.as_bit(config.per_set_threshold))
        .count();
    let votes_for_zero = observations.len() - votes_for_one;
    if votes_for_one != votes_for_zero {
        return votes_for_one > votes_for_zero;
    }
    // Tie: fall back to total signal strength.
    let total_slow: usize = observations.iter().map(|o| o.slow_ways).sum();
    let total_ways: usize = observations.iter().map(|o| o.total_ways).sum();
    2 * total_slow >= total_ways
}

/// Converts a byte string into the bit sequence transmitted over a channel
/// (MSB first, as a real exfiltration tool would frame it).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Reassembles bytes from a decoded bit sequence (MSB first). Trailing bits
/// that do not fill a byte are dropped.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_directions_have_labels() {
        assert_eq!(SetRole::ALL.len(), 3);
        assert_eq!(Direction::GpuToCpu.label(), "GPU-to-CPU");
        assert_eq!(Direction::CpuToGpu.label(), "CPU-to-GPU");
    }

    #[test]
    fn observation_thresholding() {
        let o = ProbeObservation::new(12, 16);
        assert!(o.as_bit(4));
        assert!(!o.as_bit(13));
        assert!((o.slow_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn invalid_observation_panics() {
        let _ = ProbeObservation::new(17, 16);
    }

    #[test]
    fn majority_vote_basic() {
        let cfg = ClassifierConfig::paper_default();
        let primed = ProbeObservation::new(16, 16);
        let idle = ProbeObservation::new(0, 16);
        let noisy_idle = ProbeObservation::new(1, 16);
        assert!(majority_vote(&[primed, primed], cfg));
        assert!(!majority_vote(&[idle, noisy_idle], cfg));
        // One corrupted observation out of two: the tie-break uses signal
        // strength, and a full prime dominates.
        assert!(majority_vote(&[primed, idle], cfg));
        // Three sets: simple majority.
        assert!(!majority_vote(&[primed, idle, idle], cfg));
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_vote_panics() {
        majority_vote(&[], ClassifierConfig::default());
    }

    #[test]
    fn byte_bit_roundtrip() {
        let data = b"Leaky Buddies!".to_vec();
        let bits = bytes_to_bits(&data);
        assert_eq!(bits.len(), data.len() * 8);
        assert_eq!(bits_to_bytes(&bits), data);
        // MSB-first framing: 0x80 -> first bit set.
        assert_eq!(bytes_to_bits(&[0x80])[0], true);
        assert_eq!(bytes_to_bits(&[0x01])[7], true);
    }

    #[test]
    fn partial_trailing_bits_are_dropped() {
        let mut bits = bytes_to_bits(&[0xAB]);
        bits.push(true);
        bits.push(false);
        assert_eq!(bits_to_bytes(&bits), vec![0xAB]);
    }
}
