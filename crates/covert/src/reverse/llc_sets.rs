//! LLC eviction-set construction (Section III-C of the paper).
//!
//! A Prime+Probe attacker needs, for every LLC set used by the protocol, a
//! collection of `ways` addresses of its own that map to that set. Two
//! construction routes are provided:
//!
//! * **Timing-only group testing** ([`find_minimal_eviction_set`]): starting
//!   from a pool of candidate addresses, repeatedly discard groups whose
//!   removal does not stop the pool from evicting the victim, until exactly
//!   `ways` addresses remain. This is the classic reduction of Vila et al.
//!   cited by the paper and needs no knowledge of the slice hash.
//! * **Address arithmetic over huge pages** ([`addresses_in_llc_set`]): with
//!   1 GiB pages the attacker knows the low 30 physical-address bits, and
//!   after recovering the slice hash (see [`crate::reverse::slice_hash`]) can
//!   compute set membership directly. This is what the channel setup uses,
//!   since it is what the paper's end-to-end attack does.
//!
//! On the GPU side no separate construction is needed: with OpenCL shared
//! virtual memory and zero-copy buffers the GPU observes the same physical
//! addresses, so the CPU-derived sets remain valid
//! ([`validate_set_from_gpu`]).

use crate::error::ChannelError;
use cpu_exec::prelude::CpuThread;
use gpu_exec::prelude::GpuKernel;
use soc_sim::address::CACHE_LINE_SIZE;
use soc_sim::llc::LlcSetId;
use soc_sim::prelude::{MemorySystem, PhysAddr};

/// Default CPU cycle threshold separating an LLC hit (~45 cycles on the
/// modelled part) from a DRAM access (~300 cycles).
pub const CPU_MISS_THRESHOLD_CYCLES: u64 = 150;

/// Tests whether walking `candidates` evicts `victim` from the cache
/// hierarchy, observed purely through timing from the CPU.
///
/// The victim is loaded, the candidate set is walked twice (to defeat LRU
/// ordering effects), and the victim is re-timed: a slow access means the
/// candidates conflict with it in the LLC (the back-invalidation of the
/// inclusive LLC also removed it from L1/L2).
pub fn evicts_victim<M: MemorySystem>(
    cpu: &mut CpuThread,
    soc: &mut M,
    victim: PhysAddr,
    candidates: &[PhysAddr],
    threshold_cycles: u64,
) -> bool {
    cpu.load(soc, victim);
    for _ in 0..2 {
        for &c in candidates {
            cpu.load(soc, c);
        }
    }
    let (cycles, _) = cpu.timed_load(soc, victim);
    cycles > threshold_cycles
}

/// Reduces `pool` (which must already evict `victim`) to a minimal eviction
/// set of exactly `ways` addresses using group testing.
///
/// # Errors
///
/// Returns [`ChannelError::EvictionSetNotFound`] if the pool does not evict
/// the victim to begin with, or if the reduction gets stuck (noise).
pub fn find_minimal_eviction_set<M: MemorySystem>(
    cpu: &mut CpuThread,
    soc: &mut M,
    victim: PhysAddr,
    pool: &[PhysAddr],
    ways: usize,
    threshold_cycles: u64,
) -> Result<Vec<PhysAddr>, ChannelError> {
    let mut working: Vec<PhysAddr> = pool.to_vec();
    if !evicts_victim(cpu, soc, victim, &working, threshold_cycles) {
        return Err(ChannelError::EvictionSetNotFound {
            requested: ways,
            found: 0,
        });
    }
    // Group-testing reduction: split into ways+1 groups; at least one group
    // can be removed while preserving the eviction property.
    while working.len() > ways {
        // Split into ways+1 near-equal groups; by the pigeonhole principle at
        // least one group contains no member of the victim's minimal set and
        // can be discarded.
        let groups = ways + 1;
        let mut removed_any = false;
        for g in 0..groups {
            let start = g * working.len() / groups;
            let end = (g + 1) * working.len() / groups;
            if start >= end {
                continue;
            }
            let reduced: Vec<PhysAddr> = working[..start]
                .iter()
                .chain(working[end..].iter())
                .copied()
                .collect();
            if reduced.len() >= ways && evicts_victim(cpu, soc, victim, &reduced, threshold_cycles)
            {
                working = reduced;
                removed_any = true;
                break;
            }
        }
        if !removed_any {
            // Cannot shrink further (noise or the pool is already minimal).
            break;
        }
    }
    if working.len() == ways {
        Ok(working)
    } else {
        Err(ChannelError::EvictionSetNotFound {
            requested: ways,
            found: working.len(),
        })
    }
}

/// Computes `count` line addresses inside `[region_base, region_base + len)`
/// that map to the LLC set `set`, by address arithmetic (the attacker's
/// equivalent after recovering the slice hash and with a 1 GiB huge page
/// giving physical contiguity).
///
/// # Errors
///
/// Returns [`ChannelError::EvictionSetNotFound`] if the region does not
/// contain enough matching lines.
pub fn addresses_in_llc_set<M: MemorySystem>(
    soc: &M,
    set: LlcSetId,
    region_base: PhysAddr,
    region_len: u64,
    count: usize,
) -> Result<Vec<PhysAddr>, ChannelError> {
    let llc = soc.llc();
    let mut out = Vec::with_capacity(count);
    // The set index within a slice is `line_number mod sets_per_slice`, so
    // candidate lines recur with a fixed period and only the slice hash needs
    // testing per candidate — the attacker's actual shortcut once the page
    // offset bits are known. Visits the same addresses, in the same ascending
    // order, as a full line-by-line scan of the region.
    let sets = llc.config().sets_per_slice as u64;
    let end = region_base.value() + region_len;
    if (set.set as u64) < sets {
        let start_line = region_base.line_base().value() / CACHE_LINE_SIZE;
        let skew = (set.set as u64 + sets - start_line % sets) % sets;
        let mut addr = PhysAddr::new((start_line + skew) * CACHE_LINE_SIZE);
        while out.len() < count && addr.value() + CACHE_LINE_SIZE <= end {
            if llc.set_of(addr) == set {
                out.push(addr);
            }
            addr = addr.add(sets * CACHE_LINE_SIZE);
        }
    }
    if out.len() < count {
        return Err(ChannelError::EvictionSetNotFound {
            requested: count,
            found: out.len(),
        });
    }
    Ok(out)
}

/// Validates from the GPU side (through shared virtual memory) that an
/// eviction set built on the CPU indeed collides in the LLC: the GPU walks
/// the set, then the CPU re-times the victim and must see a miss.
///
/// Returns the victim's measured CPU cycles and whether they exceeded the
/// threshold.
pub fn validate_set_from_gpu<M: MemorySystem>(
    cpu: &mut CpuThread,
    gpu: &mut GpuKernel,
    soc: &mut M,
    victim: PhysAddr,
    eviction_set: &[PhysAddr],
    threshold_cycles: u64,
) -> (u64, bool) {
    cpu.load(soc, victim);
    gpu.synchronize_to(cpu.now());
    // The GPU must push the lines all the way to the LLC; walking the set a
    // few times also forces them out of the GPU L3 progressively, and the
    // parallel probe keeps this cheap.
    for _ in 0..2 {
        gpu.parallel_load(soc, eviction_set);
    }
    cpu.synchronize_to(gpu.now());
    let (cycles, _) = cpu.timed_load(soc, victim);
    (cycles, cycles > threshold_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{Soc, SocConfig};

    fn setup() -> (Soc, CpuThread) {
        (
            Soc::new(SocConfig::kaby_lake_noiseless()),
            CpuThread::pinned(0),
        )
    }

    #[test]
    fn conflicting_pool_evicts_victim() {
        let (mut soc, mut cpu) = setup();
        let victim = PhysAddr::new(0x40_0000);
        let set = soc.llc().set_of(victim);
        let pool = soc
            .llc()
            .enumerate_set_addresses(set, PhysAddr::new(0x100_0000), 20);
        assert!(evicts_victim(
            &mut cpu,
            &mut soc,
            victim,
            &pool,
            CPU_MISS_THRESHOLD_CYCLES
        ));
    }

    #[test]
    fn non_conflicting_pool_does_not_evict() {
        let (mut soc, mut cpu) = setup();
        let victim = PhysAddr::new(0x40_0000);
        let set = soc.llc().set_of(victim);
        // Addresses in other LLC sets, and few enough (< L1/L2 capacity in
        // every set) not to evict the victim from the private caches either.
        let pool: Vec<PhysAddr> = soc.llc().enumerate_set_addresses(
            LlcSetId {
                slice: set.slice,
                set: (set.set + 7) % 2048,
            },
            PhysAddr::new(0x100_0000),
            16,
        );
        assert!(!evicts_victim(
            &mut cpu,
            &mut soc,
            victim,
            &pool,
            CPU_MISS_THRESHOLD_CYCLES
        ));
    }

    #[test]
    fn reduction_finds_exactly_ways_addresses_all_in_victim_set() {
        let (mut soc, mut cpu) = setup();
        let victim = PhysAddr::new(0x77_0000);
        let set = soc.llc().set_of(victim);
        let ways = soc.llc().config().ways;
        // Pool: 24 genuine conflicts + 40 decoys from other sets.
        let mut pool = soc
            .llc()
            .enumerate_set_addresses(set, PhysAddr::new(0x200_0000), 24);
        for i in 0..40u64 {
            let a = PhysAddr::new(0x300_0000 + i * 4096 + i * 64);
            if soc.llc().set_of(a) != set {
                pool.push(a);
            }
        }
        let minimal = find_minimal_eviction_set(
            &mut cpu,
            &mut soc,
            victim,
            &pool,
            ways,
            CPU_MISS_THRESHOLD_CYCLES,
        )
        .unwrap();
        assert_eq!(minimal.len(), ways);
        for a in &minimal {
            assert_eq!(
                soc.llc().set_of(*a),
                set,
                "reduced set member in wrong LLC set"
            );
        }
    }

    #[test]
    fn reduction_fails_cleanly_for_useless_pool() {
        let (mut soc, mut cpu) = setup();
        let victim = PhysAddr::new(0x88_0000);
        let pool: Vec<PhysAddr> = (0..8).map(|i| PhysAddr::new(0x900_0000 + i * 64)).collect();
        let err = find_minimal_eviction_set(
            &mut cpu,
            &mut soc,
            victim,
            &pool,
            16,
            CPU_MISS_THRESHOLD_CYCLES,
        )
        .unwrap_err();
        assert!(matches!(err, ChannelError::EvictionSetNotFound { .. }));
    }

    #[test]
    fn address_arithmetic_matches_ground_truth() {
        let (soc, _) = setup();
        let set = soc.llc().set_of(PhysAddr::new(0xABC0_0040));
        let addrs =
            addresses_in_llc_set(&soc, set, PhysAddr::new(0x4000_0000), 512 * 1024 * 1024, 16)
                .unwrap();
        assert_eq!(addrs.len(), 16);
        assert!(addrs.iter().all(|a| soc.llc().set_of(*a) == set));
        // Requesting more than the region contains errors out.
        let err = addresses_in_llc_set(&soc, set, PhysAddr::new(0x4000_0000), 1024 * 1024, 1000)
            .unwrap_err();
        assert!(matches!(err, ChannelError::EvictionSetNotFound { .. }));
    }

    #[test]
    fn gpu_side_validation_sees_the_eviction() {
        let (mut soc, mut cpu) = setup();
        let mut gpu = GpuKernel::launch_attack_kernel();
        let victim = PhysAddr::new(0x55_0000);
        let set = soc.llc().set_of(victim);
        let ways = soc.llc().config().ways;
        let eviction_set = soc
            .llc()
            .enumerate_set_addresses(set, PhysAddr::new(0x600_0000), ways);
        let (cycles, evicted) = validate_set_from_gpu(
            &mut cpu,
            &mut gpu,
            &mut soc,
            victim,
            &eviction_set,
            CPU_MISS_THRESHOLD_CYCLES,
        );
        assert!(
            evicted,
            "GPU walk must evict the CPU victim (took {cycles} cycles)"
        );
    }
}
