//! Reverse engineering of the asymmetric cache hierarchy.
//!
//! Before either covert channel can run, the attacker must understand how the
//! two components see the shared LLC (Sections III-C and III-D of the paper):
//!
//! * [`slice_hash`] — recover, from timing alone, which physical address bits
//!   feed the LLC slice-selection hash (the paper's Equations 1 and 2);
//! * [`llc_sets`] — build LLC eviction sets from the CPU side and reuse them
//!   on the GPU side through shared virtual memory;
//! * [`l3`] — establish that the GPU L3 is not inclusive of the LLC, discover
//!   its placement geometry, and build the L3 eviction ("pollute") sets that
//!   force GPU references out to the LLC.

pub mod l3;
pub mod llc_sets;
pub mod slice_hash;
