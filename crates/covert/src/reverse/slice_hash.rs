//! Timing-based recovery of the LLC slice-selection hash (Section III-C,
//! Equations 1 and 2 of the paper).
//!
//! The attacker allocates a 1 GiB huge page, so virtual offsets equal
//! physical offsets for the low 30 address bits. Probe addresses are chosen
//! to share every LLC set-index bit and differ only in higher bits; two such
//! addresses collide in the LLC if and only if the slice hash maps them to
//! the same slice. Grouping the probes by timing-observed collisions
//! therefore partitions them by slice, and comparing the groups of `base` and
//! `base ^ (1 << b)` reveals whether bit `b` feeds the hash.
//!
//! Within a single huge page only bits below 30 can be varied, so the
//! recovery reports the hash's input bits on that range; the paper's
//! Equations 1/2 extend to bit 37 using additional pages. The recovered
//! partition is validated against the simulator's ground-truth hash in the
//! test suite and in `EXPERIMENTS.md`.

use crate::reverse::llc_sets::{
    evicts_victim, find_minimal_eviction_set, CPU_MISS_THRESHOLD_CYCLES,
};
use cpu_exec::prelude::CpuThread;
use soc_sim::prelude::{MemorySystem, PhysAddr};
use std::collections::BTreeMap;

/// Lowest address bit that can vary without changing the LLC set index
/// (set index uses bits `[6, 17)` on the modelled 2048-set slices).
pub const FIRST_NON_INDEX_BIT: u32 = 17;

/// Highest (exclusive) address bit controllable inside one 1 GiB huge page.
pub const HUGE_PAGE_BIT_LIMIT: u32 = 30;

/// Result of the slice-hash recovery.
#[derive(Debug, Clone)]
pub struct SliceHashRecovery {
    /// The probe addresses, grouped by timing-observed slice.
    pub groups: Vec<Vec<PhysAddr>>,
    /// For each examined bit, whether flipping it moved the base address to a
    /// different slice (i.e. the bit feeds the hash).
    pub bit_influence: BTreeMap<u32, bool>,
}

impl SliceHashRecovery {
    /// Number of distinct slices observed.
    pub fn observed_slices(&self) -> usize {
        self.groups.len()
    }

    /// Bits found to influence slice selection, ascending.
    pub fn influencing_bits(&self) -> Vec<u32> {
        self.bit_influence
            .iter()
            .filter_map(|(&b, &inf)| inf.then_some(b))
            .collect()
    }
}

/// Builds the probe-address population: `count` line addresses inside the
/// huge page at `huge_base` that differ from `huge_base` only in bits
/// `[FIRST_NON_INDEX_BIT, HUGE_PAGE_BIT_LIMIT)`.
pub fn probe_addresses(huge_base: PhysAddr, count: usize) -> Vec<PhysAddr> {
    (0..count as u64)
        .map(|i| PhysAddr::new(huge_base.value() + (i << FIRST_NON_INDEX_BIT)))
        .collect()
}

/// Partitions `probes` into same-slice groups using only timing.
///
/// For each yet-unassigned probe (the "seed"), a minimal eviction set is
/// found within the remaining pool via group testing — its members are, by
/// construction, in the seed's slice. Every other remaining probe is then
/// classified by whether that minimal set evicts it. With 4 slices of a
/// 16-way LLC, 96 probes (~24 per slice) are ample.
pub fn group_by_slice<M: MemorySystem>(
    cpu: &mut CpuThread,
    soc: &mut M,
    probes: &[PhysAddr],
    threshold_cycles: u64,
) -> Vec<Vec<PhysAddr>> {
    let ways = soc.llc().config().ways;
    let mut remaining: Vec<PhysAddr> = probes.to_vec();
    let mut groups: Vec<Vec<PhysAddr>> = Vec::new();
    while !remaining.is_empty() {
        let seed = remaining[0];
        let pool: Vec<PhysAddr> = remaining[1..].to_vec();
        if pool.len() < ways {
            // Too few probes left to form another conflict set: keep them as
            // one residual group.
            groups.push(remaining.clone());
            break;
        }
        let reference =
            match find_minimal_eviction_set(cpu, soc, seed, &pool, ways, threshold_cycles) {
                Ok(r) => r,
                Err(_) => {
                    // The seed conflicts with nothing left: it forms a
                    // singleton group (can happen for residual probes).
                    groups.push(vec![seed]);
                    remaining.remove(0);
                    continue;
                }
            };
        let mut group = vec![seed];
        for &x in &pool {
            // Members of the reference set trivially belong to the group; for
            // everything else, ask the timing oracle.
            if reference.contains(&x) || evicts_victim(cpu, soc, x, &reference, threshold_cycles) {
                group.push(x);
            }
        }
        remaining.retain(|a| !group.contains(a));
        groups.push(group);
    }
    groups
}

/// Recovers which physical-address bits in `[FIRST_NON_INDEX_BIT,
/// HUGE_PAGE_BIT_LIMIT)` influence the slice hash, and the slice partition of
/// the probe population.
///
/// `probe_count` probes are used for the grouping (96 is ample for a 4-slice,
/// 16-way LLC).
pub fn recover_slice_hash<M: MemorySystem>(
    cpu: &mut CpuThread,
    soc: &mut M,
    huge_base: PhysAddr,
    probe_count: usize,
) -> SliceHashRecovery {
    let probes = probe_addresses(huge_base, probe_count);
    let groups = group_by_slice(cpu, soc, &probes, CPU_MISS_THRESHOLD_CYCLES);

    // Reference conflict sets per group (first `ways` members of each group).
    let ways = soc.llc().config().ways;
    let references: Vec<Vec<PhysAddr>> = groups
        .iter()
        .map(|g| g.iter().copied().take(ways).collect())
        .collect();

    let classify = |cpu: &mut CpuThread, soc: &mut M, addr: PhysAddr| -> Option<usize> {
        // Known members are classified structurally; anything else by timing.
        if let Some(i) = groups.iter().position(|g| g.contains(&addr)) {
            return Some(i);
        }
        references
            .iter()
            .enumerate()
            .filter(|(_, r)| r.len() >= ways)
            .find(|(_, r)| evicts_victim(cpu, soc, addr, r, CPU_MISS_THRESHOLD_CYCLES))
            .map(|(i, _)| i)
    };

    let base_group = classify(cpu, soc, huge_base);
    let mut bit_influence = BTreeMap::new();
    for bit in FIRST_NON_INDEX_BIT..HUGE_PAGE_BIT_LIMIT {
        let flipped = PhysAddr::new(huge_base.value() ^ (1u64 << bit));
        let flipped_group = classify(cpu, soc, flipped);
        let influences = match (base_group, flipped_group) {
            (Some(a), Some(b)) => a != b,
            // If either address could not be classified, conservatively report
            // the bit as influencing (it landed outside every known group).
            _ => true,
        };
        bit_influence.insert(bit, influences);
    }

    SliceHashRecovery {
        groups,
        bit_influence,
    }
}

/// Ground-truth check helper: returns the bits in `[lo, hi)` that the given
/// XOR-mask hash actually uses (union of all output-bit masks). Used by tests
/// and the reproduction harness to score the recovery.
pub fn ground_truth_bits(hash: &soc_sim::slice_hash::SliceHash, lo: u32, hi: u32) -> Vec<u32> {
    let union: u64 = hash.masks().iter().fold(0, |acc, m| acc | m);
    (lo..hi).filter(|&b| (union >> b) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{Soc, SocConfig};

    fn setup() -> (Soc, CpuThread) {
        (
            Soc::new(SocConfig::kaby_lake_noiseless()),
            CpuThread::pinned(0),
        )
    }

    /// Physically 1 GiB-aligned base so the low 30 bits are fully
    /// attacker-controlled, mirroring a huge-page allocation.
    const HUGE_BASE: PhysAddr = PhysAddr::new(0x1_0000_0000);

    #[test]
    fn probe_addresses_share_set_index_bits() {
        let (soc, _) = setup();
        let probes = probe_addresses(HUGE_BASE, 32);
        let llc = soc.llc();
        let base_set_index = llc.set_of(HUGE_BASE).set;
        assert!(probes.iter().all(|p| llc.set_of(*p).set == base_set_index));
        // But they spread over all four slices.
        let slices: std::collections::HashSet<_> =
            probes.iter().map(|p| llc.set_of(*p).slice).collect();
        assert_eq!(slices.len(), 4);
    }

    #[test]
    fn grouping_recovers_the_slice_partition() {
        let (mut soc, mut cpu) = setup();
        let probes = probe_addresses(HUGE_BASE, 96);
        let groups = group_by_slice(&mut cpu, &mut soc, &probes, CPU_MISS_THRESHOLD_CYCLES);
        assert_eq!(
            groups.len(),
            4,
            "four slices expected, got {}",
            groups.len()
        );
        // Every timing-derived group must be slice-pure according to the
        // ground-truth hash.
        let llc = soc.llc();
        for g in &groups {
            let slices: std::collections::HashSet<_> =
                g.iter().map(|a| llc.set_of(*a).slice).collect();
            assert_eq!(slices.len(), 1, "group mixes slices: {slices:?}");
        }
        // And together they cover every probe exactly once.
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 96);
    }

    #[test]
    fn recovered_bits_match_equations_one_and_two() {
        let (mut soc, mut cpu) = setup();
        let recovery = recover_slice_hash(&mut cpu, &mut soc, HUGE_BASE, 96);
        assert_eq!(recovery.observed_slices(), 4);
        let expected = ground_truth_bits(
            &soc_sim::slice_hash::SliceHash::kaby_lake_i7_7700k(),
            FIRST_NON_INDEX_BIT,
            HUGE_PAGE_BIT_LIMIT,
        );
        assert_eq!(
            recovery.influencing_bits(),
            expected,
            "recovered hash-input bits must match the ground truth on the huge-page range"
        );
    }

    #[test]
    fn recovery_scales_to_the_icelake_8slice_hash() {
        // The same timing-only recovery, against the three-equation 8-slice
        // ground truth: the group-testing partition must observe all eight
        // slices, stay slice-pure, and the recovered influencing bits must
        // match the union of the three masks on the huge-page window.
        use soc_sim::prelude::{NoiseConfig, TopologySpec};
        let mut soc = TopologySpec::icelake_8slice()
            .with_noise(NoiseConfig::none())
            .build();
        let mut cpu = CpuThread::pinned(0);
        // 8 slices x 16 ways: 192 probes give ~24 per slice, enough to form
        // a conflict set in every slice.
        let recovery = recover_slice_hash(&mut cpu, &mut soc, HUGE_BASE, 192);
        assert_eq!(
            recovery.observed_slices(),
            8,
            "groups: {:?}",
            recovery.groups.iter().map(Vec::len).collect::<Vec<_>>()
        );
        let llc = soc.llc();
        for g in &recovery.groups {
            let slices: std::collections::HashSet<_> =
                g.iter().map(|a| llc.set_of(*a).slice).collect();
            assert_eq!(slices.len(), 1, "group mixes slices: {slices:?}");
        }
        let expected = ground_truth_bits(
            &soc_sim::slice_hash::SliceHash::icelake_8slice(),
            FIRST_NON_INDEX_BIT,
            HUGE_PAGE_BIT_LIMIT,
        );
        assert_eq!(recovery.influencing_bits(), expected);
    }

    #[test]
    fn ground_truth_bits_helper_reads_masks() {
        let hash = soc_sim::slice_hash::SliceHash::kaby_lake_i7_7700k();
        let bits = ground_truth_bits(&hash, 17, 30);
        // From Equations (1)/(2): every bit in 17..=29 appears in S0 or S1.
        assert_eq!(bits, (17..30).collect::<Vec<u32>>());
        let none = ground_truth_bits(&hash, 0, 6);
        assert!(none.is_empty(), "no hash input below the line offset");
        // Bits 8 and 9 feed neither output bit on this part.
        let low = ground_truth_bits(&hash, 6, 10);
        assert_eq!(low, vec![6, 7]);
    }
}
