//! GPU L3 reverse engineering (Section III-D of the paper).
//!
//! Three results are needed from this module:
//!
//! 1. **Inclusiveness** — the LLC is *not* inclusive of the GPU L3, so the
//!    CPU cannot evict GPU-cached lines with `clflush`; eviction must happen
//!    from the GPU side ([`l3_inclusiveness_test`]).
//! 2. **Placement geometry** — which address bits place a line in the L3
//!    ([`discover_l3_index_bits`]); the paper finds 16 bits: 6 offset + 5 set
//!    + 2 bank + 3 sub-bank.
//! 3. **Eviction ("pollute") sets** — for every LLC-set target address, a set
//!    of addresses that share its L3 placement but fall in *other* LLC sets,
//!    so that walking them pushes the target out of the L3 without polluting
//!    the LLC set used for communication ([`build_pollute_set`],
//!    [`L3EvictionStrategy`]).

use crate::error::ChannelError;
use cpu_exec::prelude::CpuThread;
use gpu_exec::prelude::GpuKernel;
use soc_sim::address::CACHE_LINE_SIZE;
use soc_sim::prelude::{HitLevel, MemorySystem, PhysAddr};

/// Number of passes over an L3 conflict set needed for a reliable pLRU
/// eviction (the paper reports 5 or more).
pub const L3_EVICTION_PASSES: usize = 5;

/// Result of the inclusiveness experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InclusivenessResult {
    /// Custom-timer ticks of the final GPU access.
    pub final_access_ticks: u64,
    /// Hit level actually observed by the simulator (ground truth used only
    /// for validation in tests).
    pub observed_level: HitLevel,
    /// The attacker's conclusion from timing alone: `true` means the final
    /// GPU access was an L3 hit, i.e. the LLC is **not** inclusive of the L3.
    pub l3_is_non_inclusive: bool,
}

/// Runs the paper's inclusiveness experiment on `target`:
/// GPU access (fills L3 + LLC) → CPU access → CPU `clflush` → timed GPU
/// access. If the final access is fast (L3-hit range), the flush did not
/// back-invalidate the L3 and the hierarchy is non-inclusive.
///
/// `l3_hit_threshold_ticks` is the decision threshold, typically obtained
/// from [`crate::timer_char::characterize_timer`].
pub fn l3_inclusiveness_test<M: MemorySystem>(
    soc: &mut M,
    gpu: &mut GpuKernel,
    cpu: &mut CpuThread,
    target: PhysAddr,
    l3_hit_threshold_ticks: u64,
) -> InclusivenessResult {
    // Step 1: GPU brings the line into L3 and LLC.
    gpu.load(soc, target);
    // Step 2: CPU accesses the same data (it is a shared buffer in the
    // experiment), then flushes it from every level it controls.
    cpu.synchronize_to(gpu.now());
    cpu.load(soc, target);
    cpu.clflush(soc, target);
    // Step 3: GPU times a re-access.
    gpu.synchronize_to(cpu.now());
    let (ticks, outcome) = gpu.timed_load(soc, target);
    InclusivenessResult {
        final_access_ticks: ticks,
        observed_level: outcome.level,
        l3_is_non_inclusive: ticks <= l3_hit_threshold_ticks,
    }
}

/// Discovers which address bits participate in L3 placement.
///
/// For every candidate bit, the test builds a conflict set of addresses that
/// agree with a target on all *other* candidate bits but have the candidate
/// bit flipped, walks it [`L3_EVICTION_PASSES`] times, and then re-times the
/// target from the GPU. If the target is still an L3 hit, the flipped bit
/// moved the conflict set to a different L3 bucket — so the bit *is* part of
/// the placement index. If the target got evicted, the bit is ignored by the
/// placement function.
///
/// Returns the bits (within `candidate_bits`) found to be part of the index.
/// With the Gen9 geometry this is exactly bits 6..=15.
pub fn discover_l3_index_bits<M: MemorySystem>(
    soc: &mut M,
    gpu: &mut GpuKernel,
    pool_base: PhysAddr,
    candidate_bits: &[u32],
    l3_hit_threshold_ticks: u64,
) -> Vec<u32> {
    let ways = soc.gpu_l3().ways();
    let mut index_bits = Vec::new();
    for (i, &bit) in candidate_bits.iter().enumerate() {
        // A fresh target for every bit test, far from previous ones.
        let target = PhysAddr::new(pool_base.value() + (i as u64 + 1) * (1 << 21));
        gpu.load(soc, target);
        // Conflict addresses: same low bits as the target except `bit` flipped,
        // differing in high bits so they are distinct lines.
        let conflicts: Vec<PhysAddr> = (1..=(ways as u64 + 4))
            .map(|k| PhysAddr::new((target.value() ^ (1u64 << bit)) + (k << 22)))
            .collect();
        for _ in 0..L3_EVICTION_PASSES {
            for &c in &conflicts {
                gpu.load(soc, c);
            }
        }
        let (ticks, _) = gpu.timed_load(soc, target);
        let still_l3_hit = ticks <= l3_hit_threshold_ticks;
        if still_l3_hit {
            // Flipping the bit broke the conflict: the bit is part of the index.
            index_bits.push(bit);
        }
    }
    index_bits
}

/// Strategy used to force the GPU's target addresses out of the L3 so that
/// prime/probe traffic actually reaches the LLC (the three bars of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L3EvictionStrategy {
    /// Walk a buffer as large as the whole L3 data array (512 KB) every time.
    /// Needs no reverse engineering but is extremely slow (~1 kb/s channel).
    FullL3Clear,
    /// Use a fixed-size pollute set chosen only with LLC-level knowledge
    /// (addresses guaranteed to live in other LLC sets, but with unknown L3
    /// placement, so many more of them are needed).
    LlcKnowledgeOnly,
    /// Use precise L3 eviction sets: addresses that share the target's 16
    /// placement bits but map to different LLC sets. The paper's final,
    /// fastest configuration (~120 kb/s).
    PreciseL3,
}

impl L3EvictionStrategy {
    /// All strategies in the order Figure 7 reports them.
    pub const ALL: [L3EvictionStrategy; 3] = [
        L3EvictionStrategy::FullL3Clear,
        L3EvictionStrategy::LlcKnowledgeOnly,
        L3EvictionStrategy::PreciseL3,
    ];

    /// Label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            L3EvictionStrategy::FullL3Clear => "full-L3-clear",
            L3EvictionStrategy::LlcKnowledgeOnly => "LLC-knowledge-only",
            L3EvictionStrategy::PreciseL3 => "precise-L3-eviction",
        }
    }
}

/// Builds the precise L3 eviction set for a single target: addresses sharing
/// the target's placement bits `[6, 16)` but guaranteed to live in *different*
/// LLC sets (so they never pollute the communication set), drawn from the
/// pollute pool starting at `pool_base`.
///
/// # Errors
///
/// Returns [`ChannelError::EvictionSetNotFound`] if the pool does not contain
/// `count` suitable addresses (the pool is scanned for `count * 64` MiB at
/// most).
pub fn precise_l3_eviction_set<M: MemorySystem>(
    soc: &M,
    target: PhysAddr,
    pool_base: PhysAddr,
    pool_len: u64,
    count: usize,
) -> Result<Vec<PhysAddr>, ChannelError> {
    let l3 = soc.gpu_l3();
    let llc = soc.llc();
    let target_llc_set = llc.set_of(target);
    let target_index = l3.placement_index(target);
    let mut out = Vec::with_capacity(count);
    // Addresses with the same 16 placement bits recur every 64 KiB.
    let placement_period = 1u64 << 16;
    let aligned_low = target.value() & (placement_period - 1);
    let mut candidate = (pool_base.value() & !(placement_period - 1)) + aligned_low;
    if candidate < pool_base.value() {
        candidate += placement_period;
    }
    let pool_end = pool_base.value() + pool_len;
    while out.len() < count && candidate + CACHE_LINE_SIZE <= pool_end {
        let a = PhysAddr::new(candidate);
        if a.line_base() != target.line_base()
            && l3.placement_index(a) == target_index
            && llc.set_of(a) != target_llc_set
        {
            out.push(a);
        }
        candidate += placement_period;
    }
    if out.len() < count {
        return Err(ChannelError::EvictionSetNotFound {
            requested: count,
            found: out.len(),
        });
    }
    Ok(out)
}

/// Builds the pollute set for one target under the given strategy.
///
/// * `FullL3Clear` ignores the target and returns a walk over the whole L3
///   capacity starting at `pool_base`.
/// * `LlcKnowledgeOnly` returns `llc_only_factor`× more addresses than the
///   precise strategy, chosen only to avoid the target's LLC set (their L3
///   placement is left to chance, which is why more are needed).
/// * `PreciseL3` returns `ways × L3_EVICTION_PASSES` precisely conflicting
///   addresses.
///
/// # Errors
///
/// Propagates [`ChannelError::EvictionSetNotFound`] when the pool is too
/// small.
pub fn build_pollute_set<M: MemorySystem>(
    soc: &M,
    strategy: L3EvictionStrategy,
    target: PhysAddr,
    pool_base: PhysAddr,
    pool_len: u64,
) -> Result<Vec<PhysAddr>, ChannelError> {
    let ways = soc.gpu_l3().ways();
    match strategy {
        L3EvictionStrategy::FullL3Clear => {
            let l3_capacity = soc.gpu_l3().config().data_capacity_bytes;
            let lines = (l3_capacity / CACHE_LINE_SIZE) as usize;
            if (pool_len / CACHE_LINE_SIZE) < lines as u64 {
                return Err(ChannelError::EvictionSetNotFound {
                    requested: lines,
                    found: (pool_len / CACHE_LINE_SIZE) as usize,
                });
            }
            Ok((0..lines)
                .map(|i| PhysAddr::new(pool_base.value() + i as u64 * CACHE_LINE_SIZE))
                .collect())
        }
        L3EvictionStrategy::LlcKnowledgeOnly => {
            // Without L3 knowledge the attacker walks a generous number of
            // lines spread across the pool, skipping anything in the target's
            // LLC set. Because the walk cannot be aimed at the target's L3
            // bucket, empirically ~6x the precise set size is needed before
            // the pLRU reliably discards the target.
            let needed = ways * L3_EVICTION_PASSES * 6;
            let llc = soc.llc();
            let target_set = llc.set_of(target);
            let mut out = Vec::with_capacity(needed);
            let mut offset = 0u64;
            // Stride of 4 KiB + one line decorrelates the L3 placement while
            // still covering many L3 buckets quickly.
            let stride = 4096 + CACHE_LINE_SIZE;
            while out.len() < needed && offset + CACHE_LINE_SIZE <= pool_len {
                let a = PhysAddr::new(pool_base.value() + offset);
                if llc.set_of(a) != target_set {
                    out.push(a);
                }
                offset += stride;
            }
            if out.len() < needed {
                return Err(ChannelError::EvictionSetNotFound {
                    requested: needed,
                    found: out.len(),
                });
            }
            Ok(out)
        }
        L3EvictionStrategy::PreciseL3 => {
            precise_l3_eviction_set(soc, target, pool_base, pool_len, ways * L3_EVICTION_PASSES)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::prelude::{Soc, SocConfig};

    fn setup() -> (Soc, GpuKernel, CpuThread) {
        (
            Soc::new(SocConfig::kaby_lake_noiseless()),
            GpuKernel::launch_attack_kernel(),
            CpuThread::pinned(0),
        )
    }

    /// A reasonable L3-hit threshold in ticks for the noiseless default timer
    /// (~2.6 ns per tick, L3 hit ~90 ns, LLC hit ~200 ns -> threshold 55).
    const L3_THRESHOLD_TICKS: u64 = 55;

    #[test]
    fn inclusiveness_experiment_finds_non_inclusive_l3() {
        let (mut soc, mut gpu, mut cpu) = setup();
        let result = l3_inclusiveness_test(
            &mut soc,
            &mut gpu,
            &mut cpu,
            PhysAddr::new(0x40_0000),
            L3_THRESHOLD_TICKS,
        );
        assert!(
            result.l3_is_non_inclusive,
            "ticks: {}",
            result.final_access_ticks
        );
        assert_eq!(result.observed_level, HitLevel::GpuL3);
    }

    #[test]
    fn discovered_index_bits_match_gen9_placement() {
        let (mut soc, mut gpu, _) = setup();
        let candidates: Vec<u32> = (6..20).collect();
        let bits = discover_l3_index_bits(
            &mut soc,
            &mut gpu,
            PhysAddr::new(0x800_0000),
            &candidates,
            L3_THRESHOLD_TICKS,
        );
        assert_eq!(
            bits,
            (6..16).collect::<Vec<u32>>(),
            "placement uses bits 6..16"
        );
    }

    #[test]
    fn precise_set_shares_placement_but_not_llc_set() {
        let (soc, _, _) = setup();
        let target = PhysAddr::new(0x123_4560 & !0x3F);
        let set = precise_l3_eviction_set(
            &soc,
            target,
            PhysAddr::new(0x1000_0000),
            64 * 1024 * 1024,
            40,
        )
        .unwrap();
        assert_eq!(set.len(), 40);
        let l3 = soc.gpu_l3();
        let llc = soc.llc();
        for a in &set {
            assert_eq!(l3.placement_index(*a), l3.placement_index(target));
            assert_ne!(llc.set_of(*a), llc.set_of(target));
            assert_ne!(a.line_base(), target.line_base());
        }
    }

    #[test]
    fn precise_set_reports_exhaustion() {
        let (soc, _, _) = setup();
        let err = precise_l3_eviction_set(
            &soc,
            PhysAddr::new(0x0),
            PhysAddr::new(0x1000_0000),
            128 * 1024, // far too small for 40 matches at 64 KiB period
            40,
        )
        .unwrap_err();
        assert!(matches!(err, ChannelError::EvictionSetNotFound { .. }));
    }

    #[test]
    fn pollute_set_sizes_are_ordered_by_strategy() {
        let (soc, _, _) = setup();
        let target = PhysAddr::new(0x40);
        let pool = PhysAddr::new(0x2000_0000);
        let pool_len = 64 * 1024 * 1024;
        let full = build_pollute_set(
            &soc,
            L3EvictionStrategy::FullL3Clear,
            target,
            pool,
            pool_len,
        )
        .unwrap();
        let llc_only = build_pollute_set(
            &soc,
            L3EvictionStrategy::LlcKnowledgeOnly,
            target,
            pool,
            pool_len,
        )
        .unwrap();
        let precise =
            build_pollute_set(&soc, L3EvictionStrategy::PreciseL3, target, pool, pool_len).unwrap();
        assert_eq!(full.len(), 8192, "whole 512 KB L3");
        assert!(llc_only.len() > precise.len());
        assert!(full.len() > llc_only.len());
        assert_eq!(precise.len(), soc.gpu_l3().ways() * L3_EVICTION_PASSES);
    }

    #[test]
    fn llc_only_pollute_set_avoids_target_llc_set() {
        let (soc, _, _) = setup();
        let target = PhysAddr::new(0x7FC0);
        let set = build_pollute_set(
            &soc,
            L3EvictionStrategy::LlcKnowledgeOnly,
            target,
            PhysAddr::new(0x3000_0000),
            64 * 1024 * 1024,
        )
        .unwrap();
        let llc = soc.llc();
        assert!(set.iter().all(|a| llc.set_of(*a) != llc.set_of(target)));
    }

    #[test]
    fn walking_precise_set_evicts_target_from_l3_but_not_llc() {
        let (mut soc, mut gpu, _) = setup();
        let target = PhysAddr::new(0x555_5540 & !0x3F);
        gpu.load(&mut soc, target);
        assert!(soc.gpu_l3().contains(target));
        assert!(soc.llc().contains(target));
        let pollute = precise_l3_eviction_set(
            &soc,
            target,
            PhysAddr::new(0x1800_0000),
            128 * 1024 * 1024,
            soc.gpu_l3().ways() * L3_EVICTION_PASSES,
        )
        .unwrap();
        for &a in &pollute {
            gpu.load(&mut soc, a);
        }
        assert!(!soc.gpu_l3().contains(target), "target must leave the L3");
        assert!(soc.llc().contains(target), "target must stay in the LLC");
        // And the next GPU access to the target is therefore an LLC hit.
        let out = gpu.load(&mut soc, target);
        assert_eq!(out.level, HitLevel::Llc);
    }

    #[test]
    fn strategy_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            L3EvictionStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
