//! The contention-based covert channel (Section IV of the paper).
//!
//! Unlike the LLC channel, this channel shares no stateful structure at all:
//! the CPU spy simply times accesses to its own LLC-resident buffer, and the
//! GPU trojan modulates the shared pathway to the LLC (ring interconnect +
//! LLC ports) by either streaming its own, disjoint buffer (bit `1`) or
//! staying idle (bit `0`). The receiver decodes by thresholding its measured
//! access time (Equation 3: `T_total = T_cpu + T_ov`).
//!
//! The channel implements [`CovertChannel`] and is driven end to end by the
//! shared [`crate::channel::engine::Transceiver`]; only the physical symbol
//! exchange lives here. It is generic over the [`MemorySystem`] backend.
//!
//! The channel's quality depends on keeping the two sides overlapped despite
//! the 4:1 clock disparity. The paper introduces the **iteration factor**
//! (`IF`, Equation 4): the number of times the GPU re-walks its per-bit
//! window so that its active period matches the CPU's measurement period.
//! [`ContentionChannel::calibrate`] performs that search, reproducing
//! Figure 9; the bandwidth/error sweep over buffer sizes and work-group
//! counts reproduces Figure 10.

use crate::channel::engine::{
    Calibration, ChannelDiagnostics, CovertChannel, FrameResult, Transceiver,
};
use crate::error::ChannelError;
use crate::metrics::TransmissionReport;
use cpu_exec::prelude::{AccessPattern, CpuThread, LineBuffer};
use gpu_exec::prelude::{GpuKernel, GpuTopology, WorkGroupShape};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soc_sim::clock::Time;
use soc_sim::page_table::PageKind;
use soc_sim::prelude::{AccessOutcome, BatchRequest, MemorySystem, PhysAddr, Soc, SocConfig};

/// Configuration of the contention channel.
#[derive(Debug, Clone)]
pub struct ContentionChannelConfig {
    /// Spy (CPU) buffer size in bytes; the paper fixes this at 512 KB.
    pub cpu_buffer_bytes: u64,
    /// Trojan (GPU) buffer size in bytes (1 MB and 2 MB in Figure 10).
    pub gpu_buffer_bytes: u64,
    /// Number of work-groups the trojan launches (x-axis of Figure 10).
    pub workgroups: usize,
    /// Number of buffer lines the CPU times per bit (its measurement window).
    pub cpu_lines_per_bit: usize,
    /// Iteration factor override; `None` lets [`ContentionChannel::calibrate`]
    /// choose it.
    pub iteration_factor: Option<u32>,
    /// Probability per bit of an ambient background-traffic burst on another
    /// core (the noise source that bounds the error rate from below).
    pub background_burst_prob: f64,
    /// Simulator seed.
    pub seed: u64,
    /// SoC configuration used when the channel builds its own backend via
    /// [`ContentionChannel::new`]; ignored by
    /// [`ContentionChannel::with_backend`].
    pub soc: SocConfig,
}

impl ContentionChannelConfig {
    /// The paper's best configuration: 512 KB CPU buffer, 2 MB GPU buffer,
    /// 2 work-groups.
    pub fn paper_default() -> Self {
        ContentionChannelConfig {
            cpu_buffer_bytes: 512 * 1024,
            gpu_buffer_bytes: 2 * 1024 * 1024,
            workgroups: 2,
            cpu_lines_per_bit: 256,
            iteration_factor: None,
            background_burst_prob: 0.012,
            seed: 11,
            soc: SocConfig::kaby_lake_i7_7700k(),
        }
    }

    /// Builder-style GPU buffer size override.
    pub fn with_gpu_buffer(mut self, bytes: u64) -> Self {
        self.gpu_buffer_bytes = bytes;
        self
    }

    /// Builder-style work-group count override.
    pub fn with_workgroups(mut self, workgroups: usize) -> Self {
        self.workgroups = workgroups;
        self
    }

    /// Builder-style iteration-factor override.
    pub fn with_iteration_factor(mut self, factor: u32) -> Self {
        self.iteration_factor = Some(factor);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of cache lines in the GPU buffer (Equation 7 numerator).
    pub fn gpu_buffer_lines(&self) -> u64 {
        self.gpu_buffer_bytes / 64
    }

    /// `numElsPerThread` from Equation 7 of the paper: lines per GPU thread.
    pub fn num_els_per_thread(&self) -> u64 {
        let threads = (self.workgroups * 256) as u64;
        self.gpu_buffer_lines().div_ceil(threads)
    }
}

impl Default for ContentionChannelConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of the iteration-factor calibration (Figure 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationResult {
    /// The chosen iteration factor.
    pub iteration_factor: u32,
    /// Measured CPU time per bit window (GPU idle).
    pub cpu_window_time: Time,
    /// Measured GPU time for one pass over its per-bit window.
    pub gpu_pass_time: Time,
    /// Decision threshold (CPU cycles for one measurement window).
    pub threshold_cycles: u64,
    /// Mean quiet-window cycles observed during calibration.
    pub quiet_cycles: u64,
    /// Mean contended-window cycles observed during calibration.
    pub contended_cycles: u64,
}

impl CalibrationResult {
    /// Engine-level summary of this calibration.
    fn as_engine_calibration(&self) -> Calibration {
        // The decision statistic is the window cycle count; its two
        // populations are the quiet and contended means, and the usable gap
        // is what the threshold splits.
        let gap = self.contended_cycles.saturating_sub(self.quiet_cycles) as f64;
        let spread = (self.quiet_cycles as f64).max(1.0) * 0.05;
        Calibration {
            symbol_time: self.cpu_window_time,
            quality: gap / spread,
            detail: format!(
                "IF {}, quiet {} cy, contended {} cy, threshold {} cy",
                self.iteration_factor,
                self.quiet_cycles,
                self.contended_cycles,
                self.threshold_cycles,
            ),
        }
    }
}

/// A fully set-up contention channel (owns the SoC and both processes).
///
/// Cloning snapshots the whole channel — backend, line tables, RNG and
/// calibration — so a deterministic setup can be paid for once and reused
/// across runs that share it (the sweep runner's per-cell template cache).
#[derive(Debug, Clone)]
pub struct ContentionChannel<M: MemorySystem = Soc> {
    config: ContentionChannelConfig,
    soc: M,
    spy: CpuThread,
    background: CpuThread,
    gpu: GpuKernel,
    /// Spy lines in pointer-chase order.
    cpu_lines: Vec<PhysAddr>,
    /// Trojan lines in pointer-chase order (disjoint LLC sets from the spy's).
    gpu_lines: Vec<PhysAddr>,
    /// Per-bit GPU window length in lines.
    gpu_window_lines: usize,
    cursor_cpu: usize,
    cursor_gpu: usize,
    calibration: Option<CalibrationResult>,
    rng: SmallRng,
    /// Precomputed spy batch: one `CpuLoad` per entry of `cpu_lines`, in
    /// order — a measurement window is a wrapping slice of this table.
    cpu_batch: Vec<BatchRequest>,
    /// Precomputed ambient burst: `clflush` + reload pairs over the first
    /// 96 background lines, on the background core.
    background_batch: Vec<BatchRequest>,
    /// Worst-case subslice oversubscription of the trojan's placement
    /// (fixed once the kernel is launched).
    oversub: usize,
    /// Reusable per-bit trojan access sequence (window × iteration factor).
    gpu_accesses_buf: Vec<PhysAddr>,
    /// Reusable outcome buffer for batched passes.
    scratch: Vec<AccessOutcome>,
}

/// Fraction of the GPU buffer touched per bit window (before the iteration
/// factor): the window is `buffer_lines / GPU_WINDOW_DIVISOR`, so a larger
/// trojan buffer yields a longer single pass and therefore a smaller IF —
/// the relationship Figure 9 plots.
const GPU_WINDOW_DIVISOR: u64 = 128;

impl ContentionChannel<Soc> {
    /// Sets up the channel on a freshly built [`Soc`] backend configured by
    /// `config.soc`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidConfig`] for degenerate configurations
    /// and allocation errors otherwise.
    pub fn new(config: ContentionChannelConfig) -> Result<Self, ChannelError> {
        let soc = Soc::new(config.soc.clone().with_seed(config.seed));
        Self::with_backend(soc, config)
    }
}

impl<M: MemorySystem> ContentionChannel<M> {
    /// Sets up the channel on an existing backend: allocates and warms both
    /// buffers, filters the trojan's lines so the two buffers occupy disjoint
    /// LLC sets (Equation 6), and launches the trojan kernel.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ContentionChannel::new`].
    pub fn with_backend(mut soc: M, config: ContentionChannelConfig) -> Result<Self, ChannelError> {
        if config.workgroups == 0 {
            return Err(ChannelError::InvalidConfig(
                "workgroups must be at least 1".into(),
            ));
        }
        if config.cpu_lines_per_bit == 0 {
            return Err(ChannelError::InvalidConfig(
                "cpu_lines_per_bit must be at least 1".into(),
            ));
        }
        let llc_capacity = soc.config().llc.capacity_bytes();
        if config.cpu_buffer_bytes + config.gpu_buffer_bytes >= llc_capacity {
            return Err(ChannelError::InvalidConfig(format!(
                "buffers ({} + {} bytes) must fit well inside the {llc_capacity}-byte LLC (Equation 5)",
                config.cpu_buffer_bytes, config.gpu_buffer_bytes
            )));
        }

        // Spy process and buffer.
        let mut spy_space = soc.create_process();
        let spy_buf = soc.alloc(&mut spy_space, config.cpu_buffer_bytes, PageKind::Small)?;
        let cpu_line_buffer = LineBuffer::resolve(&spy_space, &spy_buf);
        let cpu_lines =
            cpu_line_buffer.access_order(AccessPattern::PointerChase { seed: config.seed });

        // Trojan process and buffer (SVM-shared with the GPU).
        let mut trojan_space = soc.create_process();
        trojan_space.share_with_gpu();
        let trojan_buf = soc.alloc(&mut trojan_space, config.gpu_buffer_bytes, PageKind::Small)?;
        let gpu_line_buffer = LineBuffer::resolve(&trojan_space, &trojan_buf);

        // Equation 6: the trojan's lines must not share LLC sets with the
        // spy's, otherwise LLC conflicts would distort the contention signal.
        let spy_sets: std::collections::HashSet<_> =
            cpu_lines.iter().map(|a| soc.llc().set_of(*a)).collect();
        let gpu_lines: Vec<PhysAddr> = gpu_line_buffer
            .access_order(AccessPattern::PointerChase {
                seed: config.seed ^ 0xFF,
            })
            .into_iter()
            .filter(|a| !spy_sets.contains(&soc.llc().set_of(*a)))
            .collect();
        if gpu_lines.len() < 64 {
            return Err(ChannelError::EvictionSetNotFound {
                requested: 64,
                found: gpu_lines.len(),
            });
        }

        // A third, independent buffer models ambient system activity.
        let mut other_space = soc.create_process();
        let other_buf = soc.alloc(&mut other_space, 256 * 1024, PageKind::Small)?;
        let background_lines = LineBuffer::resolve(&other_space, &other_buf).access_order(
            AccessPattern::PointerChase {
                seed: config.seed ^ 0xABCD,
            },
        );

        // Trojan kernel: `workgroups` work-groups of 256 threads.
        let topology = GpuTopology::gen9_gt2();
        let shape = WorkGroupShape::paper_default(&topology);
        let gpu = GpuKernel::launch(topology, shape, config.workgroups);

        let gpu_window_lines = (config.gpu_buffer_lines() / GPU_WINDOW_DIVISOR).max(16) as usize;

        let spy = CpuThread::pinned(0);
        let background = CpuThread::pinned(2);
        let cpu_batch = cpu_lines.iter().map(|&a| spy.load_request(a)).collect();
        let background_batch = background_lines
            .iter()
            .take(96)
            .flat_map(|&a| [BatchRequest::Flush { paddr: a }, background.load_request(a)])
            .collect();
        let oversub = gpu
            .placements()
            .iter()
            .fold(std::collections::HashMap::new(), |mut m, p| {
                *m.entry(p.subslice).or_insert(0usize) += 1;
                m
            })
            .values()
            .copied()
            .max()
            .unwrap_or(1);

        let mut channel = ContentionChannel {
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5151_1515),
            spy,
            background,
            gpu,
            cpu_lines,
            gpu_lines,
            gpu_window_lines,
            cursor_cpu: 0,
            cursor_gpu: 0,
            calibration: None,
            soc,
            config,
            cpu_batch,
            background_batch,
            oversub,
            gpu_accesses_buf: Vec::new(),
            scratch: Vec::new(),
        };
        channel.warm_up();
        Ok(channel)
    }

    /// The channel configuration.
    pub fn config(&self) -> &ContentionChannelConfig {
        &self.config
    }

    /// The backend the channel runs against.
    pub fn backend(&self) -> &M {
        &self.soc
    }

    /// Mutable access to the backend, e.g. to re-attach a fresh telemetry
    /// registry after cloning a calibrated channel template.
    pub fn backend_mut(&mut self) -> &mut M {
        &mut self.soc
    }

    /// The calibration result, if [`ContentionChannel::calibrate`] has run.
    pub fn calibration(&self) -> Option<&CalibrationResult> {
        self.calibration.as_ref()
    }

    /// Number of trojan lines per per-bit window (before the iteration
    /// factor).
    pub fn gpu_window_lines(&self) -> usize {
        self.gpu_window_lines
    }

    /// Warm both buffers into the LLC (steps 4 and 5 of Figure 6).
    fn warm_up(&mut self) {
        let ContentionChannel {
            spy,
            gpu,
            soc,
            cpu_lines,
            gpu_lines,
            ..
        } = self;
        for &a in cpu_lines.iter() {
            spy.load(soc, a);
        }
        gpu.synchronize_to(spy.now());
        gpu.parallel_load(soc, gpu_lines);
        spy.synchronize_to(gpu.now());
    }

    /// Fills the reusable trojan access sequence with `iterations` wrapping
    /// windows of `gpu_window_lines` lines, advancing the trojan cursor.
    fn fill_gpu_accesses(&mut self, iterations: u32) {
        let total = self.gpu_window_lines * iterations as usize;
        self.gpu_accesses_buf.clear();
        self.gpu_accesses_buf.reserve(total);
        for _ in 0..total {
            self.gpu_accesses_buf.push(self.gpu_lines[self.cursor_gpu]);
            self.cursor_gpu = (self.cursor_gpu + 1) % self.gpu_lines.len();
        }
    }

    /// Times one CPU measurement window with no concurrent GPU traffic.
    ///
    /// The window is a wrapping slice of the precomputed `cpu_batch` table,
    /// issued as (at most two) chained batches — timing-identical to the
    /// per-access loop, with no per-bit allocation.
    fn measure_quiet_window(&mut self) -> u64 {
        let n = self.config.cpu_lines_per_bit;
        let len = self.cpu_lines.len();
        let ContentionChannel {
            spy,
            soc,
            cpu_batch,
            scratch,
            cursor_cpu,
            ..
        } = self;
        let before = spy.rdtsc();
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(len - *cursor_cpu);
            scratch.clear();
            spy.run_batch(soc, &cpu_batch[*cursor_cpu..*cursor_cpu + take], scratch);
            *cursor_cpu = (*cursor_cpu + take) % len;
            remaining -= take;
        }
        spy.rdtsc() - before
    }

    /// Times one CPU measurement window while the GPU streams `iterations`
    /// passes over its window, interleaving the two agents in simulated-time
    /// order so the ring/port contention is physical, not assumed.
    fn measure_contended_window(&mut self, iterations: u32) -> u64 {
        // Both loops run concurrently: align their clocks before starting.
        let t = self.spy.now().max(self.gpu.now());
        self.spy.synchronize_to(t);
        self.gpu.synchronize_to(t);
        let n = self.config.cpu_lines_per_bit;
        let cpu_len = self.cpu_lines.len();
        let cpu_start = self.cursor_cpu;
        self.cursor_cpu = (self.cursor_cpu + n) % cpu_len;
        self.fill_gpu_accesses(iterations);
        // Oversubscribed subslices add dispatch jitter before the trojan's
        // traffic starts flowing.
        if self.oversub > 1 {
            let jitter_ns = self.rng.gen_range(0..(self.oversub as u64) * 400);
            self.gpu.advance(Time::from_ns(jitter_ns));
        }

        let group = self.gpu.effective_parallelism();
        let mut cpu_idx = 0usize;
        let mut gpu_idx = 0usize;
        let before = self.spy.rdtsc();
        while cpu_idx < n {
            let gpu_has_work = gpu_idx < self.gpu_accesses_buf.len();
            if gpu_has_work && self.gpu.now() <= self.spy.now() {
                let end = (gpu_idx + group).min(self.gpu_accesses_buf.len());
                self.gpu
                    .parallel_load(&mut self.soc, &self.gpu_accesses_buf[gpu_idx..end]);
                gpu_idx = end;
            } else {
                let a = self.cpu_lines[(cpu_start + cpu_idx) % cpu_len];
                self.spy.load(&mut self.soc, a);
                cpu_idx += 1;
            }
        }
        let cycles = self.spy.rdtsc() - before;
        // Let the trojan finish any residual iterations so both clocks stay
        // roughly aligned for the next bit.
        while gpu_idx < self.gpu_accesses_buf.len() {
            let end = (gpu_idx + group).min(self.gpu_accesses_buf.len());
            self.gpu
                .parallel_load(&mut self.soc, &self.gpu_accesses_buf[gpu_idx..end]);
            gpu_idx = end;
        }
        cycles
    }

    /// Calibrates the iteration factor and the decision threshold
    /// (Figure 9 / Section IV). Uses the configured override if present.
    pub fn calibrate(&mut self) -> CalibrationResult {
        // CPU window time with the GPU idle.
        let reps = 8;
        let mut quiet = Vec::with_capacity(reps);
        for _ in 0..reps {
            quiet.push(self.measure_quiet_window());
        }
        let quiet_cycles = quiet.iter().sum::<u64>() / reps as u64;
        let cpu_window_time = self.spy.clock().cycles_to_time(quiet_cycles);

        // GPU single-pass time over its window. The two loops must be
        // measured at the same point in simulated time, otherwise the shared
        // resources would charge the laggard for traffic that has not
        // happened "yet" from its point of view.
        self.gpu.synchronize_to(self.spy.now());
        self.fill_gpu_accesses(1);
        let gpu_start = self.gpu.now();
        let pass_outcome = self
            .gpu
            .parallel_load(&mut self.soc, &self.gpu_accesses_buf);
        let gpu_pass_time = self.gpu.now() - gpu_start;
        #[cfg(feature = "debug-trace")]
        eprintln!(
            "calibrate: window={} parallelism={} l3={} llc={} dram={} pass={}",
            self.gpu_accesses_buf.len(),
            self.gpu.effective_parallelism(),
            pass_outcome.count_at_level(soc_sim::prelude::HitLevel::GpuL3),
            pass_outcome.count_at_level(soc_sim::prelude::HitLevel::Llc),
            pass_outcome.count_at_level(soc_sim::prelude::HitLevel::Dram),
            gpu_pass_time
        );
        #[cfg(not(feature = "debug-trace"))]
        let _ = &pass_outcome;

        let iteration_factor = self.config.iteration_factor.unwrap_or_else(|| {
            let ratio = cpu_window_time.as_ps() as f64 / gpu_pass_time.as_ps().max(1) as f64;
            ratio.round().max(1.0) as u32
        });

        // Contended window time with the chosen IF.
        self.spy.synchronize_to(self.gpu.now());
        let mut contended = Vec::with_capacity(reps);
        for _ in 0..reps {
            contended.push(self.measure_contended_window(iteration_factor));
        }
        let contended_cycles = contended.iter().sum::<u64>() / reps as u64;
        // Place the decision threshold halfway across the observed *gap*
        // (slowest quiet window to fastest contended window); when the two
        // populations overlap, fall back to the midpoint of the means.
        let quiet_max = quiet.iter().copied().max().unwrap_or(quiet_cycles);
        let contended_min = contended.iter().copied().min().unwrap_or(contended_cycles);
        let threshold_cycles = if contended_min > quiet_max {
            (quiet_max + contended_min) / 2
        } else {
            (quiet_cycles + contended_cycles) / 2
        };

        let result = CalibrationResult {
            iteration_factor,
            cpu_window_time,
            gpu_pass_time,
            threshold_cycles,
            quiet_cycles,
            contended_cycles,
        };
        self.calibration = Some(result);
        result
    }

    /// Ensures a cached calibration exists and returns it.
    fn calibration_or_run(&mut self) -> CalibrationResult {
        match self.calibration {
            Some(c) => c,
            None => self.calibrate(),
        }
    }

    /// Transmits one bit and returns the spy's decision.
    fn transmit_bit(&mut self, bit: bool, calibration: CalibrationResult) -> bool {
        // Ambient burst: another core occasionally floods the ring too.
        let burst = self.rng.gen_bool(self.config.background_burst_prob);
        if burst {
            self.background.synchronize_to(self.spy.now());
            let ContentionChannel {
                background,
                soc,
                background_batch,
                scratch,
                ..
            } = self;
            scratch.clear();
            background.run_batch(soc, background_batch, scratch);
        }

        let cycles = if bit {
            self.measure_contended_window(calibration.iteration_factor)
        } else {
            self.measure_quiet_window()
        };
        #[cfg(feature = "debug-trace")]
        eprintln!(
            "bit={} cycles={} threshold={} quiet={} contended={}",
            u8::from(bit),
            cycles,
            calibration.threshold_cycles,
            calibration.quiet_cycles,
            calibration.contended_cycles
        );
        // Re-align the two loops between bits.
        let t = self.spy.now().max(self.gpu.now());
        self.spy.synchronize_to(t);
        self.gpu.synchronize_to(t);
        cycles > calibration.threshold_cycles
    }

    /// Transmits a bit string through the shared engine in raw mode;
    /// calibrates first if that has not happened yet.
    pub fn transmit(&mut self, bits: &[bool]) -> TransmissionReport {
        Transceiver::raw()
            .transmit(self, bits)
            .expect("raw contention transmission over a constructed channel cannot fail")
    }
}

impl<M: MemorySystem> CovertChannel for ContentionChannel<M> {
    fn calibrate(&mut self) -> Result<Calibration, ChannelError> {
        Ok(self.calibration_or_run().as_engine_calibration())
    }

    fn transmit_frame(&mut self, bits: &[bool]) -> Result<FrameResult, ChannelError> {
        let calibration = self.calibration_or_run();
        let start = self.spy.now().max(self.gpu.now());
        let received: Vec<bool> = bits
            .iter()
            .map(|&b| self.transmit_bit(b, calibration))
            .collect();
        let end = self.spy.now().max(self.gpu.now());
        Ok(FrameResult {
            received,
            elapsed: end - start,
        })
    }

    fn nominal_symbol_time(&self) -> Time {
        match &self.calibration {
            Some(cal) => cal.cpu_window_time,
            // Pre-calibration estimate: 256 LLC hits at ~10 ns each.
            None => Time::from_us(3),
        }
    }

    fn advance_idle(&mut self, delta: Time) {
        // The spy, trojan and background clocks all sit out the peer's
        // slot; a scheduled noise phase keeps moving underneath them.
        self.spy.advance(delta);
        self.background.advance(delta);
        self.gpu.advance(delta);
    }

    fn diagnostics(&self) -> ChannelDiagnostics {
        let mut entries = vec![
            (
                "cpu_buffer_kb",
                self.config.cpu_buffer_bytes as f64 / 1024.0,
            ),
            (
                "gpu_buffer_kb",
                self.config.gpu_buffer_bytes as f64 / 1024.0,
            ),
            ("workgroups", self.config.workgroups as f64),
            ("background_burst_prob", self.config.background_burst_prob),
        ];
        if let Some(cal) = &self.calibration {
            entries.push(("iteration_factor", f64::from(cal.iteration_factor)));
            entries.push(("threshold_cycles", cal.threshold_cycles as f64));
        }
        ChannelDiagnostics {
            channel: "ring-contention",
            backend: crate::channel::engine::backend_summary(&self.soc),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_pattern;
    use soc_sim::prelude::BackendRegistry;

    fn noiseless_config() -> ContentionChannelConfig {
        ContentionChannelConfig {
            soc: SocConfig::kaby_lake_noiseless(),
            background_burst_prob: 0.0,
            ..ContentionChannelConfig::paper_default()
        }
    }

    #[test]
    fn calibration_separates_quiet_and_contended_windows() {
        let mut ch = ContentionChannel::new(noiseless_config()).unwrap();
        let cal = ch.calibrate();
        assert!(cal.iteration_factor >= 1);
        assert!(
            cal.contended_cycles > cal.quiet_cycles + 200,
            "contended {} vs quiet {}",
            cal.contended_cycles,
            cal.quiet_cycles
        );
        assert!(cal.threshold_cycles > cal.quiet_cycles);
        assert!(cal.threshold_cycles < cal.contended_cycles);
    }

    #[test]
    fn noiseless_transmission_is_error_free() {
        let mut ch = ContentionChannel::new(noiseless_config()).unwrap();
        let bits = test_pattern(128, 21);
        let report = ch.transmit(&bits);
        assert_eq!(report.error_count(), 0, "received {:?}", report.received);
    }

    #[test]
    fn contention_channel_is_faster_than_the_llc_channel_regime() {
        let mut ch = ContentionChannel::new(noiseless_config()).unwrap();
        let bits = test_pattern(128, 22);
        let report = ch.transmit(&bits);
        // The paper reports ~400 kb/s vs ~120 kb/s; at minimum the contention
        // channel must be well above the LLC channel's regime.
        assert!(
            report.bandwidth_kbps() > 150.0,
            "bandwidth {} kbps",
            report.bandwidth_kbps()
        );
    }

    #[test]
    fn quiet_system_error_rate_is_low() {
        let mut ch = ContentionChannel::new(ContentionChannelConfig::paper_default()).unwrap();
        let bits = test_pattern(600, 23);
        let report = ch.transmit(&bits);
        assert!(
            report.error_rate() < 0.05,
            "error rate {} too high",
            report.error_rate()
        );
    }

    #[test]
    fn iteration_factor_decreases_with_gpu_buffer_size() {
        let mut small = ContentionChannel::new(
            noiseless_config()
                .with_gpu_buffer(512 * 1024)
                .with_workgroups(1),
        )
        .unwrap();
        let mut large = ContentionChannel::new(
            noiseless_config()
                .with_gpu_buffer(4 * 1024 * 1024)
                .with_workgroups(1),
        )
        .unwrap();
        let if_small = small.calibrate().iteration_factor;
        let if_large = large.calibrate().iteration_factor;
        assert!(
            if_small > if_large,
            "IF should shrink as the GPU buffer grows: {if_small} vs {if_large}"
        );
    }

    #[test]
    fn degenerate_configurations_are_rejected() {
        let err = ContentionChannel::new(noiseless_config().with_workgroups(0)).unwrap_err();
        assert!(matches!(err, ChannelError::InvalidConfig(_)));
        let too_big = ContentionChannelConfig {
            gpu_buffer_bytes: 16 * 1024 * 1024,
            ..noiseless_config()
        };
        let err = ContentionChannel::new(too_big).unwrap_err();
        assert!(matches!(err, ChannelError::InvalidConfig(_)));
        let zero_window = ContentionChannelConfig {
            cpu_lines_per_bit: 0,
            ..noiseless_config()
        };
        assert!(matches!(
            ContentionChannel::new(zero_window).unwrap_err(),
            ChannelError::InvalidConfig(_)
        ));
    }

    #[test]
    fn num_els_per_thread_follows_equation_seven() {
        let cfg = ContentionChannelConfig::paper_default(); // 2 MB, 2 work-groups
        assert_eq!(cfg.gpu_buffer_lines(), 32 * 1024);
        assert_eq!(cfg.num_els_per_thread(), 64);
        let one_wg = cfg.clone().with_workgroups(1);
        assert_eq!(one_wg.num_els_per_thread(), 128);
    }

    #[test]
    fn trojan_lines_avoid_spy_llc_sets() {
        let ch = ContentionChannel::new(noiseless_config()).unwrap();
        let spy_sets: std::collections::HashSet<_> = ch
            .cpu_lines
            .iter()
            .map(|a| ch.soc.llc().set_of(*a))
            .collect();
        assert!(ch
            .gpu_lines
            .iter()
            .all(|a| !spy_sets.contains(&ch.soc.llc().set_of(*a))));
        assert!(ch.gpu_window_lines() >= 16);
    }

    #[test]
    fn oversized_buffers_fit_inside_a_gen11_class_llc() {
        // 16 MB of trojan buffer overflows the 8 MB Kaby Lake LLC but fits
        // the Gen11-class backend: the same configuration flips from a
        // rejection to a working channel purely by swapping the backend.
        let config = ContentionChannelConfig {
            gpu_buffer_bytes: 8 * 1024 * 1024,
            background_burst_prob: 0.0,
            ..noiseless_config()
        };
        assert!(matches!(
            ContentionChannel::new(config.clone()).unwrap_err(),
            ChannelError::InvalidConfig(_)
        ));
        let backend = BackendRegistry::standard()
            .get("gen11-class")
            .expect("registry entry")
            .build(config.seed);
        let mut ch = ContentionChannel::with_backend(backend, config).unwrap();
        let report = ch.transmit(&test_pattern(96, 31));
        assert!(
            report.error_rate() < 0.10,
            "Gen11-class error {}",
            report.error_rate()
        );
    }

    #[test]
    fn engine_calibration_summary_reflects_the_window_gap() {
        let mut ch = ContentionChannel::new(noiseless_config()).unwrap();
        let cal = CovertChannel::calibrate(&mut ch).unwrap();
        assert!(cal.is_usable(), "quality {}", cal.quality);
        assert_eq!(cal.symbol_time, ch.calibration().unwrap().cpu_window_time);
        assert!(ch.diagnostics().get("iteration_factor").unwrap() >= 1.0);
    }
}
